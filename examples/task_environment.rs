//! The master/slave task execution environment running on *real threads*
//! with real kernels: three slave PEs compare a small query set against a
//! reduced-scale synthetic database, the master allocates tasks under PSS,
//! and the merged hit list comes back exactly as Fig. 4 describes.
//!
//! Also demonstrates the indexed query-file format of §IV-B.
//!
//! Run with: `cargo run --release --example task_environment`

use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::device::exec::StripedBackend;
use swhybrid::exec::master::MasterConfig;
use swhybrid::exec::policy::Policy;
use swhybrid::exec::runtime::{run_real, RealPe, RuntimeConfig};
use swhybrid::seq::fasta;
use swhybrid::seq::index::IndexedFasta;
use swhybrid::seq::sequence::EncodedSequence;
use swhybrid::seq::synth::{paper_database, QueryOrder, QuerySetSpec};
use swhybrid::seq::Alphabet;

fn main() {
    // --- Build the inputs: a query FASTA file + its index (§IV-B) --------
    let queries = QuerySetSpec {
        count: 8,
        min_len: 60,
        max_len: 400,
        order: QueryOrder::Ascending,
    }
    .generate(5);
    let dir = std::env::temp_dir().join("swhybrid_example");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let qpath = dir.join("queries.fasta");
    std::fs::write(&qpath, fasta::to_string(&queries)).expect("write queries");

    let mut indexed = IndexedFasta::open(&qpath).expect("index builds");
    println!(
        "indexed query file: {} sequences, longest {} aa, index at {}",
        indexed.count(),
        indexed.index().max_len,
        swhybrid::seq::index::index_path_for(&qpath).display()
    );
    // Random access through the index, exactly like the master's
    // "acquire sequences" step.
    let encoded_queries: Vec<EncodedSequence> = (0..indexed.count())
        .map(|i| {
            let record = indexed.fetch(i).expect("offset is valid");
            EncodedSequence::from_sequence(&record, Alphabet::Protein)
                .expect("synthetic residues are valid")
        })
        .collect();

    // --- The database: scaled-down Ensembl Dog ---------------------------
    let db = paper_database("dog")
        .expect("preset exists")
        .generate_scaled(6, 0.004);
    let subjects = db.encode_all().expect("synthetic residues are valid");
    println!(
        "database: {} sequences, {} residues\n",
        subjects.len(),
        subjects.iter().map(|s| s.len() as u64).sum::<u64>()
    );

    // --- Run the environment: one master, three slaves -------------------
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let pes = vec![
        RealPe {
            name: "slave-0".into(),
            static_gcups: 1.0,
            backend: Box::new(StripedBackend::default()),
        },
        RealPe {
            name: "slave-1".into(),
            static_gcups: 1.0,
            backend: Box::new(StripedBackend::default()),
        },
        RealPe {
            name: "slave-2".into(),
            static_gcups: 1.0,
            backend: Box::new(StripedBackend::default()),
        },
    ];
    let outcome = run_real(
        pes,
        &encoded_queries,
        &subjects,
        &scoring,
        RuntimeConfig {
            master: MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            top_n: 3,
        },
    );

    println!(
        "executed {} tasks in {:.2} s  →  {:.2} GCUPS on this machine",
        outcome.completed_by.len(),
        outcome.elapsed_seconds,
        outcome.gcups
    );
    println!("\ntask → completing slave:");
    for (task, pe) in outcome.completed_by.iter().enumerate() {
        println!(
            "  query {:>2} ({:>4} aa)  →  {}",
            task,
            encoded_queries[task].len(),
            pe
        );
    }
    println!("\nmerged hit list (top 10 overall):");
    println!("{:>5} {:>6}  query  subject", "rank", "score");
    for (rank, qh) in outcome.hits.iter().take(10).enumerate() {
        println!(
            "{:>5} {:>6}  q{:<4}  {}",
            rank + 1,
            qh.hit.score,
            qh.query_index,
            qh.hit.id
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
