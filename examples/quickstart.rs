//! Quickstart: the five-minute tour of the `swhybrid` API.
//!
//! Reproduces the paper's didactic figures — a global alignment with its
//! score (Fig. 1) and the Smith-Waterman similarity matrix with traceback
//! (Fig. 2) — then shows that the striped SIMD engine agrees with the
//! scalar oracle.
//!
//! Run with: `cargo run --example quickstart`

use swhybrid::align::gotoh::gotoh_align;
use swhybrid::align::nw::nw_align;
use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::align::sw::SwMatrix;
use swhybrid::seq::fasta;
use swhybrid::seq::Alphabet;
use swhybrid::simd::engine::{EnginePreference, StripedEngine};
use swhybrid::simd::KernelScratch;

fn main() {
    // --- Fig. 1: a global alignment and its score ------------------------
    // ma = +1, mi = −1, g = −2 (the paper's example scheme).
    let scoring = Scoring::paper_dna();
    let s = Alphabet::Dna.encode(b"ACTTGTCCG").expect("valid DNA");
    let t = Alphabet::Dna.encode(b"ATTGTCAG").expect("valid DNA");
    let global = nw_align(&s, &t, &scoring);
    println!("— Fig. 1: global alignment (score = {}) —", global.score);
    println!("{}\n", global.pretty(b"ACTTGTCCG", b"ATTGTCAG"));

    // --- Fig. 2: the SW similarity matrix and local traceback ------------
    let s2 = Alphabet::Dna.encode(b"GCTGAC").expect("valid DNA");
    let t2 = Alphabet::Dna.encode(b"GAAGCTA").expect("valid DNA");
    let matrix = SwMatrix::build(&s2, &t2, &scoring);
    println!(
        "— Fig. 2: similarity matrix (best local score = {}) —",
        matrix.best_score()
    );
    println!("{}", matrix.render(b"GCTGAC", b"GAAGCTA"));
    let local = matrix.traceback(&s2, &t2);
    println!(
        "local alignment: cigar {}, s[{}..{}] vs t[{}..{}]\n{}\n",
        local.cigar(),
        local.s_range.0,
        local.s_range.1,
        local.t_range.0,
        local.t_range.1,
        local.pretty(b"GCTGAC", b"GAAGCTA"),
    );

    // --- Proteins: BLOSUM62 + affine gaps (Gotoh) ------------------------
    let records =
        fasta::parse_str(">q1 kinase fragment\nMKVLAWCDEFGHIK\n>q2 homolog\nMKVLWCDEFGIK\n")
            .expect("valid FASTA");
    let blosum = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let q1 = records[0].encode(Alphabet::Protein).expect("valid protein");
    let q2 = records[1].encode(Alphabet::Protein).expect("valid protein");
    let aligned = gotoh_align(&q1, &q2, &blosum);
    println!(
        "— protein local alignment (BLOSUM62, affine): score {} ({}% identity) —",
        aligned.score,
        (aligned.identity() * 100.0).round(),
    );
    println!(
        "{}\n",
        aligned.pretty(&records[0].residues, &records[1].residues)
    );

    // --- The adapted-Farrar striped engine agrees with the oracle --------
    let mut engine = StripedEngine::new(&q1, &blosum, EnginePreference::Auto);
    let mut scratch = KernelScratch::new();
    let striped = engine.score(&q2, &mut scratch);
    println!(
        "striped SIMD score: {striped} (scalar oracle: {})",
        aligned.score
    );
    assert_eq!(striped, aligned.score);
    println!("kernels used: {:?}", engine.stats());
}
