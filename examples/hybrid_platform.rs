//! The paper's headline experiment under virtual time: 40 queries against
//! UniProtKB/SwissProt on hybrid platforms, with and without the dynamic
//! workload adjustment mechanism (§V, Fig. 6).
//!
//! Run with: `cargo run --release --example hybrid_platform`

use swhybrid::exec::platform::PlatformBuilder;
use swhybrid::exec::policy::Policy;
use swhybrid::seq::synth::{paper_database, QuerySetSpec};

fn main() {
    let swissprot = paper_database("swissprot")
        .expect("preset exists")
        .full_scale_stats();
    let queries = QuerySetSpec::paper();
    println!(
        "workload: {} queries (100–5000 aa) × {} ({} residues)\n",
        queries.count, swissprot.name, swissprot.total_residues
    );

    let workload = || PlatformBuilder::workload(&swissprot, &queries, 2013);

    println!(
        "{:<12} {:>12} {:>10}   notes",
        "platform", "time (s)", "GCUPS"
    );
    let mut rows: Vec<(String, f64, f64, &str)> = Vec::new();
    for (gpus, sse, adj, note) in [
        (0, 1, true, "the paper's 7,190 s baseline"),
        (0, 8, true, "both hosts' SSE cores"),
        (4, 0, true, "GPU-only"),
        (4, 4, true, "the paper's biggest platform"),
        (4, 4, false, "same, adjustment disabled"),
    ] {
        let mut b = PlatformBuilder::new()
            .policy(Policy::pss_default())
            .adjustment(adj);
        if gpus > 0 {
            b = b.gpus(gpus);
        }
        if sse > 0 {
            b = b.sse_cores(sse);
        }
        let label = b.describe() + if adj { "" } else { " (no adj)" };
        let out = b.run(workload());
        println!(
            "{:<12} {:>12.1} {:>10.2}   {}",
            label,
            out.seconds(),
            out.gcups(),
            note
        );
        rows.push((label, out.seconds(), out.gcups(), note));
    }

    let baseline = rows[0].1;
    let best = rows
        .iter()
        .filter(|r| !r.0.contains("no adj"))
        .map(|r| r.1)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nspeedup over one SSE core: {:.0}×  (paper: 7,190 s → 112 s ≈ 64×)",
        baseline / best
    );

    let with = rows[3].1;
    let without = rows[4].1;
    println!(
        "adjustment mechanism cuts 4G+4S time by {:.1}%  (paper: 57.2%)",
        (1.0 - with / without) * 100.0
    );

    // Per-PE breakdown of the best run, showing who did what.
    let out = PlatformBuilder::new().gpus(4).sse_cores(4).run(workload());
    println!("\nper-PE breakdown (4 GPUs + 4 SSEs, with adjustment):");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>14}",
        "PE", "busy (s)", "completed", "cancelled", "cells (G)"
    );
    for pe in &out.report.per_pe {
        println!(
            "{:<6} {:>10.1} {:>10} {:>10} {:>14.1}",
            pe.name,
            pe.busy_seconds,
            pe.tasks_completed,
            pe.tasks_cancelled,
            pe.cells_computed / 1e9
        );
    }
    println!(
        "\nduplicated work from cancelled replicas: {:.1} Gcells ({:.2}% of total)",
        out.report.duplicated_cells / 1e9,
        100.0 * out.report.duplicated_cells / out.report.total_cells as f64
    );
}
