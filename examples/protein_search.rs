//! Protein database search with the adapted-Farrar engine — real compute.
//!
//! Generates a reduced-scale synthetic SwissProt (same length distribution
//! and residue composition as the paper's biggest database), plants one
//! distant homolog of the query, and scans the database with the
//! multithreaded striped search, reporting the ranked hits and the measured
//! GCUPS (compare with Table III's per-core rate).
//!
//! Run with: `cargo run --release --example protein_search`

use std::time::Instant;

use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::seq::sequence::EncodedSequence;
use swhybrid::seq::synth::{paper_database, random_protein, rng};
use swhybrid::seq::{Alphabet, Sequence};
use swhybrid::simd::search::{DatabaseSearch, SearchConfig};

fn main() {
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };

    // ~1,000 synthetic SwissProt-like sequences (scale 0.2% of 537,505).
    let profile = paper_database("swissprot").expect("preset exists");
    let mut db = profile.generate_scaled(11, 0.002);
    println!(
        "database: {} ({} sequences, {} residues)",
        db.name,
        db.stats().num_sequences,
        db.stats().total_residues
    );

    // A 400-residue query, plus a mutated copy planted into the database.
    let mut r = rng(99);
    let query_res = random_protein(&mut r, 400);
    let mut homolog = query_res.clone();
    for i in (0..homolog.len()).step_by(7) {
        homolog[i] = random_protein(&mut r, 1)[0]; // ~14% point mutations
    }
    db.sequences.push(Sequence::new(
        "planted|homolog",
        "mutated copy of the query",
        homolog,
    ));

    let query = EncodedSequence::from_residues("query", &query_res, Alphabet::Protein)
        .expect("synthetic residues are valid");
    let subjects = db.encode_all().expect("synthetic residues are valid");

    let start = Instant::now();
    let result = DatabaseSearch::new(
        &query.codes,
        &scoring,
        SearchConfig {
            threads: 2,
            top_n: 10,
            ..Default::default()
        },
    )
    .run(&subjects);
    let secs = start.elapsed().as_secs_f64();

    println!(
        "\nscanned {} cells in {:.3} s  →  {:.2} GCUPS (paper's SSE core: ~2.7)",
        result.cells,
        secs,
        result.cells as f64 / secs / 1e9
    );
    println!(
        "kernel usage: {} × 8-bit, {} × 16-bit, {} × scalar",
        result.stats.resolved_i8, result.stats.resolved_i16, result.stats.resolved_scalar
    );
    println!("\ntop hits:");
    println!("{:>4}  {:>6}  {:>6}  id", "rank", "score", "len");
    for (rank, hit) in result.hits.iter().enumerate() {
        println!(
            "{:>4}  {:>6}  {:>6}  {}",
            rank + 1,
            hit.score,
            hit.subject_len,
            hit.id
        );
    }
    assert_eq!(
        result.hits[0].id, "planted|homolog",
        "the planted homolog must rank first"
    );
    println!("\nthe planted homolog ranks first, as it should.");
}
