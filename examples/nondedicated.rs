//! Non-dedicated execution (paper §V-C, Figs. 7/8): external load appears
//! on core 0 after 60 s and the PSS policy adapts the task flow.
//!
//! Run with: `cargo run --release --example nondedicated`

use swhybrid::device::load::LoadSchedule;
use swhybrid::exec::platform::PlatformBuilder;
use swhybrid::exec::policy::Policy;
use swhybrid::seq::synth::{paper_database, QuerySetSpec};

fn main() {
    let dog = paper_database("dog")
        .expect("preset exists")
        .full_scale_stats();
    let queries = QuerySetSpec::paper();
    let workload = || PlatformBuilder::workload(&dog, &queries, 2013);

    let dedicated = PlatformBuilder::new()
        .sse_cores(4)
        .policy(Policy::pss_default())
        .run(workload());
    let loaded = PlatformBuilder::new()
        .sse_cores(4)
        .policy(Policy::pss_default())
        .load_on(0, LoadSchedule::step_at(60.0, 0.45))
        .run(workload());

    println!("4 SSE cores × Ensembl Dog, PSS + workload adjustment\n");
    println!(
        "dedicated run:        {:>7.1} s  ({:.2} GCUPS)",
        dedicated.seconds(),
        dedicated.gcups()
    );
    println!(
        "core 0 loaded @60 s:  {:>7.1} s  ({:.2} GCUPS)",
        loaded.seconds(),
        loaded.gcups()
    );
    println!(
        "wall-clock increase:  {:+.1}%   (paper: +12.1% — 233.14 s → 261.4 s)\n",
        (loaded.seconds() / dedicated.seconds() - 1.0) * 100.0
    );

    println!("per-core GCUPS notifications around the load step:");
    println!(
        "{:>6}  {:>8} {:>8} {:>8} {:>8}",
        "t (s)", "core0", "core1", "core2", "core3"
    );
    for &(t, g0) in loaded
        .report
        .trace
        .pe_notifications(0)
        .iter()
        .filter(|&&(t, _)| (40.0..=90.0).contains(&t))
    {
        let at = |pe: usize| -> String {
            loaded
                .report
                .trace
                .pe_notifications(pe)
                .iter()
                .find(|&&(tt, _)| (tt - t).abs() < 0.1)
                .map(|&(_, g)| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{t:>6.0}  {:>8.2} {:>8} {:>8} {:>8}",
            g0,
            at(1),
            at(2),
            at(3)
        );
    }
    println!("\ncore 0's rate halves after t=60 s; the other cores keep full speed");
    println!("and the master's weighted means shift new tasks away from core 0.");

    // How many tasks each core completed — core 0 ends with fewer.
    println!("\ntasks completed per core:");
    for pe in &loaded.report.per_pe {
        println!("  {}: {}", pe.name, pe.tasks_completed);
    }
}
