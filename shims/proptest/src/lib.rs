//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! Supports the subset the swhybrid property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), range/tuple/`Just`/`prop_map`/
//! `prop_oneof!` strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! random inputs are drawn from a ChaCha8 stream seeded deterministically
//! from the test's module path and name (stable across runs and machines),
//! there is **no shrinking** (the failing inputs are printed verbatim), and
//! `.proptest-regressions` files are ignored.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        type Value: Debug;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: Debug,
            F: Fn(Self::Value) -> T,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between boxed arms, as built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let arm = rng.inner.random_range(0..self.arms.len());
            self.arms[arm].new_value(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform + Debug,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.inner.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: rand::SampleUniform + Debug,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.inner.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A 0);
    impl_tuple_strategy!(A 0, B 1);
    impl_tuple_strategy!(A 0, B 1, C 2);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner.random_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::fmt::Debug;

    /// Uniform choice from a fixed list of options.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.inner.random_range(0..self.0.len());
            self.0[idx].clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// The `prop::bool::ANY` strategy: a fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.inner.random()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::hash_map::DefaultHasher;
    use std::fmt;
    use std::hash::{Hash, Hasher};

    /// Source of randomness handed to strategies.
    pub struct TestRng {
        pub inner: ChaCha8Rng,
    }

    impl TestRng {
        /// Seeded from the test's full name so every run (and machine)
        /// explores the same deterministic input sequence.
        pub fn deterministic(test_name: &str) -> Self {
            let mut hasher = DefaultHasher::new();
            test_name.hash(&mut hasher);
            TestRng {
                inner: ChaCha8Rng::seed_from_u64(hasher.finish()),
            }
        }
    }

    /// Runner configuration; only the case count is tunable.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (no reject/filter support in this shim).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        pub use crate::{bool, collection, sample};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    // Note: `#[test]` is written by the caller (the documented proptest
    // style), so attributes are passed through rather than synthesized.
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // A tuple of strategies is itself a strategy (see
                // `impl_tuple_strategy!`), which lets the per-test bindings
                // be arbitrary irrefutable patterns, not just idents.
                let strategies = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let values =
                        $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    let described =
                        format!("({}) = {:?}", stringify!($($arg),+), values);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let ($($arg,)+) = values;
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}",
                            case + 1,
                            config.cases,
                            err,
                            described,
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n      left: {:?}\n     right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left_val,
                            right_val,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n      left: {:?}\n     right: {:?}",
                            format!($($fmt)+),
                            left_val,
                            right_val,
                        ),
                    ));
                }
            }
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u64..400, (a, b) in (0i32..=12, 1i32..=4)) {
            prop_assert!((1..400).contains(&x));
            prop_assert!((0..=12).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(0u8..20, 0..12),
                          r in prop::sample::select(b"ARN".to_vec()),
                          flag in prop::bool::ANY) {
            prop_assert!(v.len() < 12);
            prop_assert!(v.iter().all(|&x| x < 20));
            prop_assert!(b"ARN".contains(&r));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn oneof_and_map(choice in prop_oneof![
            Just(0usize),
            (1usize..10).prop_map(|n| n * 100),
        ]) {
            prop_assert!(choice == 0 || (100..1000).contains(&choice));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u8..20, 1..8);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..20 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        // Deliberately false property to exercise the failure path.
        #[test]
        #[should_panic(expected = "always fails")]
        fn failing_property_panics_with_inputs(_x in 0u8..4) {
            prop_assert!(false, "always fails");
        }
    }
}
