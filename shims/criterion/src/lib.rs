//! Minimal in-repo stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the swhybrid benches use — `Criterion`
//! builder, `benchmark_group`, `bench_with_input`/`bench_function`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/
//! `criterion_main!` macros — with a simple fixed-iteration timer
//! instead of criterion's statistical analysis. Each benchmark prints
//! its mean wall-clock time per iteration (and throughput when set).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle; a by-value builder like real criterion.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        let mut group = self.benchmark_group(label.clone());
        group.bench_function(label, f);
        group.finish();
    }
}

/// Per-element or per-byte throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `label/parameter` benchmark identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(label: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", label.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size.max(1),
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.mean;
        let mut line = format!("{}/{}: {:>12.3?}/iter", self.name, label, per_iter);
        if let Some(throughput) = self.throughput {
            let seconds = per_iter.as_secs_f64().max(1e-12);
            match throughput {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.3} Melem/s)", n as f64 / seconds / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  ({:.3} MiB/s)",
                        n as f64 / seconds / (1 << 20) as f64
                    ));
                }
            }
        }
        println!("{line}");
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Time `f`, storing the mean duration per call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up (at least one call) doubles as a rough cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std_black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time || warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size the measured run to roughly fit measurement_time.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

/// Declares a benchmark group function. Both real-criterion forms are
/// accepted: `criterion_group!(benches, target_a, target_b)` and
/// `criterion_group! { name = benches; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
