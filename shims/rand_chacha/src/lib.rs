//! ChaCha8 pseudo-random generator backing the in-repo `rand` shim.
//!
//! A genuine (if compact) ChaCha implementation: 16-word state with the
//! "expand 32-byte k" constants, an 8-word little-endian key, a 64-bit
//! block counter, and 8 rounds (4 double-rounds). Deterministic across
//! platforms, statistically solid — the synthetic-database generator's
//! residue-frequency tests depend on that, golden-value tests do not
//! depend on matching upstream `rand_chacha` byte streams.

use rand::{Rng, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha stream cipher core with 8 rounds, used as a PRNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 0..8, then the 64-bit block counter (words 8/9 of the
    /// variable part map onto state words 12/13), nonce fixed to zero.
    key: [u32; 8],
    counter: u64,
    /// Buffered output block; `cursor` indexes the next unconsumed word.
    block: [u32; 16],
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&CHACHA_CONSTANTS);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;
        let input = x;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = x;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

#[inline]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16, // force a refill on first use
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams from different seeds overlap: {same}/64");
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_test_vector() {
        // ChaCha8 keystream, all-zero key and nonce, block 0 (RFC-style
        // reference, e.g. the rust-crypto `chacha` test suite).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut out = [0u8; 16];
        for chunk in out.chunks_mut(4) {
            chunk.copy_from_slice(&rng.next_u32().to_le_bytes());
        }
        assert_eq!(
            out,
            [
                0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
                0xa5, 0xa1,
            ]
        );
    }

    #[test]
    fn unit_doubles_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
