//! Minimal in-repo stand-in for the `rand` crate.
//!
//! The swhybrid build environment has no crate registry access, so the
//! small slice of the `rand` API the workspace actually uses is provided
//! here under the same crate name: the [`Rng`] core trait, the [`RngExt`]
//! extension methods (`random`, `random_range`), and [`SeedableRng`] with
//! `seed_from_u64`. Generators live in the companion `rand_chacha` shim.
//!
//! This is **not** a general-purpose RNG library — only what the tests,
//! benches, and synthetic-database generator need.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u32`/`u64` words.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T` (for `f64`/`f32`: in `[0, 1)`).
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
        Self: Sized,
    {
        StandardUniform.sample(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: Rng> RngExt for R {}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array (e.g. `[u8; 32]` for ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (the same scheme
    /// upstream `rand` uses, so seeds stay well-distributed).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The standard (uniform) distribution marker.
pub struct StandardUniform;

/// A distribution that can sample values of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<u32> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[low, high)`.
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform in `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sampling range");
                Self::sample_inclusive(rng, low, high - 1)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sampling range");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                // Widening multiply: maps a 64-bit draw onto [0, span).
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                ((low as i128) + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty sampling range");
        let unit: f64 = StandardUniform.sample(rng);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_exclusive(rng, low, f64::from_bits(high.to_bits() + 1))
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Rng for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream is not trivially patterned.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(2);
        for _ in 0..1000 {
            let v = r.random_range(3u8..20);
            assert!((3..20).contains(&v));
            let w = r.random_range(0usize..=5);
            assert!(w <= 5);
            let x = r.random_range(-4i32..4);
            assert!((-4..4).contains(&x));
            let f = r.random_range(1.0f64..32.0);
            assert!((1.0..32.0).contains(&f));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut r = Counter(3);
        assert_eq!(r.random_range(7usize..=7), 7);
    }

    #[test]
    fn all_range_values_reachable() {
        let mut r = Counter(4);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
