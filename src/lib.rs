//! # swhybrid — biological sequence comparison on hybrid platforms
//!
//! Reproduction of *Mendonça & de Melo, "Biological Sequence Comparison on
//! Hybrid Platforms with Dynamic Workload Adjustment", IPDPS Workshops 2013*.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`seq`] — sequences, alphabets, FASTA, the indexed file format, and the
//!   synthetic stand-ins for the paper's five databases,
//! * [`align`] — Smith-Waterman / Gotoh / Needleman-Wunsch kernels,
//! * [`simd`] — the adapted-Farrar striped SIMD kernel and the multithreaded
//!   database search built on it,
//! * [`device`] — processing-element models (simulated CUDASW++ GPU, SSE
//!   core, FPGA) with calibrated performance models,
//! * [`exec`] — the paper's contribution: the master/slave task execution
//!   environment with SS/PSS allocation policies and the dynamic workload
//!   adjustment mechanism,
//! * [`serve`] — the persistent query service: a TCP daemon that keeps the
//!   master/slave runtime warm between queries, with admission control,
//!   an LRU result cache, and live metrics,
//! * [`store`] — the persistent `.swdb` database store: versioned,
//!   checksummed, memory-mapped files the daemon boots from and
//!   hot-reloads onto,
//! * [`json`] — the dependency-free JSON reader/writer used for event and
//!   trace export,
//! * [`cli`] — the `swhybrid` command-line verbs (the binary is a thin
//!   shell around [`cli::run`]).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub mod cli;

pub use swhybrid_align as align;
pub use swhybrid_core as exec;
pub use swhybrid_device as device;
pub use swhybrid_json as json;
pub use swhybrid_seq as seq;
pub use swhybrid_serve as serve;
pub use swhybrid_simd as simd;
pub use swhybrid_store as store;
