//! Database plumbing: FASTA loading, the `index` / `db build` /
//! `db inspect` / `generate` verbs, and [`DbSource`] — the one abstraction
//! over "where the subject residues come from" that the one-shot verbs
//! share.

use crate::seq::fasta::FastaReader;
use crate::seq::index::SeqIndex;
use crate::seq::sequence::EncodedSequence;
use crate::seq::synth::paper_database;
use crate::seq::{Alphabet, DbSnapshot};
use crate::simd::materialize_hits;
use crate::simd::search::{search_arena, DatabaseSearch, SearchConfig, SearchResult};
use crate::simd::PreparedQuery;
use crate::store::{build_store, Store};

use super::args::{store_verify, Opts};

/// Read a FASTA file and encode every record as protein.
pub(super) fn load_encoded(path: &str) -> Result<Vec<EncodedSequence>, String> {
    FastaReader::open(path)
        .map_err(|e| format!("{path}: {e}"))?
        .read_all()
        .map_err(|e| format!("{path}: {e}"))?
        .iter()
        .map(|r| {
            EncodedSequence::from_sequence(r, Alphabet::Protein)
                .map_err(|e| format!("{path} ({}): {e}", r.id))
        })
        .collect()
}

/// The database side of a one-shot search: encoded records from FASTA, or
/// a `.swdb` snapshot whose arena is scanned in place (memory-mapped, no
/// re-encode). Hit tables are identical either way — the scan is keyed by
/// database index, independent of the arena's provenance.
pub(super) enum DbSource {
    Encoded(Vec<EncodedSequence>),
    Snapshot(DbSnapshot),
}

impl DbSource {
    pub(super) fn len(&self) -> usize {
        match self {
            DbSource::Encoded(v) => v.len(),
            DbSource::Snapshot(s) => s.len(),
        }
    }

    pub(super) fn total_residues(&self) -> u64 {
        match self {
            DbSource::Encoded(v) => v.iter().map(|s| s.len() as u64).sum(),
            DbSource::Snapshot(s) => s.total_residues(),
        }
    }

    pub(super) fn subject_codes(&self, i: usize) -> &[u8] {
        match self {
            DbSource::Encoded(v) => &v[i].codes,
            DbSource::Snapshot(s) => s.residues(i),
        }
    }

    pub(super) fn decode_subject(&self, i: usize) -> Vec<u8> {
        match self {
            DbSource::Encoded(v) => v[i].decode(),
            DbSource::Snapshot(s) => s.alphabet().decode_all(s.residues(i)),
        }
    }

    pub(super) fn search(
        &self,
        query: &[u8],
        scoring: &crate::align::scoring::Scoring,
        config: SearchConfig,
    ) -> SearchResult {
        match self {
            DbSource::Encoded(v) => DatabaseSearch::new(query, scoring, config).run(v),
            DbSource::Snapshot(snap) => {
                let prepared =
                    std::sync::Arc::new(PreparedQuery::new(query, scoring, config.preference));
                let out = search_arena(&prepared, snap.arena(), 0..snap.len(), &config);
                SearchResult {
                    hits: materialize_hits(&out.scored, |i| snap.id(i).to_string()),
                    cells: out.cells,
                    cells_nominal: out.cells_nominal,
                    stats: out.stats,
                }
            }
        }
    }
}

pub(super) fn cmd_index(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[], &[])?;
    let [path] = opts.positional.as_slice() else {
        return Err("index takes exactly one FASTA path".into());
    };
    let index = SeqIndex::build_for_file(path).map_err(|e| e.to_string())?;
    let out = index.save_alongside(path).map_err(|e| e.to_string())?;
    println!(
        "indexed {}: {} sequences, longest {} residues → {}",
        path,
        index.count(),
        index.max_len,
        out.display()
    );
    Ok(())
}

pub(super) fn cmd_db(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_db_build(&args[1..]),
        Some("inspect") => cmd_db_inspect(&args[1..]),
        _ => Err("db takes a subcommand: build | inspect".into()),
    }
}

fn cmd_db_build(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["name"], &[])?;
    let [fasta, out] = opts.positional.as_slice() else {
        return Err("db build takes <db.fasta> <out.swdb>".into());
    };
    let subjects = load_encoded(fasta)?;
    let name = match opts.get("name") {
        Some(n) => n.to_string(),
        None => std::path::Path::new(out)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    };
    let summary = build_store(out, &name, &subjects).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "built {}: {} sequences, {} residues, digest {:016x}, {} bytes",
        summary.path.display(),
        summary.sequences,
        summary.residues,
        summary.db_digest,
        summary.file_bytes
    );
    Ok(())
}

fn cmd_db_inspect(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[], &["verify"])?;
    let [path] = opts.positional.as_slice() else {
        return Err("db inspect takes <store.swdb>".into());
    };
    let file_bytes = std::fs::metadata(path)
        .map_err(|e| format!("{path}: {e}"))?
        .len();
    let store = Store::open_with(path, store_verify(opts.has("verify")))
        .map_err(|e| format!("{path}: {e}"))?;
    let h = store.header();
    println!("store:      {path} ({file_bytes} bytes)");
    println!("name:       {}", store.name());
    println!("alphabet:   {:?}", store.alphabet());
    println!("sequences:  {}", h.num_seqs);
    println!(
        "residues:   {} (arena {} bytes at offset {})",
        h.total_residues, h.arena_len, h.arena_off
    );
    println!("lengths:    {}..{}", h.min_len, h.max_len);
    println!(
        "digest:     {:016x}{}",
        store.db_digest(),
        if opts.has("verify") {
            " (re-hashed, arena checksum verified)"
        } else {
            " (stored; metadata checksum verified)"
        }
    );
    println!(
        "chunks:     {} x {} residue-count stride",
        store.chunk_residues().len(),
        h.chunk_stride
    );
    println!(
        "scan perm:  {}",
        if store.scan_permutation().is_some() {
            "length-sorted (present)"
        } else {
            "absent"
        }
    );
    println!("mapped:     {}", store.is_mapped());
    Ok(())
}

pub(super) fn cmd_generate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["seed"], &[])?;
    let [name, scale, out] = opts.positional.as_slice() else {
        return Err("generate takes <db-name> <scale> <out.fasta>".into());
    };
    let profile = paper_database(name).ok_or_else(|| format!("unknown database {name:?}"))?;
    let scale: f64 = scale.parse().map_err(|_| format!("bad scale {scale:?}"))?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err("scale must be in (0, 1]".into());
    }
    let seed = opts.get_parsed("seed", 2013u64)?;
    let db = profile.generate_scaled(seed, scale);
    let stats = db.stats();
    let text = crate::seq::fasta::to_string(&db.sequences);
    std::fs::write(out, text).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} sequences, {} residues (stand-in for {})",
        out, stats.num_sequences, stats.total_residues, profile.name
    );
    Ok(())
}
