use super::args::{scoring_from_opts, Opts};
use super::bench::check_baseline_metric;
use super::db::{load_encoded, DbSource};
use super::run;

use crate::align::scoring::{GapModel, Scoring, SubstMatrix};
use crate::seq::fasta::FastaReader;
use crate::seq::sequence::EncodedSequence;
use crate::seq::Alphabet;
use crate::simd::search::SearchConfig;
use crate::store::Store;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

#[test]
fn opts_parser_positional_and_flags() {
    let o = Opts::parse(
        &s(&["a.fasta", "--top", "5", "--align", "b.fasta"]),
        &["top"],
        &["align"],
    )
    .unwrap();
    assert_eq!(o.positional, s(&["a.fasta", "b.fasta"]));
    assert_eq!(o.get("top"), Some("5"));
    assert!(o.has("align"));
    assert_eq!(o.get_parsed("top", 1usize).unwrap(), 5);
    assert_eq!(o.get_parsed("missing", 7usize).unwrap(), 7);
}

#[test]
fn opts_parser_rejects_unknown_and_missing_value() {
    assert!(Opts::parse(&s(&["--bogus"]), &["top"], &[]).is_err());
    assert!(Opts::parse(&s(&["--top"]), &["top"], &[]).is_err());
}

#[test]
fn scoring_from_opts_defaults_and_overrides() {
    let o = Opts::parse(&s(&[]), &["matrix", "gap-open", "gap-extend"], &[]).unwrap();
    let sc = scoring_from_opts(&o).unwrap();
    assert_eq!(sc.matrix.name, "BLOSUM62");
    let o = Opts::parse(
        &s(&["--matrix", "pam250", "--gap-open", "12"]),
        &["matrix", "gap-open", "gap-extend"],
        &[],
    )
    .unwrap();
    let sc = scoring_from_opts(&o).unwrap();
    assert_eq!(sc.matrix.name, "PAM250");
    assert_eq!(
        sc.gap,
        GapModel::Affine {
            open: 12,
            extend: 2
        }
    );
}

#[test]
fn unknown_command_errors() {
    assert!(run(&s(&["frobnicate"])).is_err());
    assert!(run(&s(&["help"])).is_ok());
}

#[test]
fn baseline_metric_pins_the_regression_floor() {
    // Exactly the committed-baseline contract: current throughput may
    // exceed the baseline freely but must not fall more than the
    // tolerance below it.
    assert!(check_baseline_metric("qps", 100.0, 100.0, 5.0).is_ok());
    assert!(check_baseline_metric("qps", 95.0, 100.0, 5.0).is_ok());
    assert!(check_baseline_metric("qps", 250.0, 100.0, 5.0).is_ok());
    let err = check_baseline_metric("qps", 94.9, 100.0, 5.0).unwrap_err();
    assert!(err.contains("qps"), "error names the metric: {err}");
    assert!(err.contains("regressed"), "error says what happened: {err}");
    // Absent or zero baseline fields never fail — not a regression.
    assert!(check_baseline_metric("qps", 0.0, 0.0, 5.0).is_ok());
}

#[test]
fn bench_kernels_baseline_round_trip() {
    // The mechanism end to end: one tiny run writes the report, a second
    // identical run compares against it. A generous tolerance keeps this
    // a smoke test of the plumbing, not a timing assertion — the 5%
    // contract itself is pinned by baseline_metric_pins_the_regression_floor.
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_baseline_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("BENCH_kernels.json");
    let small = [
        "bench-kernels",
        "--subjects",
        "200",
        "--qlen",
        "16",
        "--reps",
        "1",
        "--threads",
        "1",
    ];
    let mut first: Vec<&str> = small.to_vec();
    first.extend(["--json", json.to_str().unwrap()]);
    run(&s(&first)).unwrap();
    let mut second: Vec<&str> = small.to_vec();
    second.extend(["--baseline", json.to_str().unwrap(), "--tolerance", "99"]);
    run(&s(&second)).unwrap();
    // A baseline demanding impossible throughput fails the run.
    let impossible = concat!(
        r#"{"kernels":[{"kernel":"striped","gcups":999999999.0},"#,
        r#"{"kernel":"interseq","gcups":999999999.0},"#,
        r#"{"kernel":"auto","gcups":999999999.0}]}"#,
    );
    std::fs::write(&json, impossible).unwrap();
    let mut third: Vec<&str> = small.to_vec();
    third.extend(["--baseline", json.to_str().unwrap(), "--tolerance", "5"]);
    assert!(run(&s(&third)).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_smoke_small() {
    // A tiny simulated run exercises the whole path.
    run(&s(&[
        "simulate",
        "--gpus",
        "1",
        "--sse",
        "1",
        "--db",
        "dog",
        "--queries",
        "4",
    ]))
    .unwrap();
}

#[test]
fn serve_rejects_undersized_chunk_cleanly() {
    // The chunk floor surfaces as a CLI error (not a service panic),
    // before the daemon even loads a database.
    let err = run(&s(&[
        "serve",
        "--db-store",
        "nonexistent.swdb",
        "--chunk",
        "16",
    ]))
    .unwrap_err();
    assert!(err.contains("--chunk"), "error names the flag: {err}");
}

#[test]
fn distributed_master_slave_via_cli_paths() {
    // Exercise cmd_master + cmd_slave end-to-end on localhost with an
    // ephemeral port.
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_net_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fasta");
    run(&s(&["generate", "rat", "0.0003", db.to_str().unwrap()])).unwrap();
    let q = dir.join("q.fasta");
    let first = FastaReader::open(&db)
        .unwrap()
        .next_record()
        .unwrap()
        .unwrap();
    std::fs::write(&q, crate::seq::fasta::to_string(std::iter::once(&first))).unwrap();

    // Pick a free port by binding briefly.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let q2 = q.clone();
    let db2 = db.clone();
    let addr2 = addr.clone();
    let slave = std::thread::spawn(move || {
        // Retry until the master is listening.
        for _ in 0..200 {
            let result = run(&s(&[
                "slave",
                q2.to_str().unwrap(),
                db2.to_str().unwrap(),
                "--connect",
                &addr2,
                "--name",
                "cli-slave",
            ]));
            if result.is_ok() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        panic!("slave never connected");
    });
    let events = dir.join("events.json");
    run(&s(&[
        "master",
        q.to_str().unwrap(),
        db.to_str().unwrap(),
        "--listen",
        &addr,
        "--slaves",
        "1",
        "--register-timeout",
        "30",
        "--events",
        events.to_str().unwrap(),
    ]))
    .unwrap();
    slave.join().unwrap();
    // The export is JSONL: every line is one well-formed event object.
    let text = std::fs::read_to_string(&events).unwrap();
    let entries: Vec<crate::json::Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| crate::json::Json::parse(l).expect("event line is valid JSON"))
        .collect();
    assert!(!entries.is_empty(), "event export is empty");
    assert!(
        entries
            .iter()
            .all(|e| e.get("event").and_then(crate::json::Json::as_str).is_some()),
        "every event line carries its kind"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_query_daemon_round_trip() {
    // Exercise cmd_serve + cmd_query end-to-end: serve a synthetic
    // database, query it twice (second hit must come from the cache),
    // print stats, then shut the daemon down and join it.
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fasta");
    run(&s(&["generate", "dog", "0.0005", db.to_str().unwrap()])).unwrap();
    let first = FastaReader::open(&db)
        .unwrap()
        .next_record()
        .unwrap()
        .unwrap();
    let q = dir.join("q.fasta");
    std::fs::write(&q, crate::seq::fasta::to_string(std::iter::once(&first))).unwrap();

    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let db2 = db.clone();
    let addr2 = addr.clone();
    let daemon = std::thread::spawn(move || {
        run(&s(&[
            "serve",
            db2.to_str().unwrap(),
            "--listen",
            &addr2,
            "--workers",
            "2",
        ]))
        .unwrap();
    });
    // Retry until the daemon is listening.
    let mut connected = false;
    for _ in 0..300 {
        if run(&s(&[
            "query",
            q.to_str().unwrap(),
            "--connect",
            &addr,
            "--top",
            "3",
        ]))
        .is_ok()
        {
            connected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(connected, "query CLI never reached the daemon");
    // Repeat (cache hit) + stats + shutdown in one connection.
    run(&s(&[
        "query",
        q.to_str().unwrap(),
        "--connect",
        &addr,
        "--top",
        "3",
        "--stats",
        "--shutdown",
    ]))
    .unwrap();
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_hybrid_fleet_with_remote_slave_round_trip() {
    // `serve --listen-slaves` + `slave --serve`: a daemon scheduling a
    // mixed fleet (local worker threads + one remote TCP slave) must
    // answer queries and shut down cleanly, with the remote exiting too.
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_hybrid_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fasta");
    run(&s(&["generate", "dog", "0.0005", db.to_str().unwrap()])).unwrap();
    let first = FastaReader::open(&db)
        .unwrap()
        .next_record()
        .unwrap()
        .unwrap();
    let q = dir.join("q.fasta");
    std::fs::write(&q, crate::seq::fasta::to_string(std::iter::once(&first))).unwrap();

    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    let probe2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let slave_addr = probe2.local_addr().unwrap().to_string();
    drop((probe, probe2));

    let db2 = db.clone();
    let addr2 = addr.clone();
    let slave_addr2 = slave_addr.clone();
    let daemon = std::thread::spawn(move || {
        run(&s(&[
            "serve",
            db2.to_str().unwrap(),
            "--listen",
            &addr2,
            "--listen-slaves",
            &slave_addr2,
            "--workers",
            "2",
            "--shards",
            "4",
            "--cache",
            "0",
        ]))
        .unwrap();
    });
    let db3 = db.clone();
    let slave = std::thread::spawn(move || {
        // Wait until the daemon's slave port accepts, then join. The
        // session ends either cleanly (`done` at drain) or with a
        // connection loss if daemon teardown wins the race — both are
        // valid exits for this smoke test.
        let mut up = false;
        for _ in 0..300 {
            if std::net::TcpStream::connect(&slave_addr).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(up, "daemon slave port never opened");
        let _ = run(&s(&[
            "slave",
            "--serve",
            db3.to_str().unwrap(),
            "--connect",
            &slave_addr,
            "--name",
            "cli-remote",
            "--reconnect-retries",
            "0",
        ]));
    });
    let mut connected = false;
    for _ in 0..300 {
        if run(&s(&[
            "query",
            q.to_str().unwrap(),
            "--connect",
            &addr,
            "--top",
            "3",
        ]))
        .is_ok()
        {
            connected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(connected, "query CLI never reached the hybrid daemon");
    run(&s(&[
        "query",
        q.to_str().unwrap(),
        "--connect",
        &addr,
        "--top",
        "3",
        "--stats",
        "--shutdown",
    ]))
    .unwrap();
    daemon.join().unwrap();
    slave.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn db_build_inspect_and_store_search_round_trip() {
    // `db build` + `db inspect --verify` + `search --db-store`: the
    // store-backed scan must rank exactly what the FASTA scan ranks.
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fasta");
    let db_s = db.to_str().unwrap().to_string();
    run(&s(&["generate", "dog", "0.0005", &db_s])).unwrap();
    let store = dir.join("db.swdb");
    let store_s = store.to_str().unwrap().to_string();
    run(&s(&["db", "build", &db_s, &store_s, "--name", "dog-test"])).unwrap();
    run(&s(&["db", "inspect", &store_s, "--verify"])).unwrap();
    run(&s(&["db", "inspect", &store_s])).unwrap();

    let first = FastaReader::open(&db)
        .unwrap()
        .next_record()
        .unwrap()
        .unwrap();
    let q = dir.join("q.fasta");
    std::fs::write(&q, crate::seq::fasta::to_string(std::iter::once(&first))).unwrap();
    run(&s(&[
        "search",
        q.to_str().unwrap(),
        "--db-store",
        &store_s,
        "--verify-store",
        "--top",
        "3",
        "--align",
    ]))
    .unwrap();

    // Byte-identity of the two paths, checked on the hit tables
    // themselves (the CLI prints; the API diff is the real assert).
    let subjects = load_encoded(&db_s).unwrap();
    let query = EncodedSequence::from_sequence(&first, Alphabet::Protein).unwrap();
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let config = || SearchConfig {
        top_n: 5,
        ..Default::default()
    };
    let via_fasta = DbSource::Encoded(subjects).search(&query.codes, &scoring, config());
    let snapshot = Store::open_verified(&store)
        .unwrap()
        .into_snapshot()
        .unwrap();
    assert!(snapshot.arena().is_shared(), "store arena is not mapped");
    let via_store = DbSource::Snapshot(snapshot).search(&query.codes, &scoring, config());
    assert_eq!(via_fasta.hits, via_store.hits);

    // Mismatched usage is rejected, not silently accepted.
    assert!(run(&s(&[
        "search",
        q.to_str().unwrap(),
        &db_s,
        "--db-store",
        &store_s
    ]))
    .is_err());
    assert!(run(&s(&["db", "frobnicate"])).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_from_store_and_reload_via_cli() {
    // `serve --db-store` + `reload --store`: a daemon booted from one
    // store generation hot-swaps onto another through the CLI verbs.
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db_a = dir.join("a.fasta");
    let db_b = dir.join("b.fasta");
    run(&s(&["generate", "dog", "0.0005", db_a.to_str().unwrap()])).unwrap();
    run(&s(&["generate", "rat", "0.0003", db_b.to_str().unwrap()])).unwrap();
    let store_a = dir.join("a.swdb");
    let store_b = dir.join("b.swdb");
    run(&s(&[
        "db",
        "build",
        db_a.to_str().unwrap(),
        store_a.to_str().unwrap(),
    ]))
    .unwrap();
    run(&s(&[
        "db",
        "build",
        db_b.to_str().unwrap(),
        store_b.to_str().unwrap(),
    ]))
    .unwrap();
    let first = FastaReader::open(&db_a)
        .unwrap()
        .next_record()
        .unwrap()
        .unwrap();
    let q = dir.join("q.fasta");
    std::fs::write(&q, crate::seq::fasta::to_string(std::iter::once(&first))).unwrap();

    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);
    let addr2 = addr.clone();
    let store_a2 = store_a.clone();
    let daemon = std::thread::spawn(move || {
        run(&s(&[
            "serve",
            "--db-store",
            store_a2.to_str().unwrap(),
            "--listen",
            &addr2,
            "--workers",
            "2",
        ]))
        .unwrap();
    });
    let mut connected = false;
    for _ in 0..300 {
        if run(&s(&[
            "query",
            q.to_str().unwrap(),
            "--connect",
            &addr,
            "--top",
            "3",
        ]))
        .is_ok()
        {
            connected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(connected, "query CLI never reached the store-backed daemon");

    // Hot-swap to generation B (with full verification), then prove the
    // daemon answers from the new database and shuts down cleanly.
    run(&s(&[
        "reload",
        "--connect",
        &addr,
        "--store",
        store_b.to_str().unwrap(),
        "--verify",
    ]))
    .unwrap();
    // Reloading a nonsense path is refused without killing the daemon.
    assert!(run(&s(&[
        "reload",
        "--connect",
        &addr,
        "--store",
        dir.join("missing.swdb").to_str().unwrap(),
    ]))
    .is_err());
    assert!(run(&s(&["reload", "--connect", &addr])).is_err());
    run(&s(&[
        "query",
        q.to_str().unwrap(),
        "--connect",
        &addr,
        "--top",
        "3",
        "--stats",
        "--shutdown",
    ]))
    .unwrap();
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_store_smoke() {
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_bstore_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("BENCH_store.json");
    run(&s(&[
        "bench-store",
        "--subjects",
        "600",
        "--qlen",
        "24",
        "--reps",
        "1",
        "--json",
        json.to_str().unwrap(),
    ]))
    .unwrap();
    let report = crate::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(
        report
            .get("identical_hits")
            .and_then(crate::json::Json::as_bool),
        Some(true)
    );
    assert!(report.get("load_speedup").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_index_search_round_trip() {
    let dir = std::env::temp_dir().join(format!("swhybrid_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fasta");
    let db_s = db.to_str().unwrap().to_string();
    run(&s(&["generate", "dog", "0.0005", &db_s])).unwrap();
    run(&s(&["index", &db_s])).unwrap();
    // Use the database's own first record as the query: it must be hit.
    let first = FastaReader::open(&db)
        .unwrap()
        .next_record()
        .unwrap()
        .unwrap();
    let q = dir.join("q.fasta");
    std::fs::write(&q, crate::seq::fasta::to_string(std::iter::once(&first))).unwrap();
    run(&s(&[
        "search",
        q.to_str().unwrap(),
        &db_s,
        "--top",
        "3",
        "--align",
    ]))
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
