//! The one-shot `search` verb: load queries, pick a [`DbSource`], scan,
//! rank, and (optionally) print Gotoh alignments for the reported hits.

use crate::simd::search::SearchConfig;
use crate::store::Store;

use super::args::{kernel_from_opts, scoring_from_opts, store_verify, Opts};
use super::db::{load_encoded, DbSource};

pub(super) fn cmd_search(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "top",
            "threads",
            "matrix",
            "gap-open",
            "gap-extend",
            "kernel",
            "db-store",
        ],
        &["align", "verify-store"],
    )?;
    let scoring = scoring_from_opts(&opts)?;
    let kernel = kernel_from_opts(&opts)?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let threads: usize = opts.get_parsed("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let (qpath, db) = match (opts.get("db-store"), opts.positional.as_slice()) {
        (Some(store_path), [qpath]) => {
            let snapshot = Store::open_with(store_path, store_verify(opts.has("verify-store")))
                .and_then(Store::into_snapshot)
                .map_err(|e| format!("{store_path}: {e}"))?;
            if !snapshot.is_empty() && snapshot.alphabet() != scoring.matrix.alphabet {
                return Err(format!(
                    "{store_path}: store alphabet {:?} does not match scoring alphabet {:?}",
                    snapshot.alphabet(),
                    scoring.matrix.alphabet
                ));
            }
            (qpath, DbSource::Snapshot(snapshot))
        }
        (None, [qpath, dbpath]) => (qpath, DbSource::Encoded(load_encoded(dbpath)?)),
        (Some(_), _) => return Err("search --db-store takes <query.fasta> only".into()),
        (None, _) => return Err("search takes <query.fasta> <db.fasta>".into()),
    };
    let queries = load_encoded(qpath)?;
    if queries.is_empty() {
        return Err(format!("{qpath}: no query sequences"));
    }
    println!(
        "{} quer{} × {} subjects",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        db.len()
    );

    let start = std::time::Instant::now();
    let mut total_cells = 0u64;
    let mut kernel_stats = crate::simd::engine::KernelStats::default();
    for query in &queries {
        let result = db.search(
            &query.codes,
            &scoring,
            SearchConfig {
                threads,
                top_n,
                kernel,
                ..Default::default()
            },
        );
        total_cells += result.cells;
        kernel_stats.merge(&result.stats);
        let stats_params = crate::align::evalue::KarlinAltschul::for_scoring(&scoring);
        let db_residues: u64 = db.total_residues();
        println!("\n# query {} ({} aa)", query.id, query.len());
        println!(
            "{:>4}  {:>6}  {:>8}  {:>9}  {:>6}  subject",
            "rank", "score", "bits", "E-value", "len"
        );
        for (rank, hit) in result.hits.iter().enumerate() {
            let (bits, evalue) = match &stats_params {
                Some(p) => (
                    format!("{:.1}", p.bit_score(hit.score)),
                    format!(
                        "{:.1e}",
                        p.evalue(hit.score, query.len(), db_residues, db.len())
                    ),
                ),
                None => ("-".into(), "-".into()),
            };
            println!(
                "{:>4}  {:>6}  {:>8}  {:>9}  {:>6}  {}",
                rank + 1,
                hit.score,
                bits,
                evalue,
                hit.subject_len,
                hit.id
            );
        }
        if opts.has("align") {
            for hit in &result.hits {
                let alignment = crate::align::gotoh::gotoh_align(
                    &query.codes,
                    db.subject_codes(hit.db_index),
                    &scoring,
                );
                debug_assert_eq!(alignment.score, hit.score, "hit {}", hit.id);
                println!(
                    "\n>{} score {} cigar {} identity {:.0}%",
                    hit.id,
                    hit.score,
                    alignment.cigar(),
                    alignment.identity() * 100.0
                );
                let q_ascii = query.decode();
                let s_ascii = db.decode_subject(hit.db_index);
                println!("{}", alignment.pretty(&q_ascii, &s_ascii));
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "\n{total_cells} cells in {secs:.3} s = {:.2} GCUPS",
        total_cells as f64 / secs / 1e9
    );
    println!(
        "kernel {}: {} striped / {} inter-sequence chunks, \
         subjects i8/i16/scalar striped {}+{}+{} interseq {}+{}+{}",
        kernel.name(),
        kernel_stats.chunks_striped,
        kernel_stats.chunks_interseq,
        kernel_stats.resolved_i8,
        kernel_stats.resolved_i16,
        kernel_stats.resolved_scalar,
        kernel_stats.interseq_i8,
        kernel_stats.interseq_i16,
        kernel_stats.interseq_scalar,
    );
    Ok(())
}
