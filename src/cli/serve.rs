//! The persistent-daemon verbs: `serve` (boot the query daemon from FASTA
//! or a `.swdb` store), `query` (client: search / stats / shutdown), and
//! `reload` (client: atomic hot-swap onto a new database).

use crate::exec::policy::Policy;
use crate::json::Json;
use crate::seq::fasta::FastaReader;
use crate::seq::DbSnapshot;
use crate::store::Store;

use super::args::{kernel_from_opts, scoring_from_opts, store_verify, Opts};
use super::db::load_encoded;

pub(super) fn cmd_serve(args: &[String]) -> Result<(), String> {
    use crate::serve::{ServeDaemon, ServiceConfig};

    let opts = Opts::parse(
        args,
        &[
            "listen",
            "listen-slaves",
            "workers",
            "shards",
            "max-active",
            "queue-depth",
            "client-inflight",
            "cache",
            "chunk",
            "policy",
            "matrix",
            "gap-open",
            "gap-extend",
            "kernel",
            "fusion",
            "retain",
            "db-store",
            "fleet",
        ],
        &["no-adjustment", "verify-store"],
    )?;
    let scoring = scoring_from_opts(&opts)?;
    // The chunk floor is a service-boot panic (`ServiceConfig` is validated
    // in `with_snapshot`); reject it here first so the CLI reports a clean
    // error instead of a panic trace. 0 asks for the validated default.
    if let Some(c) = opts.get("chunk") {
        let c: usize = c
            .parse()
            .map_err(|_| format!("--chunk: cannot parse {c:?}"))?;
        crate::simd::chunk_size(if c == 0 { None } else { Some(c) })
            .map_err(|e| format!("--chunk: {e}"))?;
    }
    // The daemon boots either from FASTA (parse + encode + digest on every
    // start) or from a `.swdb` store (memory-mapped arena, stored digest —
    // no O(db) re-hash unless --verify-store asks for it).
    let (dbpath, snapshot) = match (opts.get("db-store"), opts.positional.as_slice()) {
        (Some(store_path), []) => {
            let snapshot = Store::open_with(store_path, store_verify(opts.has("verify-store")))
                .and_then(Store::into_snapshot)
                .map_err(|e| format!("{store_path}: {e}"))?;
            if !snapshot.is_empty() && snapshot.alphabet() != scoring.matrix.alphabet {
                return Err(format!(
                    "{store_path}: store alphabet {:?} does not match scoring alphabet {:?}",
                    snapshot.alphabet(),
                    scoring.matrix.alphabet
                ));
            }
            (store_path.to_string(), snapshot)
        }
        (None, [dbpath]) => {
            let subjects = load_encoded(dbpath)?;
            let name = std::path::Path::new(dbpath)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            (dbpath.clone(), DbSnapshot::from_encoded(&name, &subjects))
        }
        (Some(_), _) => return Err("serve --db-store takes no positional database".into()),
        (None, _) => return Err("serve takes <db.fasta> (or --db-store FILE.swdb)".into()),
    };
    let listen = opts.get("listen").unwrap_or("127.0.0.1:7979");
    let policy = match opts.get("policy").unwrap_or("pss") {
        "ss" => Policy::SelfScheduling,
        "pss" => Policy::pss_default(),
        other => {
            return Err(format!(
                "serve needs a dynamic policy (ss|pss), got {other:?}"
            ))
        }
    };
    let fleet = super::args::fleet_from_opts(&opts)?;
    if fleet.is_some() && opts.get("workers").is_some() {
        return Err("--fleet replaces --workers (one PE thread per fleet member)".into());
    }
    let default = ServiceConfig::default();
    let config = ServiceConfig {
        workers: opts.get_parsed("workers", default.workers)?,
        fleet,
        shards: opts.get_parsed("shards", default.shards)?,
        max_active: opts.get_parsed("max-active", default.max_active)?,
        queue_depth: opts.get_parsed("queue-depth", default.queue_depth)?,
        per_client_inflight: opts.get_parsed("client-inflight", default.per_client_inflight)?,
        cache_capacity: opts.get_parsed("cache", default.cache_capacity)?,
        chunk_size: opts.get_parsed("chunk", default.chunk_size)?,
        policy,
        adjustment: !opts.has("no-adjustment"),
        kernel: kernel_from_opts(&opts)?,
        fusion: opts.get_parsed("fusion", default.fusion)?,
        retained_jobs: opts.get_parsed("retain", default.retained_jobs)?,
        ..default
    };
    if config.queue_depth == 0 || config.per_client_inflight == 0 {
        return Err("--queue-depth and --client-inflight must be at least 1".into());
    }
    if config.fusion == 0 {
        return Err("--fusion must be at least 1 (1 disables fusion)".into());
    }
    let residues = snapshot.total_residues();
    let digest = snapshot.digest();
    let mapped = snapshot.arena().is_shared();
    let workers = match &config.fleet {
        Some(f) => format!("fleet {}", f.describe()),
        None => format!("{} worker(s)", config.workers.max(1)),
    };
    let daemon = ServeDaemon::bind_snapshot(listen, snapshot, scoring, config)
        .map_err(|e| format!("bind {listen}: {e}"))?;
    println!(
        "serving {dbpath} ({residues} residues{}) on {} with {workers}, \
         digest {digest:016x}",
        if mapped { ", memory-mapped" } else { "" },
        daemon.local_addr().map_err(|e| e.to_string())?
    );
    if let Some(slave_addr) = opts.get("listen-slaves") {
        let bound = daemon
            .listen_slaves(slave_addr, crate::exec::net::NetConfig::default())
            .map_err(|e| format!("bind slave port {slave_addr}: {e}"))?;
        println!("accepting remote slaves on {bound} (swhybrid slave --serve {dbpath} --connect {bound})");
    }
    daemon.run().map_err(|e| e.to_string())
}

pub(super) fn cmd_query(args: &[String]) -> Result<(), String> {
    use crate::serve::protocol::SearchRequest;
    use crate::serve::ServeClient;

    let opts = Opts::parse(
        args,
        &["connect", "top", "deadline-ms"],
        &["stats", "shutdown"],
    )?;
    let connect = opts
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let deadline_ms = match opts.get("deadline-ms") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--deadline-ms: cannot parse {v:?}"))?,
        ),
    };
    let mut client =
        ServeClient::connect(connect).map_err(|e| format!("connect {connect}: {e}"))?;

    match opts.positional.as_slice() {
        [] => {}
        [qpath] => {
            let records = FastaReader::open(qpath)
                .map_err(|e| format!("{qpath}: {e}"))?
                .read_all()
                .map_err(|e| format!("{qpath}: {e}"))?;
            if records.is_empty() {
                return Err(format!("{qpath}: no query sequences"));
            }
            for record in &records {
                let reply = client
                    .search_request(SearchRequest {
                        query: String::from_utf8_lossy(&record.residues).into_owned(),
                        top_n,
                        deadline_ms,
                        tag: Some(record.id.clone()),
                        ack: false,
                    })
                    .map_err(|e| e.to_string())?;
                print_daemon_result(&record.id, &reply)?;
            }
        }
        _ => return Err("query takes at most one <query.fasta>".into()),
    }

    if opts.has("stats") {
        let stats = client.stats().map_err(|e| e.to_string())?;
        println!("{}", stats.to_string_pretty());
    }
    if opts.has("shutdown") {
        let reply = client.shutdown().map_err(|e| e.to_string())?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("shutdown refused: {reply}"));
        }
        println!("daemon draining for shutdown");
    }
    Ok(())
}

pub(super) fn cmd_reload(args: &[String]) -> Result<(), String> {
    use crate::serve::ServeClient;

    let opts = Opts::parse(args, &["connect", "store", "fasta"], &["verify"])?;
    if !opts.positional.is_empty() {
        return Err("reload takes flags only".into());
    }
    let connect = opts
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    let mut client =
        ServeClient::connect(connect).map_err(|e| format!("connect {connect}: {e}"))?;
    let reply = match (opts.get("store"), opts.get("fasta")) {
        (Some(store), None) => client.reload_store(store, opts.has("verify")),
        (None, Some(fasta)) => {
            if opts.has("verify") {
                return Err("--verify applies to --store reloads only".into());
            }
            client.reload_fasta(fasta)
        }
        _ => return Err("reload needs exactly one of --store or --fasta".into()),
    }
    .map_err(|e| e.to_string())?;
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
        let reason = reply.get("reason").and_then(Json::as_str).unwrap_or("");
        return Err(format!("reload refused: {code}: {reason}"));
    }
    println!(
        "daemon now serving {} (generation {}): {} sequences, {} residues, digest {}",
        reply.get("name").and_then(Json::as_str).unwrap_or("?"),
        reply.get("generation").and_then(Json::as_u64).unwrap_or(0),
        reply.get("sequences").and_then(Json::as_u64).unwrap_or(0),
        reply.get("residues").and_then(Json::as_u64).unwrap_or(0),
        reply.get("digest").and_then(Json::as_str).unwrap_or("?"),
    );
    println!("remote slaves (if any) were disconnected for re-admission under the new digest");
    Ok(())
}

fn print_daemon_result(qid: &str, reply: &Json) -> Result<(), String> {
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
        let reason = reply.get("reason").and_then(Json::as_str).unwrap_or("");
        return Err(format!("query {qid}: {code}: {reason}"));
    }
    let job = reply.get("job").and_then(Json::as_u64).unwrap_or(0);
    let cached = reply.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let elapsed = reply
        .get("elapsed_ms")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let cells = reply.get("cells").and_then(Json::as_u64).unwrap_or(0);
    println!(
        "\n# query {qid}: job {job} {} in {elapsed:.1} ms ({cells} cells)",
        if cached { "cached" } else { "scanned" }
    );
    println!("{:>4}  {:>6}  {:>6}  subject", "rank", "score", "len");
    let hits = crate::serve::ServeClient::hits(reply).map_err(|e| format!("bad result: {e}"))?;
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "{:>4}  {:>6}  {:>6}  {}",
            rank + 1,
            hit.score,
            hit.subject_len,
            hit.id
        );
    }
    Ok(())
}
