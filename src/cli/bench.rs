//! The measurement verbs: `bench-kernels` (kernel GCUPS + thread scaling),
//! `bench-serve` (daemon throughput, fused vs unfused), `bench-store`
//! (cold-start latency of the two database load paths), and the JSON
//! baseline regression check the CI smoke jobs run against the committed
//! `BENCH_*.json` reports.

use crate::align::scoring::{GapModel, Scoring, SubstMatrix};
use crate::json::Json;
use crate::seq::sequence::EncodedSequence;
use crate::seq::Alphabet;
use crate::simd::search::{DatabaseSearch, Hit, KernelChoice, SearchConfig};
use crate::store::{build_store, Store};

use super::args::Opts;
use super::db::{load_encoded, DbSource};

/// A length-skewed synthetic database: a large body of short subjects with
/// rare long outliers. This is the shape that starves the striped kernel
/// on per-subject setup cost and favours inter-sequence dispatch.
fn skewed_bench_db(seed: u64, n: usize) -> Vec<EncodedSequence> {
    let mut rng = crate::seq::synth::rng(seed);
    (0..n)
        .map(|i| {
            let len = if i % 97 == 0 {
                400 + (i % 7) * 100
            } else {
                20 + i % 61
            };
            let ascii = crate::seq::synth::random_protein(&mut rng, len);
            let codes = Alphabet::Protein
                .encode(&ascii)
                .expect("synthetic residues are valid");
            EncodedSequence {
                id: format!("s{i}"),
                codes,
                alphabet: Alphabet::Protein,
            }
        })
        .collect()
}

/// Regression check of one throughput metric against a stored baseline:
/// `current` may be faster than `baseline` without limit, but must not
/// fall more than `tolerance_pct` percent below it. Non-positive baselines
/// (absent or zero fields) never fail — a missing metric is not a
/// regression.
pub(super) fn check_baseline_metric(
    name: &str,
    current: f64,
    baseline: f64,
    tolerance_pct: f64,
) -> Result<(), String> {
    if baseline <= 0.0 {
        return Ok(());
    }
    let floor = baseline * (1.0 - tolerance_pct / 100.0);
    if current < floor {
        return Err(format!(
            "{name}: {current:.4} regressed more than {tolerance_pct}% below \
             baseline {baseline:.4} (floor {floor:.4})"
        ));
    }
    Ok(())
}

/// Load a `--baseline` report written by an earlier run of the same verb.
fn load_baseline(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--baseline {path}: {e}"))?;
    Json::parse(text.trim()).map_err(|e| format!("--baseline {path}: {e}"))
}

pub(super) fn cmd_bench_kernels(args: &[String]) -> Result<(), String> {
    use crate::exec::net::kernels_to_json;

    let opts = Opts::parse(
        args,
        &[
            "subjects",
            "qlen",
            "reps",
            "threads",
            "json",
            "baseline",
            "tolerance",
        ],
        &[],
    )?;
    if !opts.positional.is_empty() {
        return Err("bench-kernels takes flags only".into());
    }
    let n: usize = opts.get_parsed("subjects", 4000)?;
    let qlen: usize = opts.get_parsed("qlen", 256)?;
    let reps: usize = opts.get_parsed("reps", 3)?;
    if n == 0 || qlen == 0 || reps == 0 {
        return Err("--subjects, --qlen, and --reps must be at least 1".into());
    }
    let threads: Vec<usize> = opts
        .get("threads")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&t| t >= 1)
                .ok_or_else(|| format!("--threads: '{t}' is not a positive integer"))
        })
        .collect::<Result<_, _>>()?;
    if !threads.contains(&1) {
        return Err("--threads must include 1 (the scaling-efficiency baseline)".into());
    }
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let subjects = skewed_bench_db(2013, n);
    let residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    let mut rng = crate::seq::synth::rng(qlen as u64);
    let query_ascii = crate::seq::synth::random_protein(&mut rng, qlen);
    let query = Alphabet::Protein
        .encode(&query_ascii)
        .expect("synthetic residues are valid");
    println!(
        "length-skewed db: {n} subjects, {residues} residues; query {qlen} aa; best of {reps}"
    );
    println!(
        "{:>10}  {:>7}  {:>8}  {:>9}  {:>6}  {:>8}  {:>8}  chunks s/i",
        "kernel", "threads", "gcups", "secs", "eff", "cells", "nominal"
    );

    let mut rows = Vec::new();
    let mut baseline_hits: Option<Vec<Hit>> = None;
    for kernel in [
        KernelChoice::Striped,
        KernelChoice::InterSeq,
        KernelChoice::Auto,
    ] {
        let mut single_gcups = None;
        for &t in &threads {
            let search = DatabaseSearch::new(
                &query,
                &scoring,
                SearchConfig {
                    threads: t,
                    top_n: 10,
                    kernel,
                    ..Default::default()
                },
            );
            let mut best_secs = f64::INFINITY;
            let mut result = None;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                let r = search.run(&subjects);
                best_secs = best_secs.min(t0.elapsed().as_secs_f64());
                result = Some(r);
            }
            let r = result.expect("reps >= 1");
            // GCUPS over *nominal* cells (query × residues): every kernel
            // does the same nominal work, so the numbers are directly
            // comparable even when saturation retries inflate the actual
            // cell count.
            let gcups = r.cells_nominal as f64 / best_secs / 1e9;
            if t == 1 {
                single_gcups = Some(gcups);
            }
            // Perfect scaling doubles GCUPS when threads double; the
            // efficiency is the achieved fraction of that ideal.
            let efficiency = single_gcups.map(|g1| gcups / (t as f64 * g1));
            println!(
                "{:>10}  {:>7}  {:>8.3}  {:>9.4}  {:>6}  {:>8}  {:>8}  {}/{}",
                kernel.name(),
                t,
                gcups,
                best_secs,
                efficiency.map_or("--".into(), |e| format!("{e:.2}")),
                r.cells,
                r.cells_nominal,
                r.stats.chunks_striped,
                r.stats.chunks_interseq,
            );
            match &baseline_hits {
                None => baseline_hits = Some(r.hits.clone()),
                Some(b) => {
                    if *b != r.hits {
                        return Err(format!(
                            "kernel {} at {t} threads produced a different ranking than striped",
                            kernel.name()
                        ));
                    }
                }
            }
            rows.push((kernel, t, gcups, best_secs, efficiency, r));
        }
    }
    println!("rankings identical across all kernel x thread combinations");

    if let Some(path) = opts.get("json") {
        let report = Json::obj(vec![
            ("subjects", Json::Num(n as f64)),
            ("residues", Json::Num(residues as f64)),
            ("query_len", Json::Num(qlen as f64)),
            ("reps", Json::Num(reps as f64)),
            ("identical_rankings", Json::Bool(true)),
            (
                "kernels",
                Json::Arr(
                    rows.iter()
                        .filter(|(_, t, ..)| *t == 1)
                        .map(|(kernel, _, gcups, secs, _, r)| {
                            Json::obj(vec![
                                ("kernel", Json::str(kernel.name())),
                                ("gcups", Json::Num(*gcups)),
                                ("seconds", Json::Num(*secs)),
                                ("cells", Json::Num(r.cells as f64)),
                                ("cells_nominal", Json::Num(r.cells_nominal as f64)),
                                ("stats", kernels_to_json(&r.stats)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "threads_sweep",
                Json::Arr(
                    rows.iter()
                        .map(|(kernel, t, gcups, secs, efficiency, _)| {
                            Json::obj(vec![
                                ("kernel", Json::str(kernel.name())),
                                ("threads", Json::Num(*t as f64)),
                                ("gcups", Json::Num(*gcups)),
                                ("seconds", Json::Num(*secs)),
                                (
                                    "scaling_efficiency",
                                    efficiency.map_or(Json::Null, Json::Num),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(path) = opts.get("baseline") {
        let tolerance: f64 = opts.get_parsed("tolerance", 5.0)?;
        let base = load_baseline(path)?;
        // Per-kernel single-thread GCUPS against the stored report: the
        // workload is seeded, so only the machine and the code changed.
        let entries = base
            .get("kernels")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("--baseline {path}: no 'kernels' array"))?;
        for entry in entries {
            let name = entry
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("--baseline {path}: kernel entry without a name"))?;
            let base_gcups = entry.get("gcups").and_then(Json::as_f64).unwrap_or(0.0);
            let current = rows
                .iter()
                .find(|(k, t, ..)| k.name() == name && *t == 1)
                .map(|(_, _, gcups, ..)| *gcups)
                .ok_or_else(|| format!("--baseline {path}: kernel {name:?} was not measured"))?;
            check_baseline_metric(&format!("{name} gcups"), current, base_gcups, tolerance)?;
        }
        println!("baseline {path}: every kernel within {tolerance}% of its stored GCUPS");
    }
    Ok(())
}

/// Knobs of one [`serve_bench_run`]: total queries across all clients,
/// top-N per reply, per-client pipelining depth, the fusion cap, and the
/// fleet shape (local worker threads + loopback TCP slaves).
struct ServeBenchKnobs {
    total: usize,
    top_n: usize,
    inflight: usize,
    fusion: usize,
    workers: usize,
    slaves: usize,
}

/// One serving-throughput run: `concurrency` pipelined clients, each
/// keeping `inflight` submissions of its own fixed query outstanding
/// until `queries` total complete — the saturated-server regime a
/// throughput benchmark is about (a closed loop with one outstanding
/// query per client measures latency, not capacity, and starves the
/// scheduler of anything to fuse).
/// Returns (queries/sec, per-client hit tables, achieved fusion factor).
fn serve_bench_run(
    db: &[EncodedSequence],
    scoring: &Scoring,
    queries: &[Vec<u8>],
    knobs: &ServeBenchKnobs,
) -> Result<(f64, Vec<Vec<Hit>>, f64), String> {
    use crate::exec::net::{run_serve_slave, NetConfig};
    use crate::serve::{QueryService, SearchReply, ServiceConfig};

    let &ServeBenchKnobs {
        total,
        top_n,
        inflight,
        fusion,
        workers,
        slaves,
    } = knobs;

    let svc = QueryService::new(
        db.to_vec(),
        scoring.clone(),
        ServiceConfig {
            workers,
            // One shard per fleet member, so every group spreads across
            // the whole fleet (local workers and TCP slaves alike).
            shards: workers + slaves,
            // Two groups in flight: while one scans, the next one's wire
            // round trips overlap with it instead of idling the fleet.
            max_active: 2,
            fusion,
            cache_capacity: 0, // every submission really scans
            queue_depth: (queries.len() * inflight).max(4) * 2,
            per_client_inflight: inflight.max(1),
            ..Default::default()
        },
    );
    // The hybrid-fleet mode: loopback TCP slaves join the pool and pull
    // shard tasks over the wire. Fused tasks carry the whole query batch
    // in one round trip — the per-task transport is exactly what fusion
    // amortizes.
    let mut slave_threads = Vec::new();
    if slaves > 0 {
        let net = NetConfig {
            reconnect_max_retries: 0,
            ..NetConfig::default()
        };
        let addr = svc
            .listen_slaves("127.0.0.1:0", net.clone())
            .map_err(|e| format!("listen_slaves: {e}"))?;
        for s in 0..slaves {
            let db = db.to_vec();
            let scoring = scoring.clone();
            let net = net.clone();
            slave_threads.push(std::thread::spawn(move || {
                let _ = run_serve_slave(
                    addr,
                    &format!("bench-slave{s}"),
                    1.0,
                    &db,
                    &scoring,
                    KernelChoice::Auto,
                    &net,
                );
            }));
        }
        let fleet = workers + slaves;
        for _ in 0..500 {
            let pes = svc
                .stats()
                .get("pes")
                .and_then(Json::as_array)
                .map(|p| p.len())
                .unwrap_or(0);
            if pes >= fleet {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
    let per_client = total / queries.len();
    let t0 = std::time::Instant::now();
    let tables: Vec<Vec<Hit>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(c, q)| {
                let svc = &svc;
                scope.spawn(move || {
                    let (tx, rx) = std::sync::mpsc::channel::<SearchReply>();
                    let submit = |n: usize| -> Result<(), String> {
                        for _ in 0..n {
                            let tx = tx.clone();
                            svc.submit(
                                q.clone(),
                                top_n,
                                None,
                                None,
                                c as u64,
                                Box::new(move |reply| {
                                    let _ = tx.send(reply);
                                }),
                            )
                            .map_err(|e| format!("client {c} rejected: {e:?}"))?;
                        }
                        Ok(())
                    };
                    submit(inflight.min(per_client))?;
                    let mut submitted = inflight.min(per_client);
                    let mut table = Vec::new();
                    for rep in 0..per_client {
                        let reply = rx.recv().expect("service dropped before replying");
                        if rep == 0 {
                            table = reply.hits;
                        } else if table != reply.hits {
                            return Err(format!("client {c} rep {rep}: hits drifted"));
                        }
                        if submitted < per_client {
                            submit(1)?;
                            submitted += 1;
                        }
                    }
                    Ok(table)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client panicked"))
            .collect::<Result<_, String>>()
    })?;
    let secs = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    let factor = stats
        .get("fusion")
        .and_then(|f| f.get("factor"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    svc.shutdown();
    for h in slave_threads {
        h.join().expect("bench slave panicked");
    }
    Ok(((per_client * queries.len()) as f64 / secs, tables, factor))
}

pub(super) fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "concurrency",
            "queries",
            "qlen",
            "subjects",
            "fusion",
            "workers",
            "slaves",
            "inflight",
            "top",
            "json",
            "baseline",
            "tolerance",
        ],
        &[],
    )?;
    if !opts.positional.is_empty() {
        return Err("bench-serve takes flags only".into());
    }
    let concurrency: usize = opts.get_parsed("concurrency", 4)?;
    let total: usize = opts.get_parsed("queries", 64)?;
    let qlen: usize = opts.get_parsed("qlen", 20)?;
    let subjects_n: usize = opts.get_parsed("subjects", 2000)?;
    let fusion: usize = opts.get_parsed("fusion", 4)?;
    let workers: usize = opts.get_parsed("workers", 1)?;
    let slaves: usize = opts.get_parsed("slaves", 1)?;
    let inflight: usize = opts.get_parsed("inflight", 4)?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let json_path = opts.get("json").unwrap_or("BENCH_serve.json");
    if concurrency == 0 || total < concurrency || qlen == 0 || subjects_n == 0 || fusion == 0 {
        return Err(
            "--concurrency, --qlen, --subjects, --fusion must be >= 1 and \
             --queries >= --concurrency"
                .into(),
        );
    }
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let db = skewed_bench_db(2013, subjects_n);
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();
    // Identical-length, distinct queries — one per closed-loop client.
    let queries: Vec<Vec<u8>> = (0..concurrency)
        .map(|c| {
            let mut rng = crate::seq::synth::rng(4000 + c as u64);
            let ascii = crate::seq::synth::random_protein(&mut rng, qlen);
            Alphabet::Protein
                .encode(&ascii)
                .expect("synthetic residues are valid")
        })
        .collect();
    println!(
        "serving bench: {subjects_n} subjects ({residues} residues), \
         {concurrency} clients x {qlen} aa, {total} queries per run"
    );

    // Warm-up run (populates allocator, page cache) is the unfused run
    // measured second; run fused first so neither mode benefits from
    // being warmed by the other asymmetrically... measure both orders'
    // worst case instead: unfused, fused, unfused — keep the better
    // unfused (fairness tilts against fusion).
    let knobs = ServeBenchKnobs {
        total,
        top_n,
        inflight,
        fusion,
        workers,
        slaves,
    };
    let unfused = ServeBenchKnobs { fusion: 1, ..knobs };
    let (qps_unfused_a, hits_unfused, _) = serve_bench_run(&db, &scoring, &queries, &unfused)?;
    let (qps_fused, hits_fused, factor) = serve_bench_run(&db, &scoring, &queries, &knobs)?;
    let (qps_unfused_b, hits_unfused_b, _) = serve_bench_run(&db, &scoring, &queries, &unfused)?;
    if hits_fused != hits_unfused || hits_unfused != hits_unfused_b {
        return Err("fused and unfused runs returned different hit tables".into());
    }
    let qps_unfused = qps_unfused_a.max(qps_unfused_b);
    let speedup = qps_fused / qps_unfused;
    println!("  unfused: {qps_unfused:8.2} queries/s");
    println!("  fused:   {qps_fused:8.2} queries/s (achieved fusion factor {factor:.2})");
    println!("  speedup: {speedup:.2}x  (hit tables identical)");

    let report = Json::obj(vec![
        ("concurrency", Json::Num(concurrency as f64)),
        ("queries", Json::Num(total as f64)),
        ("query_len", Json::Num(qlen as f64)),
        ("subjects", Json::Num(subjects_n as f64)),
        ("residues", Json::Num(residues as f64)),
        ("workers", Json::Num(workers as f64)),
        ("fusion", Json::Num(fusion as f64)),
        ("fusion_factor", Json::Num(factor)),
        ("qps_unfused", Json::Num(qps_unfused)),
        ("qps_fused", Json::Num(qps_fused)),
        ("speedup", Json::Num(speedup)),
        ("identical_hits", Json::Bool(true)),
    ]);
    std::fs::write(json_path, format!("{report}\n")).map_err(|e| format!("{json_path}: {e}"))?;
    println!("wrote {json_path}");

    if let Some(path) = opts.get("baseline") {
        let tolerance: f64 = opts.get_parsed("tolerance", 5.0)?;
        let base = load_baseline(path)?;
        let metric = |key: &str| base.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        check_baseline_metric("qps_unfused", qps_unfused, metric("qps_unfused"), tolerance)?;
        check_baseline_metric("qps_fused", qps_fused, metric("qps_fused"), tolerance)?;
        println!("baseline {path}: fused and unfused throughput within {tolerance}%");
    }
    Ok(())
}

/// Peak RSS (`VmHWM`) in kB. Linux only; `None` elsewhere.
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Reset the peak-RSS watermark to the current RSS so per-phase peaks are
/// measurable in one process (Linux `clear_refs`; a no-op elsewhere).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// One cold-start measurement: load the database from `path`, run one
/// query to first result, and report (load seconds, total seconds, hits,
/// peak RSS in kB if measurable).
struct ColdStart {
    load_secs: f64,
    first_result_secs: f64,
    hits: Vec<Hit>,
    peak_rss_kb: Option<u64>,
}

/// Preferred measurement: run the probe in a fresh child process, so each
/// path's peak RSS reflects that path alone instead of the allocator reuse
/// of whatever ran before it in this process. Only possible when we *are*
/// the real `swhybrid` binary (under `cargo test` the current executable
/// is the test harness, whose argv belongs to libtest).
fn cold_start_via_probe(
    path: &str,
    from_store: bool,
    query_ascii: &str,
    top_n: usize,
) -> Option<ColdStart> {
    use crate::serve::protocol::hits_from_json;

    let exe = std::env::current_exe().ok()?;
    if exe.file_stem()?.to_str()? != "swhybrid" {
        return None;
    }
    let out = std::process::Command::new(&exe)
        .args([
            "bench-store-probe",
            path,
            if from_store { "store" } else { "fasta" },
            query_ascii,
            &top_n.to_string(),
        ])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let json = Json::parse(std::str::from_utf8(&out.stdout).ok()?.trim()).ok()?;
    Some(ColdStart {
        load_secs: json.get("load_secs").and_then(Json::as_f64)?,
        first_result_secs: json.get("first_result_secs").and_then(Json::as_f64)?,
        hits: hits_from_json(json.get("hits")?).ok()?,
        peak_rss_kb: json.get("peak_rss_kb").and_then(Json::as_u64),
    })
}

/// Internal entry point for [`cold_start_via_probe`] (not in USAGE): load
/// one database path, run one query, print the measurement as one JSON
/// line on stdout.
pub(super) fn cmd_bench_store_probe(args: &[String]) -> Result<(), String> {
    use crate::serve::protocol::hits_to_json;

    let [path, kind, query_ascii, top_n] = args else {
        return Err("bench-store-probe takes <path> <store|fasta> <query> <top>".into());
    };
    let from_store = match kind.as_str() {
        "store" => true,
        "fasta" => false,
        other => return Err(format!("unknown probe kind {other:?}")),
    };
    let top_n: usize = top_n.parse().map_err(|_| format!("bad top {top_n:?}"))?;
    let query = Alphabet::Protein
        .encode(query_ascii.as_bytes())
        .map_err(|e| e.to_string())?;
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let c = cold_start_in_process(path, from_store, &query, &scoring, top_n)?;
    println!(
        "{}",
        Json::obj(vec![
            ("load_secs", Json::Num(c.load_secs)),
            ("first_result_secs", Json::Num(c.first_result_secs)),
            (
                "peak_rss_kb",
                c.peak_rss_kb.map_or(Json::Null, |v| Json::Num(v as f64)),
            ),
            ("hits", hits_to_json(&c.hits)),
        ])
    );
    Ok(())
}

fn cold_start_in_process(
    path: &str,
    from_store: bool,
    query: &[u8],
    scoring: &Scoring,
    top_n: usize,
) -> Result<ColdStart, String> {
    reset_peak_rss();
    let rss_before = peak_rss_kb();
    let t0 = std::time::Instant::now();
    let db = if from_store {
        DbSource::Snapshot(
            Store::open(path)
                .and_then(Store::into_snapshot)
                .map_err(|e| format!("{path}: {e}"))?,
        )
    } else {
        DbSource::Encoded(load_encoded(path)?)
    };
    let load_secs = t0.elapsed().as_secs_f64();
    let result = db.search(
        query,
        scoring,
        SearchConfig {
            top_n,
            ..Default::default()
        },
    );
    let first_result_secs = t0.elapsed().as_secs_f64();
    let peak = peak_rss_kb();
    Ok(ColdStart {
        load_secs,
        first_result_secs,
        hits: result.hits,
        peak_rss_kb: match (rss_before, peak) {
            (Some(before), Some(after)) => Some(after.saturating_sub(before)),
            _ => None,
        },
    })
}

pub(super) fn cmd_bench_store(args: &[String]) -> Result<(), String> {
    use crate::seq::sequence::Sequence;

    let opts = Opts::parse(args, &["subjects", "qlen", "reps", "top", "json"], &[])?;
    if !opts.positional.is_empty() {
        return Err("bench-store takes flags only".into());
    }
    let n: usize = opts.get_parsed("subjects", 20000)?;
    let qlen: usize = opts.get_parsed("qlen", 64)?;
    let reps: usize = opts.get_parsed("reps", 3)?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let json_path = opts.get("json").unwrap_or("BENCH_store.json");
    if n == 0 || qlen == 0 || reps == 0 {
        return Err("--subjects, --qlen, and --reps must be at least 1".into());
    }
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let db = skewed_bench_db(2013, n);
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();
    let dir = std::env::temp_dir().join(format!("swhybrid_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let fasta_path = dir.join("bench.fasta");
    let store_path = dir.join("bench.swdb");
    let records: Vec<Sequence> = db
        .iter()
        .map(|s| Sequence::new(s.id.clone(), "", s.decode()))
        .collect();
    std::fs::write(&fasta_path, crate::seq::fasta::to_string(&records))
        .map_err(|e| e.to_string())?;
    build_store(&store_path, "bench", &db).map_err(|e| e.to_string())?;
    let mut rng = crate::seq::synth::rng(77);
    let query_ascii = crate::seq::synth::random_protein(&mut rng, qlen);
    let query = Alphabet::Protein
        .encode(&query_ascii)
        .expect("synthetic residues are valid");
    println!(
        "cold-start bench: {n} subjects ({residues} residues), query {qlen} aa, best of {reps}"
    );

    let query_str = String::from_utf8(query_ascii.clone()).expect("synthetic query is ASCII");
    let measure = |path: &std::path::Path, from_store: bool| -> Result<ColdStart, String> {
        let path = path.to_str().expect("temp paths are UTF-8");
        match cold_start_via_probe(path, from_store, &query_str, top_n) {
            Some(c) => Ok(c),
            // In-process fallback (tests, non-subprocess platforms): the
            // RSS split between the two paths is then approximate.
            None => cold_start_in_process(path, from_store, &query, &scoring, top_n),
        }
    };
    let mut best: [Option<ColdStart>; 2] = [None, None];
    for _ in 0..reps {
        let store = measure(&store_path, true)?;
        let fasta = measure(&fasta_path, false)?;
        if store.hits != fasta.hits {
            return Err("store-path and FASTA-path hit tables differ".into());
        }
        for (slot, run) in best.iter_mut().zip([store, fasta]) {
            if slot.as_ref().is_none_or(|b| run.load_secs < b.load_secs) {
                *slot = Some(run);
            }
        }
    }
    let [Some(store), Some(fasta)] = best else {
        unreachable!("reps >= 1 fills both slots");
    };
    let speedup = fasta.load_secs / store.load_secs.max(1e-9);
    let fmt_rss = |kb: Option<u64>| kb.map_or("n/a".to_string(), |v| format!("{v} kB"));
    println!(
        "  fasta: load {:.4} s, first result {:.4} s, peak RSS {}",
        fasta.load_secs,
        fasta.first_result_secs,
        fmt_rss(fasta.peak_rss_kb)
    );
    println!(
        "  store: load {:.4} s, first result {:.4} s, peak RSS {}",
        store.load_secs,
        store.first_result_secs,
        fmt_rss(store.peak_rss_kb)
    );
    println!("  load speedup: {speedup:.1}x  (hit tables identical)");

    let side = |c: &ColdStart| {
        Json::obj(vec![
            ("load_secs", Json::Num(c.load_secs)),
            ("first_result_secs", Json::Num(c.first_result_secs)),
            (
                "peak_rss_kb",
                c.peak_rss_kb.map_or(Json::Null, |v| Json::Num(v as f64)),
            ),
        ])
    };
    let report = Json::obj(vec![
        ("subjects", Json::Num(n as f64)),
        ("residues", Json::Num(residues as f64)),
        ("query_len", Json::Num(qlen as f64)),
        ("reps", Json::Num(reps as f64)),
        ("fasta", side(&fasta)),
        ("store", side(&store)),
        ("load_speedup", Json::Num(speedup)),
        ("identical_hits", Json::Bool(true)),
    ]);
    std::fs::write(json_path, format!("{report}\n")).map_err(|e| format!("{json_path}: {e}"))?;
    println!("wrote {json_path}");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
