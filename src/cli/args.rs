//! The shared option surface: the minimal `--key value` flag parser and
//! the decoders (scoring scheme, kernel choice, allocation policy, store
//! verification level) that multiple verbs accept identically.

use crate::align::scoring::{GapModel, Scoring, SubstMatrix};
use crate::exec::policy::Policy;
use crate::simd::search::KernelChoice;
use crate::store::Verify;

/// Minimal flag parser: `--key value` pairs plus positional arguments.
pub(super) struct Opts {
    pub(super) positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    pub(super) fn parse(
        args: &[String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    flags.push((name.to_string(), None));
                } else if value_flags.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    flags.push((name.to_string(), Some(value.clone())));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    pub(super) fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    pub(super) fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    pub(super) fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

pub(super) fn kernel_from_opts(opts: &Opts) -> Result<KernelChoice, String> {
    match opts.get("kernel") {
        None => Ok(KernelChoice::Auto),
        Some(v) => KernelChoice::parse(v).ok_or_else(|| format!("unknown kernel {v:?}")),
    }
}

pub(super) fn scoring_from_opts(opts: &Opts) -> Result<Scoring, String> {
    let matrix = match opts.get("matrix").unwrap_or("blosum62") {
        "blosum62" => SubstMatrix::blosum62(),
        "blosum50" => SubstMatrix::blosum50(),
        "pam250" => SubstMatrix::pam250(),
        other => return Err(format!("unknown matrix {other:?}")),
    };
    let open = opts.get_parsed("gap-open", 10i32)?;
    let extend = opts.get_parsed("gap-extend", 2i32)?;
    if open < 0 || extend <= 0 {
        return Err("gap penalties must be positive".into());
    }
    Ok(Scoring {
        matrix,
        gap: GapModel::Affine { open, extend },
    })
}

pub(super) fn policy_from_opts(opts: &Opts) -> Result<Policy, String> {
    Ok(match opts.get("policy").unwrap_or("pss") {
        "ss" => Policy::SelfScheduling,
        "pss" => Policy::pss_default(),
        "fixed" => Policy::Fixed,
        "wfixed" => Policy::WFixed,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

/// Decode `--fleet sse:8+gpu:2` identically for every verb that takes a
/// hybrid fleet (`master`, `serve`, `simulate`). Malformed specs are
/// errors, never defaults.
pub(super) fn fleet_from_opts(opts: &Opts) -> Result<Option<crate::device::FleetSpec>, String> {
    match opts.get("fleet") {
        None => Ok(None),
        Some(spec) => crate::device::FleetSpec::parse(spec)
            .map(Some)
            .map_err(|e| format!("--fleet: {e}")),
    }
}

pub(super) fn store_verify(full: bool) -> Verify {
    if full {
        Verify::Full
    } else {
        Verify::Quick
    }
}
