//! The `swhybrid` command-line front end: one module per verb family.
//!
//! The binary (`src/bin/swhybrid.rs`) is a thin shell around [`run`]; every
//! verb lives here in the library so the whole CLI surface is testable
//! in-process (no subprocess spawning, no argv plumbing):
//!
//! * [`args`] — the shared flag parser plus the scoring / kernel / policy
//!   option decoders every verb reuses,
//! * [`db`] — database plumbing: `index`, `db build|inspect`, `generate`,
//!   and [`db::DbSource`] (FASTA records or a memory-mapped `.swdb` store),
//! * [`search`] — the one-shot `search` verb,
//! * [`bench`] — the `bench-kernels` / `bench-serve` / `bench-store`
//!   measurement verbs and their JSON baseline regression checks,
//! * [`master_slave`] — the distributed `master` / `slave` pair and the
//!   virtual-time `simulate` verb,
//! * [`serve`] — the persistent daemon (`serve`) and its clients
//!   (`query`, `reload`).

mod args;
mod bench;
mod db;
mod master_slave;
mod search;
mod serve;
#[cfg(test)]
mod tests;

const USAGE: &str = "\
swhybrid — biological sequence comparison on hybrid platforms

USAGE:
  swhybrid index <file.fasta>
      Build the indexed-format sidecar (<file>.swhidx): sequence count,
      longest-sequence size, per-sequence byte offsets.

  swhybrid db build <db.fasta> <out.swdb> [--name NAME]
      Compile a FASTA database into a persistent `.swdb` store: the
      encoded residue arena (64-byte aligned, memory-mappable), ids,
      spans, the length-sorted scan permutation, per-chunk residue
      counts, and the FNV database digest — everything the runtime
      otherwise reconstructs on every boot. Written atomically
      (temp file + fsync + rename).

  swhybrid db inspect <store.swdb> [--verify]
      Print a store's header: name, alphabet, sequence/residue counts,
      length extrema, digest, section sizes. --verify additionally
      checks the arena checksum and re-hashes the full database digest.

  swhybrid generate <db-name> <scale> <out.fasta>
      Write a synthetic stand-in for one of the paper's databases.
      <db-name>: dog | rat | human | mouse | swissprot
      <scale>:   fraction of the full sequence count, e.g. 0.01

  swhybrid search <query.fasta> <db.fasta> [--top N] [--threads N]
                  [--matrix blosum62|blosum50|pam250]
                  [--gap-open N] [--gap-extend N] [--align]
                  [--kernel striped|interseq|auto]
                  [--db-store FILE.swdb] [--verify-store]
      Compare every query against the database with the adapted-Farrar
      striped engine; print ranked hits (and alignments with --align).
      --kernel selects the scan kernel per chunk: the striped engine, the
      SWIPE-style inter-sequence engine, or adaptive dispatch (default).
      --db-store replaces <db.fasta> with a `.swdb` store: the arena is
      memory-mapped and scanned in place (no parse, no re-encode), with
      hit tables byte-identical to the FASTA path. --verify-store
      re-checks the arena checksum and digest before scanning.

  swhybrid bench-kernels [--subjects N] [--qlen N] [--reps N]
                         [--threads LIST] [--json FILE]
                         [--baseline FILE] [--tolerance PCT]
      Time the striped, inter-sequence, and adaptive kernels over a
      length-skewed synthetic database and report GCUPS (nominal cells,
      so the kernels are directly comparable). --threads takes a comma
      list of worker counts (default 1,2,4) and reports per-count GCUPS
      plus scaling efficiency; rankings must stay identical across every
      kernel x thread combination. --json also writes the table as a
      JSON report. --baseline compares each kernel's single-thread GCUPS
      against a previously written report and fails if any regressed
      more than --tolerance percent (default 5).

  swhybrid simulate [--gpus N] [--sse N] [--fpgas N] [--fleet SPEC]
                    [--db NAME] [--policy ss|pss|fixed|wfixed]
                    [--no-adjustment] [--order asc|desc|shuffle] [--queries N]
      Run the paper's 40-query workload (or --queries N) on a simulated
      hybrid platform under virtual time and report time/GCUPS. --fleet
      takes the same sse:8+gpu:2 spec as master/serve and replaces the
      per-kind count flags.

  swhybrid master <query.fasta> <db.fasta> --listen HOST:PORT --slaves N
                  [--fleet SPEC] [--db-store FILE.swdb] [--verify-store]
                  [--policy ...] [--no-adjustment] [--top N]
                  [--register-timeout SECS] [--slave-deadline SECS]
                  [--events FILE.json] [--matrix ...] [--gap-open N]
                  [--gap-extend N]
      Start the distributed master: waits for N slaves to register (at most
      --register-timeout seconds; 0 waits forever), then distributes one
      task per query and prints the merged hits. A slave silent for
      --slave-deadline seconds is declared dead and its tasks requeued.
      --events streams the structured run-event log as JSON lines (one
      event per line, written as the run progresses).
      --fleet sse:2+gpu:1 additionally hosts a local hybrid fleet in the
      master process — real SIMD PEs plus modeled accelerators (real
      scores, calibrated model speed) — on the same scheduling pool as
      the TCP slaves; with --fleet, --slaves 0 runs entirely locally.
      --db-store loads the database from a `.swdb` store instead of FASTA
      (then only <query.fasta> is positional).

  swhybrid serve <db.fasta> --listen HOST:PORT [--workers N] [--fleet SPEC]
                 [--shards N] [--db-store FILE.swdb] [--verify-store]
                 [--listen-slaves HOST:PORT] [--max-active N] [--fusion N]
                 [--queue-depth N] [--client-inflight N] [--cache N]
                 [--retain N] [--policy ss|pss] [--no-adjustment]
                 [--matrix ...] [--gap-open N] [--gap-extend N]
                 [--kernel striped|interseq|auto] [--chunk N]
      Start the persistent query daemon: the database stays resident and
      the master/slave scheduler stays warm between queries. Speaks
      newline-delimited JSON (verbs: search, status, cancel, stats,
      shutdown) with bounded admission, per-client in-flight limits, an
      LRU result cache, and live metrics. Runs until a client sends
      shutdown, then drains in-flight queries and exits.
      Queries that queue behind a running group are fused — up to
      --fusion of them share each database pass (1 disables fusion);
      results stay byte-identical to per-query scans. --retain bounds how
      many finished jobs keep answering status before eviction. --chunk
      overrides the scan chunk size (subjects per claimed unit; rejected
      below the kernel floor).
      --listen-slaves additionally accepts remote slave processes
      (`swhybrid slave --serve`) on a second port: they join the same
      scheduling pool as the local workers, take database shards, and may
      connect or disconnect at any time while the daemon keeps serving.
      --fleet sse:2+gpu:1 replaces --workers with a hybrid worker fleet:
      one PE thread per member, modeled accelerators registering their
      calibrated speed (results stay byte-identical to SIMD workers).
      --db-store boots the daemon from a `.swdb` store instead of FASTA:
      the arena is memory-mapped and the stored digest seeds the slave
      handshake without an O(db) startup re-hash (--verify-store opts
      back into the full checksum + digest check). A running daemon
      hot-swaps databases via the `reload` verb (see swhybrid reload).

  swhybrid bench-serve [--concurrency N] [--queries N] [--qlen N]
                       [--subjects N] [--fusion N] [--workers N]
                       [--json FILE] [--baseline FILE] [--tolerance PCT]
      Measure serving throughput (queries/sec) of the in-process daemon
      at --concurrency closed-loop clients, fused vs unfused, and report
      the speedup. Hit tables are diffed between the two runs — fusion
      must never change an answer. --json writes the report (default
      BENCH_serve.json). --baseline compares fused and unfused
      queries/sec against a previous report and fails if either
      regressed more than --tolerance percent (default 5).

  swhybrid query [query.fasta] --connect HOST:PORT [--top N]
                 [--deadline-ms N] [--stats] [--shutdown]
      Send each query in the FASTA to a running daemon and print the
      ranked hits (marking cache-served results). --stats prints the
      daemon's metrics snapshot; --shutdown asks it to drain and exit.

  swhybrid reload --connect HOST:PORT (--store FILE.swdb [--verify]
                  | --fasta FILE.fasta)
      Atomically hot-swap a running daemon onto a new database without
      restarting it: in-flight queries finish on the old snapshot, new
      queries see only the new one, the result cache is invalidated, and
      remote slaves are disconnected for re-admission under the new
      digest. --verify makes the daemon fully checksum the store first.

  swhybrid bench-store [--subjects N] [--qlen N] [--reps N] [--json FILE]
      Measure cold-start-to-first-result latency and peak memory of the
      two database load paths — FASTA parse + re-encode vs `.swdb`
      memory-map — over the same synthetic database, diff the hit
      tables (must be identical), and write the report (default
      BENCH_store.json).

  swhybrid slave <query.fasta> <db.fasta> --connect HOST:PORT
                 [--name NAME] [--gcups X] [--threads N]
                 [--heartbeat SECS] [--reconnect-retries N]
                 [--kernel striped|interseq|auto]
      Join a running master as a slave PE. Both sides must have the same
      sequence files (the paper's shared-files model). The slave heartbeats
      every --heartbeat seconds and reconnects with exponential backoff up
      to --reconnect-retries times if the connection drops.

  swhybrid slave --serve <db.fasta> --connect HOST:PORT
                 [--name NAME] [--gcups X] [--matrix ...] [--gap-open N]
                 [--gap-extend N] [--kernel striped|interseq|auto]
                 [--heartbeat SECS] [--reconnect-retries N]
      Join a daemon's slave port (`swhybrid serve --listen-slaves`) as a
      serve-mode slave: no query file — the daemon ships each query and
      shard over the wire. The slave proves at registration (by database
      digest) that it loaded exactly the database the daemon serves, and
      scans shards until the daemon shuts down.

  swhybrid help
      Show this message.
";

/// Dispatch one invocation: `args` is `argv` without the program name.
pub fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("index") => db::cmd_index(&args[1..]),
        Some("db") => db::cmd_db(&args[1..]),
        Some("generate") => db::cmd_generate(&args[1..]),
        Some("search") => search::cmd_search(&args[1..]),
        Some("bench-kernels") => bench::cmd_bench_kernels(&args[1..]),
        Some("bench-serve") => bench::cmd_bench_serve(&args[1..]),
        Some("bench-store") => bench::cmd_bench_store(&args[1..]),
        Some("bench-store-probe") => bench::cmd_bench_store_probe(&args[1..]),
        Some("reload") => serve::cmd_reload(&args[1..]),
        Some("simulate") => master_slave::cmd_simulate(&args[1..]),
        Some("master") => master_slave::cmd_master(&args[1..]),
        Some("slave") => master_slave::cmd_slave(&args[1..]),
        Some("serve") => serve::cmd_serve(&args[1..]),
        Some("query") => serve::cmd_query(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}
