//! The distributed pair — `master` (task distribution over TCP) and
//! `slave` (batch or serve mode) — plus the virtual-time `simulate` verb
//! that reproduces the paper's platform experiments without hardware.

use crate::exec::platform::PlatformBuilder;
use crate::exec::policy::Policy;
use crate::seq::synth::{paper_database, QueryOrder, QuerySetSpec};

use super::args::{
    fleet_from_opts, kernel_from_opts, policy_from_opts, scoring_from_opts, store_verify, Opts,
};
use super::db::load_encoded;

pub(super) fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "gpus", "sse", "fpgas", "fleet", "db", "policy", "order", "queries", "omega",
        ],
        &["no-adjustment"],
    )?;
    if !opts.positional.is_empty() {
        return Err(format!(
            "simulate takes flags only (got {:?})",
            opts.positional[0]
        ));
    }
    // `--fleet sse:8+gpu:2` is the same spec string the real runtimes
    // accept; it replaces the per-kind count flags.
    let fleet = fleet_from_opts(&opts)?;
    let base = match &fleet {
        Some(spec) => {
            if ["gpus", "sse", "fpgas"]
                .iter()
                .any(|f| opts.get(f).is_some())
            {
                return Err("--fleet replaces --gpus/--sse/--fpgas".into());
            }
            PlatformBuilder::new().fleet(spec)
        }
        None => {
            let gpus: usize = opts.get_parsed("gpus", 4)?;
            let sse: usize = opts.get_parsed("sse", 4)?;
            let fpgas: usize = opts.get_parsed("fpgas", 0)?;
            if gpus + sse + fpgas == 0 {
                return Err("platform needs at least one PE".into());
            }
            PlatformBuilder::new()
                .gpus(gpus)
                .sse_cores(sse)
                .fpgas(fpgas)
        }
    };
    let db = paper_database(opts.get("db").unwrap_or("swissprot"))
        .ok_or_else(|| format!("unknown database {:?}", opts.get("db").unwrap_or("")))?
        .full_scale_stats();
    let omega: usize = opts.get_parsed("omega", 5)?;
    let policy = match opts.get("policy").unwrap_or("pss") {
        "ss" => Policy::SelfScheduling,
        "pss" => Policy::Pss {
            omega: omega.max(1),
        },
        "fixed" => Policy::Fixed,
        "wfixed" => Policy::WFixed,
        other => return Err(format!("unknown policy {other:?}")),
    };
    let order = match opts.get("order").unwrap_or("asc") {
        "asc" => QueryOrder::Ascending,
        "desc" => QueryOrder::Descending,
        "shuffle" => QueryOrder::Shuffled,
        other => return Err(format!("unknown order {other:?}")),
    };
    let mut spec = QuerySetSpec::paper();
    spec.count = opts.get_parsed("queries", 40usize)?;
    if spec.count == 0 {
        return Err("--queries must be at least 1".into());
    }
    spec.order = order;

    let workload = PlatformBuilder::workload(&db, &spec, 2013);
    let builder = base.policy(policy).adjustment(!opts.has("no-adjustment"));
    let label = builder.describe();
    let out = builder.run(workload);

    println!("platform:  {label}");
    println!("database:  {} ({} residues)", db.name, db.total_residues);
    println!(
        "workload:  {} queries, {:?} order, policy {:?}, adjustment {}",
        spec.count,
        order,
        policy,
        !opts.has("no-adjustment")
    );
    println!(
        "result:    {:.1} s  |  {:.2} GCUPS  |  duplicated work {:.1}%",
        out.seconds(),
        out.gcups(),
        100.0 * out.report.duplicated_cells / out.report.total_cells.max(1) as f64
    );
    println!("\nper-PE:");
    for pe in &out.report.per_pe {
        println!(
            "  {:<6} {:>9.1} s busy  {:>3} completed  {:>3} cancelled",
            pe.name, pe.busy_seconds, pe.tasks_completed, pe.tasks_cancelled
        );
    }
    Ok(())
}

pub(super) fn cmd_master(args: &[String]) -> Result<(), String> {
    use crate::exec::master::MasterConfig;
    use crate::exec::net::{LocalFleet, MasterServer, NetConfig};
    use crate::exec::runtime::RealPe;
    use crate::store::Store;

    let opts = Opts::parse(
        args,
        &[
            "listen",
            "slaves",
            "fleet",
            "policy",
            "top",
            "register-timeout",
            "slave-deadline",
            "events",
            "db-store",
            "matrix",
            "gap-open",
            "gap-extend",
        ],
        &["no-adjustment", "verify-store"],
    )?;
    let fleet = fleet_from_opts(&opts)?;
    // The master holds the database either way (it merges hits and may
    // host a local fleet): from FASTA, or materialised out of a `.swdb`
    // store so batch runs and the daemon share one on-disk format.
    let (qpath, subjects) = match (opts.get("db-store"), opts.positional.as_slice()) {
        (Some(store_path), [qpath]) => {
            let snapshot = Store::open_with(store_path, store_verify(opts.has("verify-store")))
                .and_then(Store::into_snapshot)
                .map_err(|e| format!("{store_path}: {e}"))?;
            (qpath.clone(), snapshot.to_encoded())
        }
        (None, [qpath, dbpath]) => (qpath.clone(), load_encoded(dbpath)?),
        (Some(_), _) => return Err("master --db-store takes <query.fasta> only".into()),
        (None, _) => {
            return Err("master takes <query.fasta> <db.fasta> (or --db-store FILE.swdb)".into())
        }
    };
    let listen = opts.get("listen").unwrap_or("0.0.0.0:7878");
    let slaves: usize = opts.get_parsed("slaves", 1)?;
    if slaves == 0 && fleet.is_none() {
        return Err("--slaves must be at least 1 (or pass --fleet for a local hybrid run)".into());
    }
    let queries = load_encoded(&qpath)?;
    if queries.is_empty() {
        return Err(format!("{qpath}: no query sequences"));
    }
    let db_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    let specs = queries
        .iter()
        .enumerate()
        .map(|(id, q)| crate::device::task::TaskSpec {
            id,
            query_len: q.len(),
            queries: 1,
            db_residues,
            db_sequences: subjects.len(),
        })
        .collect();

    let mut net = NetConfig::default();
    if let Some(secs) = opts.get("register-timeout") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--register-timeout: cannot parse {secs:?}"))?;
        net.register_timeout = if secs > 0.0 {
            Some(std::time::Duration::from_secs_f64(secs))
        } else {
            None
        };
    }
    if let Some(secs) = opts.get("slave-deadline") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--slave-deadline: cannot parse {secs:?}"))?;
        if secs <= 0.0 {
            return Err("--slave-deadline must be positive".into());
        }
        net.slave_deadline = std::time::Duration::from_secs_f64(secs);
    }
    let mut server = MasterServer::bind_with(
        listen,
        MasterConfig {
            policy: policy_from_opts(&opts)?,
            adjustment: !opts.has("no-adjustment"),
            dispatch: Default::default(),
        },
        slaves,
        net,
    )
    .map_err(|e| format!("bind {listen}: {e}"))?;
    // Stream events as JSONL while the run progresses (a crashed or killed
    // master still leaves every event up to that point on disk), instead
    // of buffering the whole log until exit.
    let mut events_streamed = None;
    if let Some(path) = opts.get("events") {
        use std::io::Write;
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut out = std::io::LineWriter::new(file);
        let written = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let counter = std::sync::Arc::clone(&written);
        server = server.with_event_sink(move |event| {
            // A full disk must not take the run down with it.
            let _ = writeln!(out, "{}", event.to_json());
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        events_streamed = Some((written, path.to_string()));
    }
    println!(
        "master listening on {} for {} slave(s), {} tasks",
        server.local_addr().map_err(|e| e.to_string())?,
        slaves,
        queries.len()
    );
    let outcome = match &fleet {
        Some(spec) => {
            // The hybrid path: the master hosts its own fleet — real SIMD
            // PEs plus modeled accelerators — on the same pool the TCP
            // slaves feed from.
            println!("local fleet: {}", spec.describe());
            let scoring = scoring_from_opts(&opts)?;
            let pes: Vec<RealPe> = spec.build().into_iter().map(RealPe::from).collect();
            server.serve_hybrid(
                specs,
                LocalFleet {
                    pes,
                    queries: &queries,
                    subjects: &subjects,
                    scoring: &scoring,
                    top_n: opts.get_parsed("top", 10usize)?,
                },
            )
        }
        None => server.serve(specs),
    }
    .map_err(|e| e.to_string())?;
    if let Some((written, path)) = events_streamed {
        println!(
            "streamed {} events to {path}",
            written.load(std::sync::atomic::Ordering::Relaxed)
        );
    }
    println!(
        "\ncompleted {} tasks in {:.2} s  →  {:.2} GCUPS",
        outcome.completed_by.len(),
        outcome.elapsed_seconds,
        outcome.gcups
    );
    // Kernel accounting mirrors `swhybrid search`: the same counters, here
    // aggregated over the wire from every slave's reports.
    let k = &outcome.kernels;
    if k.total() > 0 {
        println!(
            "kernel (all slaves): {} striped / {} inter-sequence chunks, \
             subjects i8/i16/scalar striped {}+{}+{} interseq {}+{}+{}",
            k.chunks_striped,
            k.chunks_interseq,
            k.resolved_i8,
            k.resolved_i16,
            k.resolved_scalar,
            k.interseq_i8,
            k.interseq_i16,
            k.interseq_scalar,
        );
        for (name, k) in &outcome.kernels_by_pe {
            println!(
                "  {name}: {} cells, {} striped / {} inter-sequence chunks, \
                 subjects i8/i16/scalar striped {}+{}+{} interseq {}+{}+{}",
                k.cells_computed,
                k.chunks_striped,
                k.chunks_interseq,
                k.resolved_i8,
                k.resolved_i16,
                k.resolved_scalar,
                k.interseq_i8,
                k.interseq_i16,
                k.interseq_scalar,
            );
        }
    }
    println!("\nmerged hits (top {}):", opts.get_parsed("top", 10usize)?);
    for (rank, qh) in outcome
        .hits
        .iter()
        .take(opts.get_parsed("top", 10usize)?)
        .enumerate()
    {
        println!(
            "{:>4}  score {:>5}  q{}  {}",
            rank + 1,
            qh.hit.score,
            qh.query_index,
            qh.hit.id
        );
    }
    Ok(())
}

pub(super) fn cmd_slave(args: &[String]) -> Result<(), String> {
    use crate::device::exec::StripedBackend;
    use crate::exec::net::{run_serve_slave, run_slave_with, NetConfig};

    let opts = Opts::parse(
        args,
        &[
            "connect",
            "name",
            "gcups",
            "top",
            "heartbeat",
            "reconnect-retries",
            "kernel",
            "matrix",
            "gap-open",
            "gap-extend",
        ],
        &["serve"],
    )?;
    let connect = opts
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    let name = opts.get("name").unwrap_or("slave").to_string();
    let gcups: f64 = opts.get_parsed("gcups", 1.0)?;
    let scoring = scoring_from_opts(&opts)?;
    let mut net = NetConfig::default();
    if let Some(secs) = opts.get("heartbeat") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--heartbeat: cannot parse {secs:?}"))?;
        if secs <= 0.0 {
            return Err("--heartbeat must be positive".into());
        }
        net.heartbeat_interval = std::time::Duration::from_secs_f64(secs);
    }
    net.reconnect_max_retries = opts.get_parsed("reconnect-retries", net.reconnect_max_retries)?;

    if opts.has("serve") {
        // Serve-mode: only the database is loaded locally; queries and
        // shard bounds arrive over the wire from the daemon.
        let [dbpath] = opts.positional.as_slice() else {
            return Err("slave --serve takes <db.fasta>".into());
        };
        let subjects = load_encoded(dbpath)?;
        println!("{name}: connecting to daemon at {connect} (serve mode)");
        let executed = run_serve_slave(
            connect,
            &name,
            gcups,
            &subjects,
            &scoring,
            kernel_from_opts(&opts)?,
            &net,
        )
        .map_err(|e| e.to_string())?;
        println!("{name}: done, executed {executed} shard(s)");
        return Ok(());
    }

    let [qpath, dbpath] = opts.positional.as_slice() else {
        return Err("slave takes <query.fasta> <db.fasta>".into());
    };
    let queries = load_encoded(qpath)?;
    let subjects = load_encoded(dbpath)?;
    println!("{name}: connecting to {connect}");
    let backend = StripedBackend {
        kernel: kernel_from_opts(&opts)?,
        ..StripedBackend::default()
    };
    let executed = run_slave_with(
        connect,
        &name,
        gcups,
        &backend,
        &queries,
        &subjects,
        &scoring,
        opts.get_parsed("top", 10usize)?,
        &net,
    )
    .map_err(|e| e.to_string())?;
    println!("{name}: done, executed {executed} task(s)");
    Ok(())
}
