//! `swhybrid` — command-line front end to the hybrid SW task environment.
//!
//! ```text
//! swhybrid index    <file.fasta>                      build the §IV-B index
//! swhybrid generate <db-name> <scale> <out.fasta>     synthetic database
//! swhybrid search   <query.fasta> <db.fasta> [opts]   real striped search
//! swhybrid simulate [opts]                            platform simulation
//! ```
//!
//! Run `swhybrid help` for the full option list. Every verb lives in
//! [`swhybrid::cli`] (one module per verb family) so the whole CLI surface
//! is unit-testable in-process; this binary only owns argv and the exit
//! code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match swhybrid::cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `swhybrid help` for usage");
            ExitCode::FAILURE
        }
    }
}
