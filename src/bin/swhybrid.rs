//! `swhybrid` — command-line front end to the hybrid SW task environment.
//!
//! ```text
//! swhybrid index    <file.fasta>                      build the §IV-B index
//! swhybrid generate <db-name> <scale> <out.fasta>     synthetic database
//! swhybrid search   <query.fasta> <db.fasta> [opts]   real striped search
//! swhybrid simulate [opts]                            platform simulation
//! ```
//!
//! Run `swhybrid help` for the full option list.

use std::process::ExitCode;

use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::exec::platform::PlatformBuilder;
use swhybrid::exec::policy::Policy;
use swhybrid::seq::fasta::FastaReader;
use swhybrid::seq::index::SeqIndex;
use swhybrid::seq::sequence::EncodedSequence;
use swhybrid::seq::synth::{paper_database, QueryOrder, QuerySetSpec};
use swhybrid::seq::{Alphabet, DbSnapshot};
use swhybrid::simd::search::{
    search_arena, DatabaseSearch, Hit, KernelChoice, SearchConfig, SearchResult,
};
use swhybrid::simd::PreparedQuery;
use swhybrid::store::{build_store, Store, Verify};

const USAGE: &str = "\
swhybrid — biological sequence comparison on hybrid platforms

USAGE:
  swhybrid index <file.fasta>
      Build the indexed-format sidecar (<file>.swhidx): sequence count,
      longest-sequence size, per-sequence byte offsets.

  swhybrid db build <db.fasta> <out.swdb> [--name NAME]
      Compile a FASTA database into a persistent `.swdb` store: the
      encoded residue arena (64-byte aligned, memory-mappable), ids,
      spans, the length-sorted scan permutation, per-chunk residue
      counts, and the FNV database digest — everything the runtime
      otherwise reconstructs on every boot. Written atomically
      (temp file + fsync + rename).

  swhybrid db inspect <store.swdb> [--verify]
      Print a store's header: name, alphabet, sequence/residue counts,
      length extrema, digest, section sizes. --verify additionally
      checks the arena checksum and re-hashes the full database digest.

  swhybrid generate <db-name> <scale> <out.fasta>
      Write a synthetic stand-in for one of the paper's databases.
      <db-name>: dog | rat | human | mouse | swissprot
      <scale>:   fraction of the full sequence count, e.g. 0.01

  swhybrid search <query.fasta> <db.fasta> [--top N] [--threads N]
                  [--matrix blosum62|blosum50|pam250]
                  [--gap-open N] [--gap-extend N] [--align]
                  [--kernel striped|interseq|auto]
                  [--db-store FILE.swdb] [--verify-store]
      Compare every query against the database with the adapted-Farrar
      striped engine; print ranked hits (and alignments with --align).
      --kernel selects the scan kernel per chunk: the striped engine, the
      SWIPE-style inter-sequence engine, or adaptive dispatch (default).
      --db-store replaces <db.fasta> with a `.swdb` store: the arena is
      memory-mapped and scanned in place (no parse, no re-encode), with
      hit tables byte-identical to the FASTA path. --verify-store
      re-checks the arena checksum and digest before scanning.

  swhybrid bench-kernels [--subjects N] [--qlen N] [--reps N]
                         [--threads LIST] [--json FILE]
      Time the striped, inter-sequence, and adaptive kernels over a
      length-skewed synthetic database and report GCUPS (nominal cells,
      so the kernels are directly comparable). --threads takes a comma
      list of worker counts (default 1,2,4) and reports per-count GCUPS
      plus scaling efficiency; rankings must stay identical across every
      kernel x thread combination. --json also writes the table as a
      JSON report.

  swhybrid simulate [--gpus N] [--sse N] [--fpgas N] [--db NAME]
                    [--policy ss|pss|fixed|wfixed] [--no-adjustment]
                    [--order asc|desc|shuffle] [--queries N]
      Run the paper's 40-query workload (or --queries N) on a simulated
      hybrid platform under virtual time and report time/GCUPS.

  swhybrid master <query.fasta> <db.fasta> --listen HOST:PORT --slaves N
                  [--policy ...] [--no-adjustment] [--top N]
                  [--register-timeout SECS] [--slave-deadline SECS]
                  [--events FILE.json]
      Start the distributed master: waits for N slaves to register (at most
      --register-timeout seconds; 0 waits forever), then distributes one
      task per query and prints the merged hits. A slave silent for
      --slave-deadline seconds is declared dead and its tasks requeued.
      --events streams the structured run-event log as JSON lines (one
      event per line, written as the run progresses).

  swhybrid serve <db.fasta> --listen HOST:PORT [--workers N] [--shards N]
                 [--db-store FILE.swdb] [--verify-store]
                 [--listen-slaves HOST:PORT] [--max-active N] [--fusion N]
                 [--queue-depth N] [--client-inflight N] [--cache N]
                 [--retain N] [--policy ss|pss] [--no-adjustment]
                 [--matrix ...] [--gap-open N] [--gap-extend N]
                 [--kernel striped|interseq|auto]
      Start the persistent query daemon: the database stays resident and
      the master/slave scheduler stays warm between queries. Speaks
      newline-delimited JSON (verbs: search, status, cancel, stats,
      shutdown) with bounded admission, per-client in-flight limits, an
      LRU result cache, and live metrics. Runs until a client sends
      shutdown, then drains in-flight queries and exits.
      Queries that queue behind a running group are fused — up to
      --fusion of them share each database pass (1 disables fusion);
      results stay byte-identical to per-query scans. --retain bounds how
      many finished jobs keep answering status before eviction.
      --listen-slaves additionally accepts remote slave processes
      (`swhybrid slave --serve`) on a second port: they join the same
      scheduling pool as the local workers, take database shards, and may
      connect or disconnect at any time while the daemon keeps serving.
      --db-store boots the daemon from a `.swdb` store instead of FASTA:
      the arena is memory-mapped and the stored digest seeds the slave
      handshake without an O(db) startup re-hash (--verify-store opts
      back into the full checksum + digest check). A running daemon
      hot-swaps databases via the `reload` verb (see swhybrid reload).

  swhybrid bench-serve [--concurrency N] [--queries N] [--qlen N]
                       [--subjects N] [--fusion N] [--workers N]
                       [--json FILE]
      Measure serving throughput (queries/sec) of the in-process daemon
      at --concurrency closed-loop clients, fused vs unfused, and report
      the speedup. Hit tables are diffed between the two runs — fusion
      must never change an answer. --json writes the report (default
      BENCH_serve.json).

  swhybrid query [query.fasta] --connect HOST:PORT [--top N]
                 [--deadline-ms N] [--stats] [--shutdown]
      Send each query in the FASTA to a running daemon and print the
      ranked hits (marking cache-served results). --stats prints the
      daemon's metrics snapshot; --shutdown asks it to drain and exit.

  swhybrid reload --connect HOST:PORT (--store FILE.swdb [--verify]
                  | --fasta FILE.fasta)
      Atomically hot-swap a running daemon onto a new database without
      restarting it: in-flight queries finish on the old snapshot, new
      queries see only the new one, the result cache is invalidated, and
      remote slaves are disconnected for re-admission under the new
      digest. --verify makes the daemon fully checksum the store first.

  swhybrid bench-store [--subjects N] [--qlen N] [--reps N] [--json FILE]
      Measure cold-start-to-first-result latency and peak memory of the
      two database load paths — FASTA parse + re-encode vs `.swdb`
      memory-map — over the same synthetic database, diff the hit
      tables (must be identical), and write the report (default
      BENCH_store.json).

  swhybrid slave <query.fasta> <db.fasta> --connect HOST:PORT
                 [--name NAME] [--gcups X] [--threads N]
                 [--heartbeat SECS] [--reconnect-retries N]
                 [--kernel striped|interseq|auto]
      Join a running master as a slave PE. Both sides must have the same
      sequence files (the paper's shared-files model). The slave heartbeats
      every --heartbeat seconds and reconnects with exponential backoff up
      to --reconnect-retries times if the connection drops.

  swhybrid slave --serve <db.fasta> --connect HOST:PORT
                 [--name NAME] [--gcups X] [--matrix ...] [--gap-open N]
                 [--gap-extend N] [--kernel striped|interseq|auto]
                 [--heartbeat SECS] [--reconnect-retries N]
      Join a daemon's slave port (`swhybrid serve --listen-slaves`) as a
      serve-mode slave: no query file — the daemon ships each query and
      shard over the wire. The slave proves at registration (by database
      digest) that it loaded exactly the database the daemon serves, and
      scans shards until the daemon shuts down.

  swhybrid help
      Show this message.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `swhybrid help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("index") => cmd_index(&args[1..]),
        Some("db") => cmd_db(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("bench-kernels") => cmd_bench_kernels(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        Some("bench-store") => cmd_bench_store(&args[1..]),
        Some("bench-store-probe") => cmd_bench_store_probe(&args[1..]),
        Some("reload") => cmd_reload(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("master") => cmd_master(&args[1..]),
        Some("slave") => cmd_slave(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

// ---------------------------------------------------------------- options

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    flags.push((name.to_string(), None));
                } else if value_flags.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    flags.push((name.to_string(), Some(value.clone())));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

fn kernel_from_opts(opts: &Opts) -> Result<KernelChoice, String> {
    match opts.get("kernel") {
        None => Ok(KernelChoice::Auto),
        Some(v) => KernelChoice::parse(v).ok_or_else(|| format!("unknown kernel {v:?}")),
    }
}

fn scoring_from_opts(opts: &Opts) -> Result<Scoring, String> {
    let matrix = match opts.get("matrix").unwrap_or("blosum62") {
        "blosum62" => SubstMatrix::blosum62(),
        "blosum50" => SubstMatrix::blosum50(),
        "pam250" => SubstMatrix::pam250(),
        other => return Err(format!("unknown matrix {other:?}")),
    };
    let open = opts.get_parsed("gap-open", 10i32)?;
    let extend = opts.get_parsed("gap-extend", 2i32)?;
    if open < 0 || extend <= 0 {
        return Err("gap penalties must be positive".into());
    }
    Ok(Scoring {
        matrix,
        gap: GapModel::Affine { open, extend },
    })
}

// ---------------------------------------------------------------- commands

fn cmd_index(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[], &[])?;
    let [path] = opts.positional.as_slice() else {
        return Err("index takes exactly one FASTA path".into());
    };
    let index = SeqIndex::build_for_file(path).map_err(|e| e.to_string())?;
    let out = index.save_alongside(path).map_err(|e| e.to_string())?;
    println!(
        "indexed {}: {} sequences, longest {} residues → {}",
        path,
        index.count(),
        index.max_len,
        out.display()
    );
    Ok(())
}

fn store_verify(full: bool) -> Verify {
    if full {
        Verify::Full
    } else {
        Verify::Quick
    }
}

fn cmd_db(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_db_build(&args[1..]),
        Some("inspect") => cmd_db_inspect(&args[1..]),
        _ => Err("db takes a subcommand: build | inspect".into()),
    }
}

fn cmd_db_build(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["name"], &[])?;
    let [fasta, out] = opts.positional.as_slice() else {
        return Err("db build takes <db.fasta> <out.swdb>".into());
    };
    let subjects = load_encoded(fasta)?;
    let name = match opts.get("name") {
        Some(n) => n.to_string(),
        None => std::path::Path::new(out)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    };
    let summary = build_store(out, &name, &subjects).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "built {}: {} sequences, {} residues, digest {:016x}, {} bytes",
        summary.path.display(),
        summary.sequences,
        summary.residues,
        summary.db_digest,
        summary.file_bytes
    );
    Ok(())
}

fn cmd_db_inspect(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[], &["verify"])?;
    let [path] = opts.positional.as_slice() else {
        return Err("db inspect takes <store.swdb>".into());
    };
    let file_bytes = std::fs::metadata(path)
        .map_err(|e| format!("{path}: {e}"))?
        .len();
    let store = Store::open_with(path, store_verify(opts.has("verify")))
        .map_err(|e| format!("{path}: {e}"))?;
    let h = store.header();
    println!("store:      {path} ({file_bytes} bytes)");
    println!("name:       {}", store.name());
    println!("alphabet:   {:?}", store.alphabet());
    println!("sequences:  {}", h.num_seqs);
    println!(
        "residues:   {} (arena {} bytes at offset {})",
        h.total_residues, h.arena_len, h.arena_off
    );
    println!("lengths:    {}..{}", h.min_len, h.max_len);
    println!(
        "digest:     {:016x}{}",
        store.db_digest(),
        if opts.has("verify") {
            " (re-hashed, arena checksum verified)"
        } else {
            " (stored; metadata checksum verified)"
        }
    );
    println!(
        "chunks:     {} x {} residue-count stride",
        store.chunk_residues().len(),
        h.chunk_stride
    );
    println!(
        "scan perm:  {}",
        if store.scan_permutation().is_some() {
            "length-sorted (present)"
        } else {
            "absent"
        }
    );
    println!("mapped:     {}", store.is_mapped());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["seed"], &[])?;
    let [name, scale, out] = opts.positional.as_slice() else {
        return Err("generate takes <db-name> <scale> <out.fasta>".into());
    };
    let profile = paper_database(name).ok_or_else(|| format!("unknown database {name:?}"))?;
    let scale: f64 = scale.parse().map_err(|_| format!("bad scale {scale:?}"))?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err("scale must be in (0, 1]".into());
    }
    let seed = opts.get_parsed("seed", 2013u64)?;
    let db = profile.generate_scaled(seed, scale);
    let stats = db.stats();
    let text = swhybrid::seq::fasta::to_string(&db.sequences);
    std::fs::write(out, text).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} sequences, {} residues (stand-in for {})",
        out, stats.num_sequences, stats.total_residues, profile.name
    );
    Ok(())
}

/// The database side of a one-shot search: encoded records from FASTA, or
/// a `.swdb` snapshot whose arena is scanned in place (memory-mapped, no
/// re-encode). Hit tables are identical either way — the scan is keyed by
/// database index, independent of the arena's provenance.
enum DbSource {
    Encoded(Vec<EncodedSequence>),
    Snapshot(DbSnapshot),
}

impl DbSource {
    fn len(&self) -> usize {
        match self {
            DbSource::Encoded(v) => v.len(),
            DbSource::Snapshot(s) => s.len(),
        }
    }

    fn total_residues(&self) -> u64 {
        match self {
            DbSource::Encoded(v) => v.iter().map(|s| s.len() as u64).sum(),
            DbSource::Snapshot(s) => s.total_residues(),
        }
    }

    fn subject_codes(&self, i: usize) -> &[u8] {
        match self {
            DbSource::Encoded(v) => &v[i].codes,
            DbSource::Snapshot(s) => s.residues(i),
        }
    }

    fn decode_subject(&self, i: usize) -> Vec<u8> {
        match self {
            DbSource::Encoded(v) => v[i].decode(),
            DbSource::Snapshot(s) => s.alphabet().decode_all(s.residues(i)),
        }
    }

    fn search(&self, query: &[u8], scoring: &Scoring, config: SearchConfig) -> SearchResult {
        match self {
            DbSource::Encoded(v) => DatabaseSearch::new(query, scoring, config).run(v),
            DbSource::Snapshot(snap) => {
                let prepared =
                    std::sync::Arc::new(PreparedQuery::new(query, scoring, config.preference));
                let out = search_arena(&prepared, snap.arena(), 0..snap.len(), &config);
                SearchResult {
                    hits: out
                        .scored
                        .iter()
                        .map(|sc| Hit {
                            db_index: sc.db_index,
                            id: snap.id(sc.db_index).to_string(),
                            score: sc.score,
                            subject_len: sc.subject_len,
                        })
                        .collect(),
                    cells: out.cells,
                    cells_nominal: out.cells_nominal,
                    stats: out.stats,
                }
            }
        }
    }
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "top",
            "threads",
            "matrix",
            "gap-open",
            "gap-extend",
            "kernel",
            "db-store",
        ],
        &["align", "verify-store"],
    )?;
    let scoring = scoring_from_opts(&opts)?;
    let kernel = kernel_from_opts(&opts)?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let threads: usize = opts.get_parsed("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let encode_all = |path: &str| -> Result<Vec<EncodedSequence>, String> {
        FastaReader::open(path)
            .map_err(|e| format!("{path}: {e}"))?
            .read_all()
            .map_err(|e| format!("{path}: {e}"))?
            .iter()
            .map(|r| {
                EncodedSequence::from_sequence(r, Alphabet::Protein)
                    .map_err(|e| format!("{path} ({}): {e}", r.id))
            })
            .collect()
    };
    let (qpath, db) = match (opts.get("db-store"), opts.positional.as_slice()) {
        (Some(store_path), [qpath]) => {
            let snapshot = Store::open_with(store_path, store_verify(opts.has("verify-store")))
                .and_then(Store::into_snapshot)
                .map_err(|e| format!("{store_path}: {e}"))?;
            if !snapshot.is_empty() && snapshot.alphabet() != scoring.matrix.alphabet {
                return Err(format!(
                    "{store_path}: store alphabet {:?} does not match scoring alphabet {:?}",
                    snapshot.alphabet(),
                    scoring.matrix.alphabet
                ));
            }
            (qpath, DbSource::Snapshot(snapshot))
        }
        (None, [qpath, dbpath]) => (qpath, DbSource::Encoded(encode_all(dbpath)?)),
        (Some(_), _) => return Err("search --db-store takes <query.fasta> only".into()),
        (None, _) => return Err("search takes <query.fasta> <db.fasta>".into()),
    };
    let queries = encode_all(qpath)?;
    if queries.is_empty() {
        return Err(format!("{qpath}: no query sequences"));
    }
    println!(
        "{} quer{} × {} subjects",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        db.len()
    );

    let start = std::time::Instant::now();
    let mut total_cells = 0u64;
    let mut kernel_stats = swhybrid::simd::engine::KernelStats::default();
    for query in &queries {
        let result = db.search(
            &query.codes,
            &scoring,
            SearchConfig {
                threads,
                top_n,
                kernel,
                ..Default::default()
            },
        );
        total_cells += result.cells;
        kernel_stats.merge(&result.stats);
        let stats_params = swhybrid::align::evalue::KarlinAltschul::for_scoring(&scoring);
        let db_residues: u64 = db.total_residues();
        println!("\n# query {} ({} aa)", query.id, query.len());
        println!(
            "{:>4}  {:>6}  {:>8}  {:>9}  {:>6}  subject",
            "rank", "score", "bits", "E-value", "len"
        );
        for (rank, hit) in result.hits.iter().enumerate() {
            let (bits, evalue) = match &stats_params {
                Some(p) => (
                    format!("{:.1}", p.bit_score(hit.score)),
                    format!(
                        "{:.1e}",
                        p.evalue(hit.score, query.len(), db_residues, db.len())
                    ),
                ),
                None => ("-".into(), "-".into()),
            };
            println!(
                "{:>4}  {:>6}  {:>8}  {:>9}  {:>6}  {}",
                rank + 1,
                hit.score,
                bits,
                evalue,
                hit.subject_len,
                hit.id
            );
        }
        if opts.has("align") {
            for hit in &result.hits {
                let alignment = swhybrid::align::gotoh::gotoh_align(
                    &query.codes,
                    db.subject_codes(hit.db_index),
                    &scoring,
                );
                debug_assert_eq!(alignment.score, hit.score, "hit {}", hit.id);
                println!(
                    "\n>{} score {} cigar {} identity {:.0}%",
                    hit.id,
                    hit.score,
                    alignment.cigar(),
                    alignment.identity() * 100.0
                );
                let q_ascii = query.decode();
                let s_ascii = db.decode_subject(hit.db_index);
                println!("{}", alignment.pretty(&q_ascii, &s_ascii));
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "\n{total_cells} cells in {secs:.3} s = {:.2} GCUPS",
        total_cells as f64 / secs / 1e9
    );
    println!(
        "kernel {}: {} striped / {} inter-sequence chunks, \
         subjects i8/i16/scalar striped {}+{}+{} interseq {}+{}+{}",
        kernel.name(),
        kernel_stats.chunks_striped,
        kernel_stats.chunks_interseq,
        kernel_stats.resolved_i8,
        kernel_stats.resolved_i16,
        kernel_stats.resolved_scalar,
        kernel_stats.interseq_i8,
        kernel_stats.interseq_i16,
        kernel_stats.interseq_scalar,
    );
    Ok(())
}

/// A length-skewed synthetic database: a large body of short subjects with
/// rare long outliers. This is the shape that starves the striped kernel
/// on per-subject setup cost and favours inter-sequence dispatch.
fn skewed_bench_db(seed: u64, n: usize) -> Vec<EncodedSequence> {
    let mut rng = swhybrid::seq::synth::rng(seed);
    (0..n)
        .map(|i| {
            let len = if i % 97 == 0 {
                400 + (i % 7) * 100
            } else {
                20 + i % 61
            };
            let ascii = swhybrid::seq::synth::random_protein(&mut rng, len);
            let codes = Alphabet::Protein
                .encode(&ascii)
                .expect("synthetic residues are valid");
            EncodedSequence {
                id: format!("s{i}"),
                codes,
                alphabet: Alphabet::Protein,
            }
        })
        .collect()
}

fn cmd_bench_kernels(args: &[String]) -> Result<(), String> {
    use swhybrid::exec::net::kernels_to_json;
    use swhybrid::json::Json;

    let opts = Opts::parse(args, &["subjects", "qlen", "reps", "threads", "json"], &[])?;
    if !opts.positional.is_empty() {
        return Err("bench-kernels takes flags only".into());
    }
    let n: usize = opts.get_parsed("subjects", 4000)?;
    let qlen: usize = opts.get_parsed("qlen", 256)?;
    let reps: usize = opts.get_parsed("reps", 3)?;
    if n == 0 || qlen == 0 || reps == 0 {
        return Err("--subjects, --qlen, and --reps must be at least 1".into());
    }
    let threads: Vec<usize> = opts
        .get("threads")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&t| t >= 1)
                .ok_or_else(|| format!("--threads: '{t}' is not a positive integer"))
        })
        .collect::<Result<_, _>>()?;
    if !threads.contains(&1) {
        return Err("--threads must include 1 (the scaling-efficiency baseline)".into());
    }
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let subjects = skewed_bench_db(2013, n);
    let residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    let mut rng = swhybrid::seq::synth::rng(qlen as u64);
    let query_ascii = swhybrid::seq::synth::random_protein(&mut rng, qlen);
    let query = Alphabet::Protein
        .encode(&query_ascii)
        .expect("synthetic residues are valid");
    println!(
        "length-skewed db: {n} subjects, {residues} residues; query {qlen} aa; best of {reps}"
    );
    println!(
        "{:>10}  {:>7}  {:>8}  {:>9}  {:>6}  {:>8}  {:>8}  chunks s/i",
        "kernel", "threads", "gcups", "secs", "eff", "cells", "nominal"
    );

    let mut rows = Vec::new();
    let mut baseline_hits: Option<Vec<swhybrid::simd::search::Hit>> = None;
    for kernel in [
        KernelChoice::Striped,
        KernelChoice::InterSeq,
        KernelChoice::Auto,
    ] {
        let mut single_gcups = None;
        for &t in &threads {
            let search = DatabaseSearch::new(
                &query,
                &scoring,
                SearchConfig {
                    threads: t,
                    top_n: 10,
                    kernel,
                    ..Default::default()
                },
            );
            let mut best_secs = f64::INFINITY;
            let mut result = None;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                let r = search.run(&subjects);
                best_secs = best_secs.min(t0.elapsed().as_secs_f64());
                result = Some(r);
            }
            let r = result.expect("reps >= 1");
            // GCUPS over *nominal* cells (query × residues): every kernel
            // does the same nominal work, so the numbers are directly
            // comparable even when saturation retries inflate the actual
            // cell count.
            let gcups = r.cells_nominal as f64 / best_secs / 1e9;
            if t == 1 {
                single_gcups = Some(gcups);
            }
            // Perfect scaling doubles GCUPS when threads double; the
            // efficiency is the achieved fraction of that ideal.
            let efficiency = single_gcups.map(|g1| gcups / (t as f64 * g1));
            println!(
                "{:>10}  {:>7}  {:>8.3}  {:>9.4}  {:>6}  {:>8}  {:>8}  {}/{}",
                kernel.name(),
                t,
                gcups,
                best_secs,
                efficiency.map_or("--".into(), |e| format!("{e:.2}")),
                r.cells,
                r.cells_nominal,
                r.stats.chunks_striped,
                r.stats.chunks_interseq,
            );
            match &baseline_hits {
                None => baseline_hits = Some(r.hits.clone()),
                Some(b) => {
                    if *b != r.hits {
                        return Err(format!(
                            "kernel {} at {t} threads produced a different ranking than striped",
                            kernel.name()
                        ));
                    }
                }
            }
            rows.push((kernel, t, gcups, best_secs, efficiency, r));
        }
    }
    println!("rankings identical across all kernel x thread combinations");

    if let Some(path) = opts.get("json") {
        let report = Json::obj(vec![
            ("subjects", Json::Num(n as f64)),
            ("residues", Json::Num(residues as f64)),
            ("query_len", Json::Num(qlen as f64)),
            ("reps", Json::Num(reps as f64)),
            ("identical_rankings", Json::Bool(true)),
            (
                "kernels",
                Json::Arr(
                    rows.iter()
                        .filter(|(_, t, ..)| *t == 1)
                        .map(|(kernel, _, gcups, secs, _, r)| {
                            Json::obj(vec![
                                ("kernel", Json::str(kernel.name())),
                                ("gcups", Json::Num(*gcups)),
                                ("seconds", Json::Num(*secs)),
                                ("cells", Json::Num(r.cells as f64)),
                                ("cells_nominal", Json::Num(r.cells_nominal as f64)),
                                ("stats", kernels_to_json(&r.stats)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "threads_sweep",
                Json::Arr(
                    rows.iter()
                        .map(|(kernel, t, gcups, secs, efficiency, _)| {
                            Json::obj(vec![
                                ("kernel", Json::str(kernel.name())),
                                ("threads", Json::Num(*t as f64)),
                                ("gcups", Json::Num(*gcups)),
                                ("seconds", Json::Num(*secs)),
                                (
                                    "scaling_efficiency",
                                    efficiency.map_or(Json::Null, Json::Num),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Knobs of one [`serve_bench_run`]: total queries across all clients,
/// top-N per reply, per-client pipelining depth, the fusion cap, and the
/// fleet shape (local worker threads + loopback TCP slaves).
struct ServeBenchKnobs {
    total: usize,
    top_n: usize,
    inflight: usize,
    fusion: usize,
    workers: usize,
    slaves: usize,
}

/// One serving-throughput run: `concurrency` pipelined clients, each
/// keeping `inflight` submissions of its own fixed query outstanding
/// until `queries` total complete — the saturated-server regime a
/// throughput benchmark is about (a closed loop with one outstanding
/// query per client measures latency, not capacity, and starves the
/// scheduler of anything to fuse).
/// Returns (queries/sec, per-client hit tables, achieved fusion factor).
fn serve_bench_run(
    db: &[EncodedSequence],
    scoring: &Scoring,
    queries: &[Vec<u8>],
    knobs: &ServeBenchKnobs,
) -> Result<(f64, Vec<Vec<swhybrid::simd::search::Hit>>, f64), String> {
    use swhybrid::exec::net::{run_serve_slave, NetConfig};
    use swhybrid::serve::{QueryService, SearchReply, ServiceConfig};

    let &ServeBenchKnobs {
        total,
        top_n,
        inflight,
        fusion,
        workers,
        slaves,
    } = knobs;

    let svc = QueryService::new(
        db.to_vec(),
        scoring.clone(),
        ServiceConfig {
            workers,
            // One shard per fleet member, so every group spreads across
            // the whole fleet (local workers and TCP slaves alike).
            shards: workers + slaves,
            // Two groups in flight: while one scans, the next one's wire
            // round trips overlap with it instead of idling the fleet.
            max_active: 2,
            fusion,
            cache_capacity: 0, // every submission really scans
            queue_depth: (queries.len() * inflight).max(4) * 2,
            per_client_inflight: inflight.max(1),
            ..Default::default()
        },
    );
    // The hybrid-fleet mode: loopback TCP slaves join the pool and pull
    // shard tasks over the wire. Fused tasks carry the whole query batch
    // in one round trip — the per-task transport is exactly what fusion
    // amortizes.
    let mut slave_threads = Vec::new();
    if slaves > 0 {
        let net = NetConfig {
            reconnect_max_retries: 0,
            ..NetConfig::default()
        };
        let addr = svc
            .listen_slaves("127.0.0.1:0", net.clone())
            .map_err(|e| format!("listen_slaves: {e}"))?;
        for s in 0..slaves {
            let db = db.to_vec();
            let scoring = scoring.clone();
            let net = net.clone();
            slave_threads.push(std::thread::spawn(move || {
                let _ = run_serve_slave(
                    addr,
                    &format!("bench-slave{s}"),
                    1.0,
                    &db,
                    &scoring,
                    swhybrid::simd::search::KernelChoice::Auto,
                    &net,
                );
            }));
        }
        let fleet = workers + slaves;
        for _ in 0..500 {
            let pes = svc
                .stats()
                .get("pes")
                .and_then(swhybrid::json::Json::as_array)
                .map(|p| p.len())
                .unwrap_or(0);
            if pes >= fleet {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
    let per_client = total / queries.len();
    let t0 = std::time::Instant::now();
    let tables: Vec<Vec<swhybrid::simd::search::Hit>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(c, q)| {
                let svc = &svc;
                scope.spawn(move || {
                    let (tx, rx) = std::sync::mpsc::channel::<SearchReply>();
                    let submit = |n: usize| -> Result<(), String> {
                        for _ in 0..n {
                            let tx = tx.clone();
                            svc.submit(
                                q.clone(),
                                top_n,
                                None,
                                None,
                                c as u64,
                                Box::new(move |reply| {
                                    let _ = tx.send(reply);
                                }),
                            )
                            .map_err(|e| format!("client {c} rejected: {e:?}"))?;
                        }
                        Ok(())
                    };
                    submit(inflight.min(per_client))?;
                    let mut submitted = inflight.min(per_client);
                    let mut table = Vec::new();
                    for rep in 0..per_client {
                        let reply = rx.recv().expect("service dropped before replying");
                        if rep == 0 {
                            table = reply.hits;
                        } else if table != reply.hits {
                            return Err(format!("client {c} rep {rep}: hits drifted"));
                        }
                        if submitted < per_client {
                            submit(1)?;
                            submitted += 1;
                        }
                    }
                    Ok(table)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client panicked"))
            .collect::<Result<_, String>>()
    })?;
    let secs = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    let factor = stats
        .get("fusion")
        .and_then(|f| f.get("factor"))
        .and_then(swhybrid::json::Json::as_f64)
        .unwrap_or(0.0);
    svc.shutdown();
    for h in slave_threads {
        h.join().expect("bench slave panicked");
    }
    Ok(((per_client * queries.len()) as f64 / secs, tables, factor))
}

fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    use swhybrid::json::Json;

    let opts = Opts::parse(
        args,
        &[
            "concurrency",
            "queries",
            "qlen",
            "subjects",
            "fusion",
            "workers",
            "slaves",
            "inflight",
            "top",
            "json",
        ],
        &[],
    )?;
    if !opts.positional.is_empty() {
        return Err("bench-serve takes flags only".into());
    }
    let concurrency: usize = opts.get_parsed("concurrency", 4)?;
    let total: usize = opts.get_parsed("queries", 64)?;
    let qlen: usize = opts.get_parsed("qlen", 20)?;
    let subjects_n: usize = opts.get_parsed("subjects", 2000)?;
    let fusion: usize = opts.get_parsed("fusion", 4)?;
    let workers: usize = opts.get_parsed("workers", 1)?;
    let slaves: usize = opts.get_parsed("slaves", 1)?;
    let inflight: usize = opts.get_parsed("inflight", 4)?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let json_path = opts.get("json").unwrap_or("BENCH_serve.json");
    if concurrency == 0 || total < concurrency || qlen == 0 || subjects_n == 0 || fusion == 0 {
        return Err(
            "--concurrency, --qlen, --subjects, --fusion must be >= 1 and \
             --queries >= --concurrency"
                .into(),
        );
    }
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let db = skewed_bench_db(2013, subjects_n);
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();
    // Identical-length, distinct queries — one per closed-loop client.
    let queries: Vec<Vec<u8>> = (0..concurrency)
        .map(|c| {
            let mut rng = swhybrid::seq::synth::rng(4000 + c as u64);
            let ascii = swhybrid::seq::synth::random_protein(&mut rng, qlen);
            Alphabet::Protein
                .encode(&ascii)
                .expect("synthetic residues are valid")
        })
        .collect();
    println!(
        "serving bench: {subjects_n} subjects ({residues} residues), \
         {concurrency} clients x {qlen} aa, {total} queries per run"
    );

    // Warm-up run (populates allocator, page cache) is the unfused run
    // measured second; run fused first so neither mode benefits from
    // being warmed by the other asymmetrically... measure both orders'
    // worst case instead: unfused, fused, unfused — keep the better
    // unfused (fairness tilts against fusion).
    let knobs = ServeBenchKnobs {
        total,
        top_n,
        inflight,
        fusion,
        workers,
        slaves,
    };
    let unfused = ServeBenchKnobs { fusion: 1, ..knobs };
    let (qps_unfused_a, hits_unfused, _) = serve_bench_run(&db, &scoring, &queries, &unfused)?;
    let (qps_fused, hits_fused, factor) = serve_bench_run(&db, &scoring, &queries, &knobs)?;
    let (qps_unfused_b, hits_unfused_b, _) = serve_bench_run(&db, &scoring, &queries, &unfused)?;
    if hits_fused != hits_unfused || hits_unfused != hits_unfused_b {
        return Err("fused and unfused runs returned different hit tables".into());
    }
    let qps_unfused = qps_unfused_a.max(qps_unfused_b);
    let speedup = qps_fused / qps_unfused;
    println!("  unfused: {qps_unfused:8.2} queries/s");
    println!("  fused:   {qps_fused:8.2} queries/s (achieved fusion factor {factor:.2})");
    println!("  speedup: {speedup:.2}x  (hit tables identical)");

    let report = Json::obj(vec![
        ("concurrency", Json::Num(concurrency as f64)),
        ("queries", Json::Num(total as f64)),
        ("query_len", Json::Num(qlen as f64)),
        ("subjects", Json::Num(subjects_n as f64)),
        ("residues", Json::Num(residues as f64)),
        ("workers", Json::Num(workers as f64)),
        ("fusion", Json::Num(fusion as f64)),
        ("fusion_factor", Json::Num(factor)),
        ("qps_unfused", Json::Num(qps_unfused)),
        ("qps_fused", Json::Num(qps_fused)),
        ("speedup", Json::Num(speedup)),
        ("identical_hits", Json::Bool(true)),
    ]);
    std::fs::write(json_path, format!("{report}\n")).map_err(|e| format!("{json_path}: {e}"))?;
    println!("wrote {json_path}");
    Ok(())
}

/// Peak RSS (`VmHWM`) in kB. Linux only; `None` elsewhere.
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Reset the peak-RSS watermark to the current RSS so per-phase peaks are
/// measurable in one process (Linux `clear_refs`; a no-op elsewhere).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// One cold-start measurement: load the database from `path`, run one
/// query to first result, and report (load seconds, total seconds, hits,
/// peak RSS in kB if measurable).
struct ColdStart {
    load_secs: f64,
    first_result_secs: f64,
    hits: Vec<Hit>,
    peak_rss_kb: Option<u64>,
}

/// Preferred measurement: run the probe in a fresh child process, so each
/// path's peak RSS reflects that path alone instead of the allocator reuse
/// of whatever ran before it in this process. Only possible when we *are*
/// the real `swhybrid` binary (under `cargo test` the current executable
/// is the test harness, whose argv belongs to libtest).
fn cold_start_via_probe(
    path: &str,
    from_store: bool,
    query_ascii: &str,
    top_n: usize,
) -> Option<ColdStart> {
    use swhybrid::json::Json;
    use swhybrid::serve::protocol::hits_from_json;

    let exe = std::env::current_exe().ok()?;
    if exe.file_stem()?.to_str()? != "swhybrid" {
        return None;
    }
    let out = std::process::Command::new(&exe)
        .args([
            "bench-store-probe",
            path,
            if from_store { "store" } else { "fasta" },
            query_ascii,
            &top_n.to_string(),
        ])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let json = Json::parse(std::str::from_utf8(&out.stdout).ok()?.trim()).ok()?;
    Some(ColdStart {
        load_secs: json.get("load_secs").and_then(Json::as_f64)?,
        first_result_secs: json.get("first_result_secs").and_then(Json::as_f64)?,
        hits: hits_from_json(json.get("hits")?).ok()?,
        peak_rss_kb: json.get("peak_rss_kb").and_then(Json::as_u64),
    })
}

/// Internal entry point for [`cold_start_via_probe`] (not in USAGE): load
/// one database path, run one query, print the measurement as one JSON
/// line on stdout.
fn cmd_bench_store_probe(args: &[String]) -> Result<(), String> {
    use swhybrid::json::Json;
    use swhybrid::serve::protocol::hits_to_json;

    let [path, kind, query_ascii, top_n] = args else {
        return Err("bench-store-probe takes <path> <store|fasta> <query> <top>".into());
    };
    let from_store = match kind.as_str() {
        "store" => true,
        "fasta" => false,
        other => return Err(format!("unknown probe kind {other:?}")),
    };
    let top_n: usize = top_n.parse().map_err(|_| format!("bad top {top_n:?}"))?;
    let query = Alphabet::Protein
        .encode(query_ascii.as_bytes())
        .map_err(|e| e.to_string())?;
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let c = cold_start_in_process(path, from_store, &query, &scoring, top_n)?;
    println!(
        "{}",
        Json::obj(vec![
            ("load_secs", Json::Num(c.load_secs)),
            ("first_result_secs", Json::Num(c.first_result_secs)),
            (
                "peak_rss_kb",
                c.peak_rss_kb.map_or(Json::Null, |v| Json::Num(v as f64)),
            ),
            ("hits", hits_to_json(&c.hits)),
        ])
    );
    Ok(())
}

fn cold_start_in_process(
    path: &str,
    from_store: bool,
    query: &[u8],
    scoring: &Scoring,
    top_n: usize,
) -> Result<ColdStart, String> {
    reset_peak_rss();
    let rss_before = peak_rss_kb();
    let t0 = std::time::Instant::now();
    let db = if from_store {
        DbSource::Snapshot(
            Store::open(path)
                .and_then(Store::into_snapshot)
                .map_err(|e| format!("{path}: {e}"))?,
        )
    } else {
        DbSource::Encoded(load_encoded(path)?)
    };
    let load_secs = t0.elapsed().as_secs_f64();
    let result = db.search(
        query,
        scoring,
        SearchConfig {
            top_n,
            ..Default::default()
        },
    );
    let first_result_secs = t0.elapsed().as_secs_f64();
    let peak = peak_rss_kb();
    Ok(ColdStart {
        load_secs,
        first_result_secs,
        hits: result.hits,
        peak_rss_kb: match (rss_before, peak) {
            (Some(before), Some(after)) => Some(after.saturating_sub(before)),
            _ => None,
        },
    })
}

fn cmd_bench_store(args: &[String]) -> Result<(), String> {
    use swhybrid::json::Json;
    use swhybrid::seq::sequence::Sequence;

    let opts = Opts::parse(args, &["subjects", "qlen", "reps", "top", "json"], &[])?;
    if !opts.positional.is_empty() {
        return Err("bench-store takes flags only".into());
    }
    let n: usize = opts.get_parsed("subjects", 20000)?;
    let qlen: usize = opts.get_parsed("qlen", 64)?;
    let reps: usize = opts.get_parsed("reps", 3)?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let json_path = opts.get("json").unwrap_or("BENCH_store.json");
    if n == 0 || qlen == 0 || reps == 0 {
        return Err("--subjects, --qlen, and --reps must be at least 1".into());
    }
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let db = skewed_bench_db(2013, n);
    let residues: u64 = db.iter().map(|s| s.len() as u64).sum();
    let dir = std::env::temp_dir().join(format!("swhybrid_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let fasta_path = dir.join("bench.fasta");
    let store_path = dir.join("bench.swdb");
    let records: Vec<Sequence> = db
        .iter()
        .map(|s| Sequence::new(s.id.clone(), "", s.decode()))
        .collect();
    std::fs::write(&fasta_path, swhybrid::seq::fasta::to_string(&records))
        .map_err(|e| e.to_string())?;
    build_store(&store_path, "bench", &db).map_err(|e| e.to_string())?;
    let mut rng = swhybrid::seq::synth::rng(77);
    let query_ascii = swhybrid::seq::synth::random_protein(&mut rng, qlen);
    let query = Alphabet::Protein
        .encode(&query_ascii)
        .expect("synthetic residues are valid");
    println!(
        "cold-start bench: {n} subjects ({residues} residues), query {qlen} aa, best of {reps}"
    );

    let query_str = String::from_utf8(query_ascii.clone()).expect("synthetic query is ASCII");
    let measure = |path: &std::path::Path, from_store: bool| -> Result<ColdStart, String> {
        let path = path.to_str().expect("temp paths are UTF-8");
        match cold_start_via_probe(path, from_store, &query_str, top_n) {
            Some(c) => Ok(c),
            // In-process fallback (tests, non-subprocess platforms): the
            // RSS split between the two paths is then approximate.
            None => cold_start_in_process(path, from_store, &query, &scoring, top_n),
        }
    };
    let mut best: [Option<ColdStart>; 2] = [None, None];
    for _ in 0..reps {
        let store = measure(&store_path, true)?;
        let fasta = measure(&fasta_path, false)?;
        if store.hits != fasta.hits {
            return Err("store-path and FASTA-path hit tables differ".into());
        }
        for (slot, run) in best.iter_mut().zip([store, fasta]) {
            if slot.as_ref().is_none_or(|b| run.load_secs < b.load_secs) {
                *slot = Some(run);
            }
        }
    }
    let [Some(store), Some(fasta)] = best else {
        unreachable!("reps >= 1 fills both slots");
    };
    let speedup = fasta.load_secs / store.load_secs.max(1e-9);
    let fmt_rss = |kb: Option<u64>| kb.map_or("n/a".to_string(), |v| format!("{v} kB"));
    println!(
        "  fasta: load {:.4} s, first result {:.4} s, peak RSS {}",
        fasta.load_secs,
        fasta.first_result_secs,
        fmt_rss(fasta.peak_rss_kb)
    );
    println!(
        "  store: load {:.4} s, first result {:.4} s, peak RSS {}",
        store.load_secs,
        store.first_result_secs,
        fmt_rss(store.peak_rss_kb)
    );
    println!("  load speedup: {speedup:.1}x  (hit tables identical)");

    let side = |c: &ColdStart| {
        Json::obj(vec![
            ("load_secs", Json::Num(c.load_secs)),
            ("first_result_secs", Json::Num(c.first_result_secs)),
            (
                "peak_rss_kb",
                c.peak_rss_kb.map_or(Json::Null, |v| Json::Num(v as f64)),
            ),
        ])
    };
    let report = Json::obj(vec![
        ("subjects", Json::Num(n as f64)),
        ("residues", Json::Num(residues as f64)),
        ("query_len", Json::Num(qlen as f64)),
        ("reps", Json::Num(reps as f64)),
        ("fasta", side(&fasta)),
        ("store", side(&store)),
        ("load_speedup", Json::Num(speedup)),
        ("identical_hits", Json::Bool(true)),
    ]);
    std::fs::write(json_path, format!("{report}\n")).map_err(|e| format!("{json_path}: {e}"))?;
    println!("wrote {json_path}");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "gpus", "sse", "fpgas", "db", "policy", "order", "queries", "omega",
        ],
        &["no-adjustment"],
    )?;
    if !opts.positional.is_empty() {
        return Err(format!(
            "simulate takes flags only (got {:?})",
            opts.positional[0]
        ));
    }
    let gpus: usize = opts.get_parsed("gpus", 4)?;
    let sse: usize = opts.get_parsed("sse", 4)?;
    let fpgas: usize = opts.get_parsed("fpgas", 0)?;
    if gpus + sse + fpgas == 0 {
        return Err("platform needs at least one PE".into());
    }
    let db = paper_database(opts.get("db").unwrap_or("swissprot"))
        .ok_or_else(|| format!("unknown database {:?}", opts.get("db").unwrap_or("")))?
        .full_scale_stats();
    let omega: usize = opts.get_parsed("omega", 5)?;
    let policy = match opts.get("policy").unwrap_or("pss") {
        "ss" => Policy::SelfScheduling,
        "pss" => Policy::Pss {
            omega: omega.max(1),
        },
        "fixed" => Policy::Fixed,
        "wfixed" => Policy::WFixed,
        other => return Err(format!("unknown policy {other:?}")),
    };
    let order = match opts.get("order").unwrap_or("asc") {
        "asc" => QueryOrder::Ascending,
        "desc" => QueryOrder::Descending,
        "shuffle" => QueryOrder::Shuffled,
        other => return Err(format!("unknown order {other:?}")),
    };
    let mut spec = QuerySetSpec::paper();
    spec.count = opts.get_parsed("queries", 40usize)?;
    if spec.count == 0 {
        return Err("--queries must be at least 1".into());
    }
    spec.order = order;

    let workload = PlatformBuilder::workload(&db, &spec, 2013);
    let builder = PlatformBuilder::new()
        .gpus(gpus)
        .sse_cores(sse)
        .fpgas(fpgas)
        .policy(policy)
        .adjustment(!opts.has("no-adjustment"));
    let label = builder.describe();
    let out = builder.run(workload);

    println!("platform:  {label}");
    println!("database:  {} ({} residues)", db.name, db.total_residues);
    println!(
        "workload:  {} queries, {:?} order, policy {:?}, adjustment {}",
        spec.count,
        order,
        policy,
        !opts.has("no-adjustment")
    );
    println!(
        "result:    {:.1} s  |  {:.2} GCUPS  |  duplicated work {:.1}%",
        out.seconds(),
        out.gcups(),
        100.0 * out.report.duplicated_cells / out.report.total_cells.max(1) as f64
    );
    println!("\nper-PE:");
    for pe in &out.report.per_pe {
        println!(
            "  {:<6} {:>9.1} s busy  {:>3} completed  {:>3} cancelled",
            pe.name, pe.busy_seconds, pe.tasks_completed, pe.tasks_cancelled
        );
    }
    Ok(())
}

fn load_encoded(path: &str) -> Result<Vec<EncodedSequence>, String> {
    FastaReader::open(path)
        .map_err(|e| format!("{path}: {e}"))?
        .read_all()
        .map_err(|e| format!("{path}: {e}"))?
        .iter()
        .map(|r| {
            EncodedSequence::from_sequence(r, Alphabet::Protein)
                .map_err(|e| format!("{path} ({}): {e}", r.id))
        })
        .collect()
}

fn policy_from_opts(opts: &Opts) -> Result<Policy, String> {
    Ok(match opts.get("policy").unwrap_or("pss") {
        "ss" => Policy::SelfScheduling,
        "pss" => Policy::pss_default(),
        "fixed" => Policy::Fixed,
        "wfixed" => Policy::WFixed,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn cmd_master(args: &[String]) -> Result<(), String> {
    use swhybrid::exec::master::MasterConfig;
    use swhybrid::exec::net::{MasterServer, NetConfig};

    let opts = Opts::parse(
        args,
        &[
            "listen",
            "slaves",
            "policy",
            "top",
            "register-timeout",
            "slave-deadline",
            "events",
        ],
        &["no-adjustment"],
    )?;
    let [qpath, dbpath] = opts.positional.as_slice() else {
        return Err("master takes <query.fasta> <db.fasta>".into());
    };
    let listen = opts.get("listen").unwrap_or("0.0.0.0:7878");
    let slaves: usize = opts.get_parsed("slaves", 1)?;
    if slaves == 0 {
        return Err("--slaves must be at least 1".into());
    }
    let queries = load_encoded(qpath)?;
    let subjects = load_encoded(dbpath)?;
    if queries.is_empty() {
        return Err(format!("{qpath}: no query sequences"));
    }
    let db_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    let specs = queries
        .iter()
        .enumerate()
        .map(|(id, q)| swhybrid::device::task::TaskSpec {
            id,
            query_len: q.len(),
            queries: 1,
            db_residues,
            db_sequences: subjects.len(),
        })
        .collect();

    let mut net = NetConfig::default();
    if let Some(secs) = opts.get("register-timeout") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--register-timeout: cannot parse {secs:?}"))?;
        net.register_timeout = if secs > 0.0 {
            Some(std::time::Duration::from_secs_f64(secs))
        } else {
            None
        };
    }
    if let Some(secs) = opts.get("slave-deadline") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--slave-deadline: cannot parse {secs:?}"))?;
        if secs <= 0.0 {
            return Err("--slave-deadline must be positive".into());
        }
        net.slave_deadline = std::time::Duration::from_secs_f64(secs);
    }
    let mut server = MasterServer::bind_with(
        listen,
        MasterConfig {
            policy: policy_from_opts(&opts)?,
            adjustment: !opts.has("no-adjustment"),
            dispatch: Default::default(),
        },
        slaves,
        net,
    )
    .map_err(|e| format!("bind {listen}: {e}"))?;
    // Stream events as JSONL while the run progresses (a crashed or killed
    // master still leaves every event up to that point on disk), instead
    // of buffering the whole log until exit.
    let mut events_streamed = None;
    if let Some(path) = opts.get("events") {
        use std::io::Write;
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut out = std::io::LineWriter::new(file);
        let written = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let counter = std::sync::Arc::clone(&written);
        server = server.with_event_sink(move |event| {
            // A full disk must not take the run down with it.
            let _ = writeln!(out, "{}", event.to_json());
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        events_streamed = Some((written, path.to_string()));
    }
    println!(
        "master listening on {} for {} slave(s), {} tasks",
        server.local_addr().map_err(|e| e.to_string())?,
        slaves,
        queries.len()
    );
    let outcome = server.serve(specs).map_err(|e| e.to_string())?;
    if let Some((written, path)) = events_streamed {
        println!(
            "streamed {} events to {path}",
            written.load(std::sync::atomic::Ordering::Relaxed)
        );
    }
    println!(
        "\ncompleted {} tasks in {:.2} s  →  {:.2} GCUPS",
        outcome.completed_by.len(),
        outcome.elapsed_seconds,
        outcome.gcups
    );
    // Kernel accounting mirrors `swhybrid search`: the same counters, here
    // aggregated over the wire from every slave's reports.
    let k = &outcome.kernels;
    if k.total() > 0 {
        println!(
            "kernel (all slaves): {} striped / {} inter-sequence chunks, \
             subjects i8/i16/scalar striped {}+{}+{} interseq {}+{}+{}",
            k.chunks_striped,
            k.chunks_interseq,
            k.resolved_i8,
            k.resolved_i16,
            k.resolved_scalar,
            k.interseq_i8,
            k.interseq_i16,
            k.interseq_scalar,
        );
        for (name, k) in &outcome.kernels_by_pe {
            println!(
                "  {name}: {} cells, {} striped / {} inter-sequence chunks, \
                 subjects i8/i16/scalar striped {}+{}+{} interseq {}+{}+{}",
                k.cells_computed,
                k.chunks_striped,
                k.chunks_interseq,
                k.resolved_i8,
                k.resolved_i16,
                k.resolved_scalar,
                k.interseq_i8,
                k.interseq_i16,
                k.interseq_scalar,
            );
        }
    }
    println!("\nmerged hits (top {}):", opts.get_parsed("top", 10usize)?);
    for (rank, qh) in outcome
        .hits
        .iter()
        .take(opts.get_parsed("top", 10usize)?)
        .enumerate()
    {
        println!(
            "{:>4}  score {:>5}  q{}  {}",
            rank + 1,
            qh.hit.score,
            qh.query_index,
            qh.hit.id
        );
    }
    Ok(())
}

fn cmd_slave(args: &[String]) -> Result<(), String> {
    use swhybrid::device::exec::StripedBackend;
    use swhybrid::exec::net::{run_serve_slave, run_slave_with, NetConfig};

    let opts = Opts::parse(
        args,
        &[
            "connect",
            "name",
            "gcups",
            "top",
            "heartbeat",
            "reconnect-retries",
            "kernel",
            "matrix",
            "gap-open",
            "gap-extend",
        ],
        &["serve"],
    )?;
    let connect = opts
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    let name = opts.get("name").unwrap_or("slave").to_string();
    let gcups: f64 = opts.get_parsed("gcups", 1.0)?;
    let scoring = scoring_from_opts(&opts)?;
    let mut net = NetConfig::default();
    if let Some(secs) = opts.get("heartbeat") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| format!("--heartbeat: cannot parse {secs:?}"))?;
        if secs <= 0.0 {
            return Err("--heartbeat must be positive".into());
        }
        net.heartbeat_interval = std::time::Duration::from_secs_f64(secs);
    }
    net.reconnect_max_retries = opts.get_parsed("reconnect-retries", net.reconnect_max_retries)?;

    if opts.has("serve") {
        // Serve-mode: only the database is loaded locally; queries and
        // shard bounds arrive over the wire from the daemon.
        let [dbpath] = opts.positional.as_slice() else {
            return Err("slave --serve takes <db.fasta>".into());
        };
        let subjects = load_encoded(dbpath)?;
        println!("{name}: connecting to daemon at {connect} (serve mode)");
        let executed = run_serve_slave(
            connect,
            &name,
            gcups,
            &subjects,
            &scoring,
            kernel_from_opts(&opts)?,
            &net,
        )
        .map_err(|e| e.to_string())?;
        println!("{name}: done, executed {executed} shard(s)");
        return Ok(());
    }

    let [qpath, dbpath] = opts.positional.as_slice() else {
        return Err("slave takes <query.fasta> <db.fasta>".into());
    };
    let queries = load_encoded(qpath)?;
    let subjects = load_encoded(dbpath)?;
    println!("{name}: connecting to {connect}");
    let backend = StripedBackend {
        kernel: kernel_from_opts(&opts)?,
        ..StripedBackend::default()
    };
    let executed = run_slave_with(
        connect,
        &name,
        gcups,
        &backend,
        &queries,
        &subjects,
        &scoring,
        opts.get_parsed("top", 10usize)?,
        &net,
    )
    .map_err(|e| e.to_string())?;
    println!("{name}: done, executed {executed} task(s)");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use swhybrid::serve::{ServeDaemon, ServiceConfig};

    let opts = Opts::parse(
        args,
        &[
            "listen",
            "listen-slaves",
            "workers",
            "shards",
            "max-active",
            "queue-depth",
            "client-inflight",
            "cache",
            "chunk",
            "policy",
            "matrix",
            "gap-open",
            "gap-extend",
            "kernel",
            "fusion",
            "retain",
            "db-store",
        ],
        &["no-adjustment", "verify-store"],
    )?;
    let scoring = scoring_from_opts(&opts)?;
    // The daemon boots either from FASTA (parse + encode + digest on every
    // start) or from a `.swdb` store (memory-mapped arena, stored digest —
    // no O(db) re-hash unless --verify-store asks for it).
    let (dbpath, snapshot) = match (opts.get("db-store"), opts.positional.as_slice()) {
        (Some(store_path), []) => {
            let snapshot = Store::open_with(store_path, store_verify(opts.has("verify-store")))
                .and_then(Store::into_snapshot)
                .map_err(|e| format!("{store_path}: {e}"))?;
            if !snapshot.is_empty() && snapshot.alphabet() != scoring.matrix.alphabet {
                return Err(format!(
                    "{store_path}: store alphabet {:?} does not match scoring alphabet {:?}",
                    snapshot.alphabet(),
                    scoring.matrix.alphabet
                ));
            }
            (store_path.to_string(), snapshot)
        }
        (None, [dbpath]) => {
            let subjects = load_encoded(dbpath)?;
            let name = std::path::Path::new(dbpath)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            (dbpath.clone(), DbSnapshot::from_encoded(&name, &subjects))
        }
        (Some(_), _) => return Err("serve --db-store takes no positional database".into()),
        (None, _) => return Err("serve takes <db.fasta> (or --db-store FILE.swdb)".into()),
    };
    let listen = opts.get("listen").unwrap_or("127.0.0.1:7979");
    let policy = match opts.get("policy").unwrap_or("pss") {
        "ss" => Policy::SelfScheduling,
        "pss" => Policy::pss_default(),
        other => {
            return Err(format!(
                "serve needs a dynamic policy (ss|pss), got {other:?}"
            ))
        }
    };
    let default = ServiceConfig::default();
    let config = ServiceConfig {
        workers: opts.get_parsed("workers", default.workers)?,
        shards: opts.get_parsed("shards", default.shards)?,
        max_active: opts.get_parsed("max-active", default.max_active)?,
        queue_depth: opts.get_parsed("queue-depth", default.queue_depth)?,
        per_client_inflight: opts.get_parsed("client-inflight", default.per_client_inflight)?,
        cache_capacity: opts.get_parsed("cache", default.cache_capacity)?,
        chunk_size: opts.get_parsed("chunk", default.chunk_size)?,
        policy,
        adjustment: !opts.has("no-adjustment"),
        kernel: kernel_from_opts(&opts)?,
        fusion: opts.get_parsed("fusion", default.fusion)?,
        retained_jobs: opts.get_parsed("retain", default.retained_jobs)?,
        ..default
    };
    if config.queue_depth == 0 || config.per_client_inflight == 0 {
        return Err("--queue-depth and --client-inflight must be at least 1".into());
    }
    if config.fusion == 0 {
        return Err("--fusion must be at least 1 (1 disables fusion)".into());
    }
    let residues = snapshot.total_residues();
    let digest = snapshot.digest();
    let mapped = snapshot.arena().is_shared();
    let workers = config.workers.max(1);
    let daemon = ServeDaemon::bind_snapshot(listen, snapshot, scoring, config)
        .map_err(|e| format!("bind {listen}: {e}"))?;
    println!(
        "serving {dbpath} ({residues} residues{}) on {} with {workers} worker(s), \
         digest {digest:016x}",
        if mapped { ", memory-mapped" } else { "" },
        daemon.local_addr().map_err(|e| e.to_string())?
    );
    if let Some(slave_addr) = opts.get("listen-slaves") {
        let bound = daemon
            .listen_slaves(slave_addr, swhybrid::exec::net::NetConfig::default())
            .map_err(|e| format!("bind slave port {slave_addr}: {e}"))?;
        println!("accepting remote slaves on {bound} (swhybrid slave --serve {dbpath} --connect {bound})");
    }
    daemon.run().map_err(|e| e.to_string())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    use swhybrid::json::Json;
    use swhybrid::serve::protocol::SearchRequest;
    use swhybrid::serve::ServeClient;

    let opts = Opts::parse(
        args,
        &["connect", "top", "deadline-ms"],
        &["stats", "shutdown"],
    )?;
    let connect = opts
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    let top_n: usize = opts.get_parsed("top", 10)?;
    let deadline_ms = match opts.get("deadline-ms") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--deadline-ms: cannot parse {v:?}"))?,
        ),
    };
    let mut client =
        ServeClient::connect(connect).map_err(|e| format!("connect {connect}: {e}"))?;

    match opts.positional.as_slice() {
        [] => {}
        [qpath] => {
            let records = FastaReader::open(qpath)
                .map_err(|e| format!("{qpath}: {e}"))?
                .read_all()
                .map_err(|e| format!("{qpath}: {e}"))?;
            if records.is_empty() {
                return Err(format!("{qpath}: no query sequences"));
            }
            for record in &records {
                let reply = client
                    .search_request(SearchRequest {
                        query: String::from_utf8_lossy(&record.residues).into_owned(),
                        top_n,
                        deadline_ms,
                        tag: Some(record.id.clone()),
                        ack: false,
                    })
                    .map_err(|e| e.to_string())?;
                print_daemon_result(&record.id, &reply)?;
            }
        }
        _ => return Err("query takes at most one <query.fasta>".into()),
    }

    if opts.has("stats") {
        let stats = client.stats().map_err(|e| e.to_string())?;
        println!("{}", stats.to_string_pretty());
    }
    if opts.has("shutdown") {
        let reply = client.shutdown().map_err(|e| e.to_string())?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("shutdown refused: {reply}"));
        }
        println!("daemon draining for shutdown");
    }
    Ok(())
}

fn cmd_reload(args: &[String]) -> Result<(), String> {
    use swhybrid::json::Json;
    use swhybrid::serve::ServeClient;

    let opts = Opts::parse(args, &["connect", "store", "fasta"], &["verify"])?;
    if !opts.positional.is_empty() {
        return Err("reload takes flags only".into());
    }
    let connect = opts
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    let mut client =
        ServeClient::connect(connect).map_err(|e| format!("connect {connect}: {e}"))?;
    let reply = match (opts.get("store"), opts.get("fasta")) {
        (Some(store), None) => client.reload_store(store, opts.has("verify")),
        (None, Some(fasta)) => {
            if opts.has("verify") {
                return Err("--verify applies to --store reloads only".into());
            }
            client.reload_fasta(fasta)
        }
        _ => return Err("reload needs exactly one of --store or --fasta".into()),
    }
    .map_err(|e| e.to_string())?;
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
        let reason = reply.get("reason").and_then(Json::as_str).unwrap_or("");
        return Err(format!("reload refused: {code}: {reason}"));
    }
    println!(
        "daemon now serving {} (generation {}): {} sequences, {} residues, digest {}",
        reply.get("name").and_then(Json::as_str).unwrap_or("?"),
        reply.get("generation").and_then(Json::as_u64).unwrap_or(0),
        reply.get("sequences").and_then(Json::as_u64).unwrap_or(0),
        reply.get("residues").and_then(Json::as_u64).unwrap_or(0),
        reply.get("digest").and_then(Json::as_str).unwrap_or("?"),
    );
    println!("remote slaves (if any) were disconnected for re-admission under the new digest");
    Ok(())
}

fn print_daemon_result(qid: &str, reply: &swhybrid::json::Json) -> Result<(), String> {
    use swhybrid::json::Json;

    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
        let reason = reply.get("reason").and_then(Json::as_str).unwrap_or("");
        return Err(format!("query {qid}: {code}: {reason}"));
    }
    let job = reply.get("job").and_then(Json::as_u64).unwrap_or(0);
    let cached = reply.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let elapsed = reply
        .get("elapsed_ms")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let cells = reply.get("cells").and_then(Json::as_u64).unwrap_or(0);
    println!(
        "\n# query {qid}: job {job} {} in {elapsed:.1} ms ({cells} cells)",
        if cached { "cached" } else { "scanned" }
    );
    println!("{:>4}  {:>6}  {:>6}  subject", "rank", "score", "len");
    let hits = swhybrid::serve::ServeClient::hits(reply).map_err(|e| format!("bad result: {e}"))?;
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "{:>4}  {:>6}  {:>6}  {}",
            rank + 1,
            hit.score,
            hit.subject_len,
            hit.id
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opts_parser_positional_and_flags() {
        let o = Opts::parse(
            &s(&["a.fasta", "--top", "5", "--align", "b.fasta"]),
            &["top"],
            &["align"],
        )
        .unwrap();
        assert_eq!(o.positional, s(&["a.fasta", "b.fasta"]));
        assert_eq!(o.get("top"), Some("5"));
        assert!(o.has("align"));
        assert_eq!(o.get_parsed("top", 1usize).unwrap(), 5);
        assert_eq!(o.get_parsed("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn opts_parser_rejects_unknown_and_missing_value() {
        assert!(Opts::parse(&s(&["--bogus"]), &["top"], &[]).is_err());
        assert!(Opts::parse(&s(&["--top"]), &["top"], &[]).is_err());
    }

    #[test]
    fn scoring_from_opts_defaults_and_overrides() {
        let o = Opts::parse(&s(&[]), &["matrix", "gap-open", "gap-extend"], &[]).unwrap();
        let sc = scoring_from_opts(&o).unwrap();
        assert_eq!(sc.matrix.name, "BLOSUM62");
        let o = Opts::parse(
            &s(&["--matrix", "pam250", "--gap-open", "12"]),
            &["matrix", "gap-open", "gap-extend"],
            &[],
        )
        .unwrap();
        let sc = scoring_from_opts(&o).unwrap();
        assert_eq!(sc.matrix.name, "PAM250");
        assert_eq!(
            sc.gap,
            GapModel::Affine {
                open: 12,
                extend: 2
            }
        );
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["help"])).is_ok());
    }

    #[test]
    fn simulate_smoke_small() {
        // A tiny simulated run exercises the whole path.
        run(&s(&[
            "simulate",
            "--gpus",
            "1",
            "--sse",
            "1",
            "--db",
            "dog",
            "--queries",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn distributed_master_slave_via_cli_paths() {
        // Exercise cmd_master + cmd_slave end-to-end on localhost with an
        // ephemeral port.
        let dir = std::env::temp_dir().join(format!("swhybrid_cli_net_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("db.fasta");
        run(&s(&["generate", "rat", "0.0003", db.to_str().unwrap()])).unwrap();
        let q = dir.join("q.fasta");
        let first = FastaReader::open(&db)
            .unwrap()
            .next_record()
            .unwrap()
            .unwrap();
        std::fs::write(&q, swhybrid::seq::fasta::to_string(std::iter::once(&first))).unwrap();

        // Pick a free port by binding briefly.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);

        let q2 = q.clone();
        let db2 = db.clone();
        let addr2 = addr.clone();
        let slave = std::thread::spawn(move || {
            // Retry until the master is listening.
            for _ in 0..200 {
                let result = run(&s(&[
                    "slave",
                    q2.to_str().unwrap(),
                    db2.to_str().unwrap(),
                    "--connect",
                    &addr2,
                    "--name",
                    "cli-slave",
                ]));
                if result.is_ok() {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            panic!("slave never connected");
        });
        let events = dir.join("events.json");
        run(&s(&[
            "master",
            q.to_str().unwrap(),
            db.to_str().unwrap(),
            "--listen",
            &addr,
            "--slaves",
            "1",
            "--register-timeout",
            "30",
            "--events",
            events.to_str().unwrap(),
        ]))
        .unwrap();
        slave.join().unwrap();
        // The export is JSONL: every line is one well-formed event object.
        let text = std::fs::read_to_string(&events).unwrap();
        let entries: Vec<swhybrid::json::Json> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| swhybrid::json::Json::parse(l).expect("event line is valid JSON"))
            .collect();
        assert!(!entries.is_empty(), "event export is empty");
        assert!(
            entries.iter().all(|e| e
                .get("event")
                .and_then(swhybrid::json::Json::as_str)
                .is_some()),
            "every event line carries its kind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_query_daemon_round_trip() {
        // Exercise cmd_serve + cmd_query end-to-end: serve a synthetic
        // database, query it twice (second hit must come from the cache),
        // print stats, then shut the daemon down and join it.
        let dir = std::env::temp_dir().join(format!("swhybrid_cli_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("db.fasta");
        run(&s(&["generate", "dog", "0.0005", db.to_str().unwrap()])).unwrap();
        let first = FastaReader::open(&db)
            .unwrap()
            .next_record()
            .unwrap()
            .unwrap();
        let q = dir.join("q.fasta");
        std::fs::write(&q, swhybrid::seq::fasta::to_string(std::iter::once(&first))).unwrap();

        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);

        let db2 = db.clone();
        let addr2 = addr.clone();
        let daemon = std::thread::spawn(move || {
            run(&s(&[
                "serve",
                db2.to_str().unwrap(),
                "--listen",
                &addr2,
                "--workers",
                "2",
            ]))
            .unwrap();
        });
        // Retry until the daemon is listening.
        let mut connected = false;
        for _ in 0..300 {
            if run(&s(&[
                "query",
                q.to_str().unwrap(),
                "--connect",
                &addr,
                "--top",
                "3",
            ]))
            .is_ok()
            {
                connected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(connected, "query CLI never reached the daemon");
        // Repeat (cache hit) + stats + shutdown in one connection.
        run(&s(&[
            "query",
            q.to_str().unwrap(),
            "--connect",
            &addr,
            "--top",
            "3",
            "--stats",
            "--shutdown",
        ]))
        .unwrap();
        daemon.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_hybrid_fleet_with_remote_slave_round_trip() {
        // `serve --listen-slaves` + `slave --serve`: a daemon scheduling a
        // mixed fleet (local worker threads + one remote TCP slave) must
        // answer queries and shut down cleanly, with the remote exiting too.
        let dir = std::env::temp_dir().join(format!("swhybrid_cli_hybrid_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("db.fasta");
        run(&s(&["generate", "dog", "0.0005", db.to_str().unwrap()])).unwrap();
        let first = FastaReader::open(&db)
            .unwrap()
            .next_record()
            .unwrap()
            .unwrap();
        let q = dir.join("q.fasta");
        std::fs::write(&q, swhybrid::seq::fasta::to_string(std::iter::once(&first))).unwrap();

        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        let probe2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let slave_addr = probe2.local_addr().unwrap().to_string();
        drop((probe, probe2));

        let db2 = db.clone();
        let addr2 = addr.clone();
        let slave_addr2 = slave_addr.clone();
        let daemon = std::thread::spawn(move || {
            run(&s(&[
                "serve",
                db2.to_str().unwrap(),
                "--listen",
                &addr2,
                "--listen-slaves",
                &slave_addr2,
                "--workers",
                "2",
                "--shards",
                "4",
                "--cache",
                "0",
            ]))
            .unwrap();
        });
        let db3 = db.clone();
        let slave = std::thread::spawn(move || {
            // Wait until the daemon's slave port accepts, then join. The
            // session ends either cleanly (`done` at drain) or with a
            // connection loss if daemon teardown wins the race — both are
            // valid exits for this smoke test.
            let mut up = false;
            for _ in 0..300 {
                if std::net::TcpStream::connect(&slave_addr).is_ok() {
                    up = true;
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            assert!(up, "daemon slave port never opened");
            let _ = run(&s(&[
                "slave",
                "--serve",
                db3.to_str().unwrap(),
                "--connect",
                &slave_addr,
                "--name",
                "cli-remote",
                "--reconnect-retries",
                "0",
            ]));
        });
        let mut connected = false;
        for _ in 0..300 {
            if run(&s(&[
                "query",
                q.to_str().unwrap(),
                "--connect",
                &addr,
                "--top",
                "3",
            ]))
            .is_ok()
            {
                connected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(connected, "query CLI never reached the hybrid daemon");
        run(&s(&[
            "query",
            q.to_str().unwrap(),
            "--connect",
            &addr,
            "--top",
            "3",
            "--stats",
            "--shutdown",
        ]))
        .unwrap();
        daemon.join().unwrap();
        slave.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn db_build_inspect_and_store_search_round_trip() {
        // `db build` + `db inspect --verify` + `search --db-store`: the
        // store-backed scan must rank exactly what the FASTA scan ranks.
        let dir = std::env::temp_dir().join(format!("swhybrid_cli_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("db.fasta");
        let db_s = db.to_str().unwrap().to_string();
        run(&s(&["generate", "dog", "0.0005", &db_s])).unwrap();
        let store = dir.join("db.swdb");
        let store_s = store.to_str().unwrap().to_string();
        run(&s(&["db", "build", &db_s, &store_s, "--name", "dog-test"])).unwrap();
        run(&s(&["db", "inspect", &store_s, "--verify"])).unwrap();
        run(&s(&["db", "inspect", &store_s])).unwrap();

        let first = FastaReader::open(&db)
            .unwrap()
            .next_record()
            .unwrap()
            .unwrap();
        let q = dir.join("q.fasta");
        std::fs::write(&q, swhybrid::seq::fasta::to_string(std::iter::once(&first))).unwrap();
        run(&s(&[
            "search",
            q.to_str().unwrap(),
            "--db-store",
            &store_s,
            "--verify-store",
            "--top",
            "3",
            "--align",
        ]))
        .unwrap();

        // Byte-identity of the two paths, checked on the hit tables
        // themselves (the CLI prints; the API diff is the real assert).
        let subjects = load_encoded(&db_s).unwrap();
        let query = EncodedSequence::from_sequence(&first, Alphabet::Protein).unwrap();
        let scoring = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        };
        let config = || SearchConfig {
            top_n: 5,
            ..Default::default()
        };
        let via_fasta = DbSource::Encoded(subjects).search(&query.codes, &scoring, config());
        let snapshot = Store::open_verified(&store)
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert!(snapshot.arena().is_shared(), "store arena is not mapped");
        let via_store = DbSource::Snapshot(snapshot).search(&query.codes, &scoring, config());
        assert_eq!(via_fasta.hits, via_store.hits);

        // Mismatched usage is rejected, not silently accepted.
        assert!(run(&s(&[
            "search",
            q.to_str().unwrap(),
            &db_s,
            "--db-store",
            &store_s
        ]))
        .is_err());
        assert!(run(&s(&["db", "frobnicate"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_from_store_and_reload_via_cli() {
        // `serve --db-store` + `reload --store`: a daemon booted from one
        // store generation hot-swaps onto another through the CLI verbs.
        let dir = std::env::temp_dir().join(format!("swhybrid_cli_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db_a = dir.join("a.fasta");
        let db_b = dir.join("b.fasta");
        run(&s(&["generate", "dog", "0.0005", db_a.to_str().unwrap()])).unwrap();
        run(&s(&["generate", "rat", "0.0003", db_b.to_str().unwrap()])).unwrap();
        let store_a = dir.join("a.swdb");
        let store_b = dir.join("b.swdb");
        run(&s(&[
            "db",
            "build",
            db_a.to_str().unwrap(),
            store_a.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "db",
            "build",
            db_b.to_str().unwrap(),
            store_b.to_str().unwrap(),
        ]))
        .unwrap();
        let first = FastaReader::open(&db_a)
            .unwrap()
            .next_record()
            .unwrap()
            .unwrap();
        let q = dir.join("q.fasta");
        std::fs::write(&q, swhybrid::seq::fasta::to_string(std::iter::once(&first))).unwrap();

        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let addr2 = addr.clone();
        let store_a2 = store_a.clone();
        let daemon = std::thread::spawn(move || {
            run(&s(&[
                "serve",
                "--db-store",
                store_a2.to_str().unwrap(),
                "--listen",
                &addr2,
                "--workers",
                "2",
            ]))
            .unwrap();
        });
        let mut connected = false;
        for _ in 0..300 {
            if run(&s(&[
                "query",
                q.to_str().unwrap(),
                "--connect",
                &addr,
                "--top",
                "3",
            ]))
            .is_ok()
            {
                connected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(connected, "query CLI never reached the store-backed daemon");

        // Hot-swap to generation B (with full verification), then prove the
        // daemon answers from the new database and shuts down cleanly.
        run(&s(&[
            "reload",
            "--connect",
            &addr,
            "--store",
            store_b.to_str().unwrap(),
            "--verify",
        ]))
        .unwrap();
        // Reloading a nonsense path is refused without killing the daemon.
        assert!(run(&s(&[
            "reload",
            "--connect",
            &addr,
            "--store",
            dir.join("missing.swdb").to_str().unwrap(),
        ]))
        .is_err());
        assert!(run(&s(&["reload", "--connect", &addr])).is_err());
        run(&s(&[
            "query",
            q.to_str().unwrap(),
            "--connect",
            &addr,
            "--top",
            "3",
            "--stats",
            "--shutdown",
        ]))
        .unwrap();
        daemon.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_store_smoke() {
        let dir = std::env::temp_dir().join(format!("swhybrid_cli_bstore_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("BENCH_store.json");
        run(&s(&[
            "bench-store",
            "--subjects",
            "600",
            "--qlen",
            "24",
            "--reps",
            "1",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        let report = swhybrid::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(
            report
                .get("identical_hits")
                .and_then(swhybrid::json::Json::as_bool),
            Some(true)
        );
        assert!(report.get("load_speedup").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_index_search_round_trip() {
        let dir = std::env::temp_dir().join(format!("swhybrid_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("db.fasta");
        let db_s = db.to_str().unwrap().to_string();
        run(&s(&["generate", "dog", "0.0005", &db_s])).unwrap();
        run(&s(&["index", &db_s])).unwrap();
        // Use the database's own first record as the query: it must be hit.
        let first = FastaReader::open(&db)
            .unwrap()
            .next_record()
            .unwrap()
            .unwrap();
        let q = dir.join("q.fasta");
        std::fs::write(&q, swhybrid::seq::fasta::to_string(std::iter::once(&first))).unwrap();
        run(&s(&[
            "search",
            q.to_str().unwrap(),
            &db_s,
            "--top",
            "3",
            "--align",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
