//! Property-based invariants across the alignment kernels.

use proptest::prelude::*;
use swhybrid::align::banded::sw_score_banded;
use swhybrid::align::gotoh::{gotoh_align, gotoh_score};
use swhybrid::align::hirschberg::{hirschberg_global, hirschberg_local};
use swhybrid::align::nw::{nw_align, nw_score};
use swhybrid::align::score_only::{sw_score_affine, sw_score_linear};
use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::align::sw::{sw_align, sw_score};

fn protein_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 0..max_len)
}

fn linear_scoring() -> impl Strategy<Value = Scoring> {
    (1i32..=6).prop_map(|g| Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Linear { penalty: g },
    })
}

fn affine_scoring() -> impl Strategy<Value = Scoring> {
    (0i32..=12, 1i32..=4).prop_map(|(open, extend)| Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine { open, extend },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn traceback_rescores_to_reported_score_linear(
        s in protein_codes(60),
        t in protein_codes(60),
        scoring in linear_scoring(),
    ) {
        let a = sw_align(&s, &t, &scoring);
        prop_assert_eq!(a.rescore(&s, &t, &scoring), a.score);
    }

    #[test]
    fn traceback_rescores_to_reported_score_affine(
        s in protein_codes(60),
        t in protein_codes(60),
        scoring in affine_scoring(),
    ) {
        let a = gotoh_align(&s, &t, &scoring);
        prop_assert_eq!(a.rescore(&s, &t, &scoring), a.score);
    }

    #[test]
    fn linear_row_kernel_equals_full_matrix(
        s in protein_codes(60),
        t in protein_codes(60),
        scoring in linear_scoring(),
    ) {
        prop_assert_eq!(
            sw_score_linear(&s, &t, &scoring).score,
            sw_score(&s, &t, &scoring)
        );
    }

    #[test]
    fn affine_row_kernel_equals_gotoh(
        s in protein_codes(60),
        t in protein_codes(60),
        scoring in affine_scoring(),
    ) {
        prop_assert_eq!(
            sw_score_affine(&s, &t, &scoring).score,
            gotoh_score(&s, &t, &scoring)
        );
    }

    #[test]
    fn local_score_bounds_global_score(
        s in protein_codes(50),
        t in protein_codes(50),
        scoring in linear_scoring(),
    ) {
        prop_assert!(nw_score(&s, &t, &scoring) <= sw_score(&s, &t, &scoring));
    }

    #[test]
    fn hirschberg_global_equals_nw(
        s in protein_codes(50),
        t in protein_codes(50),
        scoring in linear_scoring(),
    ) {
        let h = hirschberg_global(&s, &t, &scoring);
        let n = nw_align(&s, &t, &scoring);
        prop_assert_eq!(h.score, n.score);
        prop_assert_eq!(h.rescore(&s, &t, &scoring), h.score);
    }

    #[test]
    fn hirschberg_local_equals_sw(
        s in protein_codes(50),
        t in protein_codes(50),
        scoring in linear_scoring(),
    ) {
        let h = hirschberg_local(&s, &t, &scoring);
        prop_assert_eq!(h.score, sw_score(&s, &t, &scoring));
        if !h.is_empty() {
            prop_assert_eq!(h.rescore(&s, &t, &scoring), h.score);
        }
    }

    #[test]
    fn myers_miller_equals_quadratic_affine_global(
        s in protein_codes(45),
        t in protein_codes(45),
        scoring in affine_scoring(),
    ) {
        let mm = swhybrid::align::myers_miller::myers_miller_global(&s, &t, &scoring);
        let reference = swhybrid::align::nw::nw_affine_align(&s, &t, &scoring);
        prop_assert_eq!(mm.score, reference.score);
        prop_assert_eq!(mm.rescore(&s, &t, &scoring), mm.score);
    }

    #[test]
    fn nw_affine_traceback_rescores(
        s in protein_codes(45),
        t in protein_codes(45),
        scoring in affine_scoring(),
    ) {
        let a = swhybrid::align::nw::nw_affine_align(&s, &t, &scoring);
        prop_assert_eq!(a.rescore(&s, &t, &scoring), a.score);
    }

    #[test]
    fn banded_is_monotone_in_band_width(
        s in protein_codes(40),
        t in protein_codes(40),
        scoring in linear_scoring(),
    ) {
        let mut prev = 0;
        for band in [0usize, 2, 5, 10, 50] {
            let score = sw_score_banded(&s, &t, &scoring, band, 0);
            prop_assert!(score >= prev, "band {} shrank the score", band);
            prev = score;
        }
        prop_assert_eq!(prev, sw_score(&s, &t, &scoring));
    }

    #[test]
    fn affine_open_penalty_is_monotone(
        s in protein_codes(40),
        t in protein_codes(40),
        extend in 1i32..=3,
    ) {
        // Raising the gap-open penalty can never raise the score.
        let mut prev = i32::MAX;
        for open in [0, 2, 6, 12] {
            let scoring = Scoring {
                matrix: SubstMatrix::blosum62(),
                gap: GapModel::Affine { open, extend },
            };
            let score = gotoh_score(&s, &t, &scoring);
            prop_assert!(score <= prev);
            prev = score;
        }
    }

    #[test]
    fn alignment_ranges_consume_consistently(
        s in protein_codes(50),
        t in protein_codes(50),
        scoring in affine_scoring(),
    ) {
        let a = gotoh_align(&s, &t, &scoring);
        prop_assert_eq!(a.s_consumed(), a.s_range.1 - a.s_range.0);
        prop_assert_eq!(a.t_consumed(), a.t_range.1 - a.t_range.0);
        prop_assert!(a.s_range.1 <= s.len());
        prop_assert!(a.t_range.1 <= t.len());
    }
}
