//! Tri-path differential oracle: one store, one query batch, three
//! transports — the `search` one-shot scan, the persistent serve daemon,
//! and the classic master/slave TCP pair — must produce byte-identical
//! hit tables and identical kernel counters.
//!
//! This pins the PR 9 contract: every execution path drives the ONE shard
//! executor (`swhybrid_simd::exec`) with the same plan (full range, chunk
//! floor 64, `KernelChoice::Auto`, single worker), so not only the scores
//! but the exact per-kernel subject counts must agree. A divergence here
//! means a path grew a private executor again.

use std::sync::Arc;

use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::device::exec::StripedBackend;
use swhybrid::device::task::TaskSpec;
use swhybrid::exec::master::MasterConfig;
use swhybrid::exec::net::{run_slave_with, MasterServer, NetConfig};
use swhybrid::exec::policy::Policy;
use swhybrid::seq::sequence::EncodedSequence;
use swhybrid::seq::synth::{paper_database, QueryOrder, QuerySetSpec};
use swhybrid::seq::Alphabet;
use swhybrid::serve::{QueryService, ServiceConfig};
use swhybrid::simd::search::{search_arena, DatabaseSearch, Hit, SearchConfig};
use swhybrid::simd::{materialize_hits, KernelStats, PreparedQuery};
use swhybrid::store::{build_store, Store};

const TOP_N: usize = 8;

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

/// The shared fixture: a synthetic database, three queries, and a `.swdb`
/// store built from the database in a temp dir.
struct Fixture {
    subjects: Vec<EncodedSequence>,
    queries: Vec<EncodedSequence>,
    store_path: std::path::PathBuf,
    dir: std::path::PathBuf,
}

impl Fixture {
    fn build(tag: &str) -> Fixture {
        let db = paper_database("dog").unwrap().generate_scaled(2013, 0.001);
        let subjects: Vec<EncodedSequence> = db.encode_all().unwrap();
        let queries: Vec<EncodedSequence> = QuerySetSpec {
            count: 3,
            min_len: 40,
            max_len: 180,
            order: QueryOrder::Ascending,
        }
        .generate(97)
        .iter()
        .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
        .collect();
        let dir =
            std::env::temp_dir().join(format!("swhybrid_oracle_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store_path = dir.join("oracle.swdb");
        build_store(&store_path, "dog-oracle", &subjects).expect("build store");
        Fixture {
            subjects,
            queries,
            store_path,
            dir,
        }
    }

    fn snapshot(&self) -> swhybrid::seq::DbSnapshot {
        Store::open(&self.store_path)
            .and_then(Store::into_snapshot)
            .expect("open store")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Path A: the one-shot scan — per-query hit table and kernel counters,
/// computed with the default config (1 worker, chunk floor, `Auto`
/// dispatch). This is the oracle the other two paths are held to.
fn one_shot(fx: &Fixture) -> Vec<(Vec<Hit>, KernelStats)> {
    let scoring = scoring();
    fx.queries
        .iter()
        .map(|q| {
            let cfg = SearchConfig {
                top_n: TOP_N,
                ..SearchConfig::default()
            };
            let out = DatabaseSearch::new(&q.codes, &scoring, cfg).run(&fx.subjects);
            (out.hits, out.stats)
        })
        .collect()
}

/// The store must be a faithful stand-in for the FASTA-encoded database:
/// an arena scan over the memory-mapped snapshot yields the same table
/// and counters as the in-memory one-shot.
#[test]
fn store_arena_scan_matches_one_shot() {
    let fx = Fixture::build("arena");
    let oracle = one_shot(&fx);
    let snapshot = fx.snapshot();
    let scoring = scoring();
    let cfg = SearchConfig {
        top_n: TOP_N,
        ..SearchConfig::default()
    };
    for (q, (hits, stats)) in fx.queries.iter().zip(&oracle) {
        let prepared = Arc::new(PreparedQuery::new(&q.codes, &scoring, cfg.preference));
        let out = search_arena(&prepared, snapshot.arena(), 0..snapshot.len(), &cfg);
        let arena_hits = materialize_hits(&out.scored, |i| snapshot.id(i).to_string());
        assert_eq!(&arena_hits, hits, "store scan diverged for {}", q.id);
        assert_eq!(
            &out.stats, stats,
            "store kernel counters diverged for {}",
            q.id
        );
    }
}

/// Path B: the serve daemon's local PE execution. One worker, one shard,
/// no fusion, no caches — the shard plan is then exactly the one-shot's
/// (full range, chunk floor), so hits AND per-query [`KernelStats`] must
/// be identical.
#[test]
fn serve_daemon_matches_one_shot() {
    let fx = Fixture::build("serve");
    let oracle = one_shot(&fx);
    let svc = QueryService::with_snapshot(
        fx.snapshot(),
        scoring(),
        ServiceConfig {
            workers: 1,
            shards: 1,
            cache_capacity: 0,
            prepared_capacity: 0,
            fusion: 1,
            adjustment: false,
            policy: Policy::SelfScheduling,
            ..ServiceConfig::default()
        },
    );
    for (q, (hits, stats)) in fx.queries.iter().zip(&oracle) {
        let reply = svc
            .search_blocking(q.codes.clone(), TOP_N, 1)
            .expect("serve query");
        assert!(!reply.cached && !reply.cancelled);
        assert_eq!(&reply.hits, hits, "serve hits diverged for {}", q.id);
        assert_eq!(
            &reply.kernels, stats,
            "serve kernel counters diverged for {}",
            q.id
        );
    }
    svc.shutdown();
}

/// Path C: the master/slave TCP pair. One slave, adjustment off — every
/// task executes exactly once through [`StripedBackend`] (which pins the
/// same single-worker / chunk-floor config), so the per-query tables
/// recovered from the merged hit list match the oracle, and the
/// wire-merged kernel counters equal the sum of the per-query oracles.
#[test]
fn master_slave_pair_matches_one_shot() {
    let fx = Fixture::build("net");
    let oracle = one_shot(&fx);
    let scoring = scoring();

    let db_residues: u64 = fx.subjects.iter().map(|s| s.len() as u64).sum();
    let specs: Vec<TaskSpec> = fx
        .queries
        .iter()
        .enumerate()
        .map(|(id, q)| TaskSpec {
            id,
            query_len: q.len(),
            queries: 1,
            db_residues,
            db_sequences: fx.subjects.len(),
        })
        .collect();

    let net = NetConfig {
        register_timeout: Some(std::time::Duration::from_secs(30)),
        ..NetConfig::default()
    };
    let server = MasterServer::bind_with(
        "127.0.0.1:0",
        MasterConfig {
            policy: Policy::SelfScheduling,
            adjustment: false,
            dispatch: Default::default(),
        },
        1,
        net.clone(),
    )
    .expect("bind master");
    let addr = server.local_addr().expect("local addr").to_string();

    let queries = fx.queries.clone();
    let subjects = fx.subjects.clone();
    let slave_scoring = scoring.clone();
    let slave_net = net.clone();
    let slave = std::thread::spawn(move || {
        let backend = StripedBackend::default();
        // Retry until the master accepts registrations.
        for _ in 0..200 {
            match run_slave_with(
                addr.as_str(),
                "oracle-slave",
                1.0,
                &backend,
                &queries,
                &subjects,
                &slave_scoring,
                TOP_N,
                &slave_net,
            ) {
                Ok(executed) => return executed,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        panic!("slave never connected");
    });

    let outcome = server.serve(specs).expect("master serve");
    let executed = slave.join().expect("slave thread");
    assert_eq!(executed, fx.queries.len());
    assert_eq!(outcome.completed_by.len(), fx.queries.len());

    // Per-query tables: the global merge orders by (score desc,
    // query_index, db_index); restricted to one query that is exactly the
    // one-shot ranking, so a plain filter reconstructs each table.
    for (qi, (hits, _)) in oracle.iter().enumerate() {
        let table: Vec<Hit> = outcome
            .hits
            .iter()
            .filter(|qh| qh.query_index == qi)
            .map(|qh| qh.hit.clone())
            .collect();
        assert_eq!(&table, hits, "distributed hits diverged for query {qi}");
    }

    // With one slave and no replication every task completes exactly once,
    // so the wire-merged counters are the sum of the per-query oracles.
    let mut expected = KernelStats::default();
    for (_, stats) in &oracle {
        expected.merge(stats);
    }
    assert_eq!(
        outcome.kernels, expected,
        "wire-merged kernel counters diverged"
    );
}
