//! Integration test: the paper's Fig. 5 worked example, end to end.
//!
//! 4 PEs (one GPU exactly 6× faster than three SSE cores), 20 tasks that
//! take 1 s each on the GPU, PSS policy, negligible communication time:
//! the application finishes at **14 s with** the workload adjustment
//! mechanism and **18 s without** it.

use std::sync::Arc;

use swhybrid::device::cpu::CpuSseDevice;
use swhybrid::device::gpu::GpuDevice;
use swhybrid::device::perfmodel::PerfModel;
use swhybrid::device::task::{DeviceModel, TaskSpec};
use swhybrid::exec::platform::PlatformBuilder;
use swhybrid::exec::policy::Policy;
use swhybrid::exec::sim::SimPe;
use swhybrid::exec::trace::SegmentEnd;

fn flat_model(gcups: f64) -> PerfModel {
    PerfModel {
        peak_gcups: gcups,
        startup_seconds: 0.0,
        transfer_bytes_per_sec: None,
        query_ramp: 0.0,
        db_fill: 0.0,
    }
}

fn platform(adjustment: bool) -> PlatformBuilder {
    let gpu: Arc<dyn DeviceModel> = Arc::new(GpuDevice::with_model("GPU1", flat_model(6.0)));
    let mut b = PlatformBuilder::new()
        .pe(SimPe::new("GPU1", gpu))
        .policy(Policy::pss_default())
        .adjustment(adjustment)
        .comm_latency(0.0);
    for i in 1..=3 {
        let sse: Arc<dyn DeviceModel> =
            Arc::new(CpuSseDevice::with_model(format!("SSE{i}"), flat_model(1.0)));
        b = b.pe(SimPe::new(format!("SSE{i}"), sse));
    }
    b
}

fn tasks() -> Vec<TaskSpec> {
    (0..20)
        .map(|id| TaskSpec {
            id,
            query_len: 1000,
            queries: 1,
            db_residues: 6_000_000, // 6 Gcells: 1 s at 6 GCUPS
            db_sequences: 1_000,
        })
        .collect()
}

#[test]
fn with_adjustment_total_time_is_14s() {
    let out = platform(true).run(tasks());
    assert!(
        (out.seconds() - 14.0).abs() < 0.01,
        "expected 14 s, got {}",
        out.seconds()
    );
    // Every one of the 20 tasks completed exactly once.
    let completed: usize = out.report.per_pe.iter().map(|p| p.tasks_completed).sum();
    assert_eq!(completed, 20);
    // The mechanism produced at least one cancelled replica (t20's losers).
    let cancelled = out
        .report
        .trace
        .segments
        .iter()
        .filter(|s| s.end_kind == SegmentEnd::Cancelled)
        .count();
    assert!(cancelled >= 1, "trace: {:?}", out.report.trace.segments);
}

#[test]
fn without_adjustment_total_time_is_18s() {
    let out = platform(false).run(tasks());
    assert!(
        (out.seconds() - 18.0).abs() < 0.01,
        "expected 18 s, got {}",
        out.seconds()
    );
    // No replication ever happens without the mechanism.
    assert_eq!(out.report.duplicated_cells, 0.0);
    assert!(out
        .report
        .trace
        .segments
        .iter()
        .all(|s| s.end_kind == SegmentEnd::Completed));
}

#[test]
fn gpu_executes_the_lions_share() {
    let out = platform(true).run(tasks());
    let gpu = &out.report.per_pe[0];
    assert_eq!(gpu.name, "GPU1");
    // Fig. 5a: GPU1 completes t1, t5–t10, t14–t19 and the t20 replica = 14.
    assert_eq!(gpu.tasks_completed, 14, "report: {:?}", out.report.per_pe);
    for sse in &out.report.per_pe[1..] {
        assert_eq!(sse.tasks_completed, 2);
    }
}
