//! Cross-kernel equivalence: every inter-sequence lane width (portable,
//! SSE, AVX2; i8 and i16) must agree with the scalar Gotoh oracle, and a
//! database search must return bit-identical rankings under every
//! `KernelChoice`, thread count, and scan order.

use proptest::prelude::*;
use swhybrid::align::score_only::sw_score_affine;
use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::seq::sequence::EncodedSequence;
use swhybrid::seq::{Alphabet, DbArena};
use swhybrid::simd::engine::{EnginePreference, KernelStats, PreparedQuery};
use swhybrid::simd::search::{DatabaseSearch, KernelChoice, SearchConfig};
use swhybrid::simd::{interseq, interseq_avx2, interseq_sse};

fn protein_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn scoring_strategy() -> impl Strategy<Value = Scoring> {
    (1i32..=14, 1i32..=4, prop::bool::ANY).prop_map(|(open, extend, blosum50)| Scoring {
        matrix: if blosum50 {
            SubstMatrix::blosum50()
        } else {
            SubstMatrix::blosum62()
        },
        gap: GapModel::Affine { open, extend },
    })
}

fn encode_db(subjects: &[Vec<u8>]) -> Vec<EncodedSequence> {
    subjects
        .iter()
        .enumerate()
        .map(|(i, codes)| EncodedSequence {
            id: format!("s{i}"),
            codes: codes.clone(),
            alphabet: Alphabet::Protein,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full fallback chain (i8 → i16 → scalar) returns the oracle
    /// score for every subject, whichever SIMD family backs the passes.
    #[test]
    fn scores_arena_matches_scalar_oracle(
        query in protein_codes(100),
        subjects in prop::collection::vec(protein_codes(120), 1..40),
        scoring in scoring_strategy(),
    ) {
        let db = encode_db(&subjects);
        let arena = DbArena::from_encoded(&db);
        let expect: Vec<i32> = subjects
            .iter()
            .map(|s| sw_score_affine(&query, s, &scoring).score)
            .collect();
        for pref in [EnginePreference::Auto, EnginePreference::Portable] {
            let prepared = PreparedQuery::new(&query, &scoring, pref);
            let mut stats = KernelStats::default();
            let got = interseq::scores_arena(&prepared, &arena, 0..arena.len(), &mut stats);
            prop_assert_eq!(&got, &expect, "preference {:?}", pref);
            prop_assert_eq!(stats.interseq_total(), subjects.len() as u64);
        }
    }

    /// Each vectorized lane width individually agrees with the oracle on
    /// every job it resolves (None = saturated, checked by the chain law).
    #[test]
    fn every_lane_width_matches_oracle(
        query in protein_codes(90),
        subjects in prop::collection::vec(protein_codes(110), 1..40),
        scoring in scoring_strategy(),
    ) {
        let db = encode_db(&subjects);
        let arena = DbArena::from_encoded(&db);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared = PreparedQuery::new(&query, &scoring, EnginePreference::Auto);
        let passes: [(&str, Option<Vec<Option<i32>>>); 4] = [
            ("sse_i8", interseq_sse::pass_i8(&prepared, &arena, &jobs)),
            ("sse_i16", interseq_sse::pass_i16(&prepared, &arena, &jobs)),
            ("avx2_i8", interseq_avx2::pass_i8(&prepared, &arena, &jobs)),
            ("avx2_i16", interseq_avx2::pass_i16(&prepared, &arena, &jobs)),
        ];
        for (name, pass) in passes {
            let Some(results) = pass else { continue };
            prop_assert_eq!(results.len(), subjects.len());
            for (s, r) in subjects.iter().zip(results) {
                if let Some(score) = r {
                    let expect = sw_score_affine(&query, s, &scoring).score;
                    prop_assert_eq!(score, expect, "{} lane", name);
                }
            }
        }
    }

    /// A database search returns bit-identical hits under every kernel
    /// choice × thread count × scan order × engine family.
    #[test]
    fn database_search_identical_across_kernel_choices(
        query in protein_codes(80),
        subjects in prop::collection::vec(protein_codes(150), 1..60),
        scoring in scoring_strategy(),
        threads in 1usize..4,
        chunk_size in 1usize..40,
    ) {
        let db = encode_db(&subjects);
        let baseline = DatabaseSearch::new(
            &query,
            &scoring,
            SearchConfig {
                top_n: db.len(),
                kernel: KernelChoice::Striped,
                ..Default::default()
            },
        )
        .run(&db);
        for pref in [EnginePreference::Auto, EnginePreference::Portable] {
            for kernel in [KernelChoice::Striped, KernelChoice::InterSeq, KernelChoice::Auto] {
                for sort_by_length in [false, true] {
                    for prefetch in [false, true] {
                        let got = DatabaseSearch::new(
                            &query,
                            &scoring,
                            SearchConfig {
                                threads,
                                top_n: db.len(),
                                chunk_size,
                                preference: pref,
                                kernel,
                                sort_by_length,
                                prefetch,
                            },
                        )
                        .run(&db);
                        prop_assert_eq!(
                            &got.hits, &baseline.hits,
                            "kernel {:?} pref {:?} sorted {} threads {} prefetch {}",
                            kernel, pref, sort_by_length, threads, prefetch
                        );
                    }
                }
            }
        }
    }
}

/// Exact i8 boundary: with match = +1 a 127-residue self-match scores
/// exactly `i8::MAX`. The i8 pass cannot distinguish that from overflow,
/// so it must report saturation and the i16 retry must return exactly 127.
#[test]
fn i8_exact_boundary_saturates_and_retries_exactly() {
    let scoring = Scoring {
        matrix: SubstMatrix::match_mismatch(Alphabet::Protein, 1, -4),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let query: Vec<u8> = vec![3u8; 127];
    // The match run ends mid-sequence: a mismatching tail after it.
    let mut subject = query.clone();
    subject.extend(vec![7u8; 40]);
    let expect = sw_score_affine(&query, &subject, &scoring).score;
    assert_eq!(expect, 127, "constructed to land exactly on i8::MAX");

    let db = encode_db(&[subject]);
    let arena = DbArena::from_encoded(&db);
    for pref in [EnginePreference::Auto, EnginePreference::Portable] {
        let prepared = PreparedQuery::new(&query, &scoring, pref);
        let mut stats = KernelStats::default();
        let got = interseq::scores_arena(&prepared, &arena, 0..1, &mut stats);
        assert_eq!(got, vec![127], "preference {pref:?}");
        assert_eq!(
            stats.interseq_i8, 0,
            "a best of exactly i8::MAX must not resolve in the i8 pass"
        );
        assert_eq!(stats.interseq_i16 + stats.interseq_scalar, 1);
    }
}

/// Exact i16 boundary: 32767 = 7 × 31 × 151, so a 4681-residue self-match
/// with match = +7 scores exactly `i16::MAX` and must fall through both
/// vector passes to the exact scalar kernel.
#[test]
fn i16_exact_boundary_falls_through_to_scalar() {
    let scoring = Scoring {
        matrix: SubstMatrix::match_mismatch(Alphabet::Protein, 7, -4),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let query: Vec<u8> = vec![5u8; 4681];
    let mut subject = query.clone();
    subject.extend(vec![2u8; 60]);
    let expect = sw_score_affine(&query, &subject, &scoring).score;
    assert_eq!(expect, 32767, "constructed to land exactly on i16::MAX");

    let db = encode_db(&[subject]);
    let arena = DbArena::from_encoded(&db);
    for pref in [EnginePreference::Auto, EnginePreference::Portable] {
        let prepared = PreparedQuery::new(&query, &scoring, pref);
        let mut stats = KernelStats::default();
        let got = interseq::scores_arena(&prepared, &arena, 0..1, &mut stats);
        assert_eq!(got, vec![32767], "preference {pref:?}");
        assert_eq!(stats.interseq_i8, 0);
        assert_eq!(stats.interseq_i16, 0);
        assert_eq!(stats.interseq_scalar, 1);
    }
}

/// Saturating subjects are charged for every extra pass, identically
/// across kernel choices: actual cells exceed nominal cells, and the
/// search results still match the striped baseline exactly.
#[test]
fn saturation_accounting_identical_across_kernels() {
    let scoring = Scoring {
        matrix: SubstMatrix::match_mismatch(Alphabet::Protein, 5, -4),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let query: Vec<u8> = vec![1u8; 200]; // self-match 1000 > i8::MAX
    let mut subjects: Vec<Vec<u8>> = (0..40).map(|i| vec![(i % 20) as u8; 30]).collect();
    subjects.push(query.clone());
    let db = encode_db(&subjects);

    let mut cells = Vec::new();
    let mut hits = Vec::new();
    for kernel in [
        KernelChoice::Striped,
        KernelChoice::InterSeq,
        KernelChoice::Auto,
    ] {
        let r = DatabaseSearch::new(
            &query,
            &scoring,
            SearchConfig {
                top_n: db.len(),
                kernel,
                ..Default::default()
            },
        )
        .run(&db);
        assert!(
            r.cells > r.cells_nominal,
            "saturation retries must be charged ({kernel:?})"
        );
        cells.push((r.cells, r.cells_nominal));
        hits.push(r.hits);
    }
    // Saturation is a property of the subject, not of the kernel: the
    // actual-cells accounting agrees across all three dispatch modes.
    assert_eq!(cells[0], cells[1]);
    assert_eq!(cells[0], cells[2]);
    assert_eq!(hits[0], hits[1]);
    assert_eq!(hits[0], hits[2]);
}
