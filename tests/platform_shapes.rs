//! Integration tests asserting the evaluation's headline *shapes* (§V):
//! who wins, by roughly what factor, and where the crossovers fall.

use swhybrid::exec::platform::{PlatformBuilder, SimOutcome};
use swhybrid::exec::policy::Policy;
use swhybrid::seq::db::DbStats;
use swhybrid::seq::synth::{paper_database, paper_databases, QuerySetSpec};

fn run(db: &DbStats, gpus: usize, sse: usize, adjustment: bool) -> SimOutcome {
    let mut b = PlatformBuilder::new()
        .policy(Policy::pss_default())
        .adjustment(adjustment);
    if gpus > 0 {
        b = b.gpus(gpus);
    }
    if sse > 0 {
        b = b.sse_cores(sse);
    }
    b.run(PlatformBuilder::workload(db, &QuerySetSpec::paper(), 2013))
}

fn swissprot() -> DbStats {
    paper_database("swissprot").unwrap().full_scale_stats()
}

#[test]
fn headline_one_sse_core_takes_about_7190_seconds() {
    // §I: "reducing the execution time from 7,190 seconds (one SSE core)".
    let out = run(&swissprot(), 0, 1, true);
    assert!(
        (6800.0..7600.0).contains(&out.seconds()),
        "one-core time {}",
        out.seconds()
    );
}

#[test]
fn table3_sse_speedup_is_near_linear_for_every_database() {
    for profile in paper_databases() {
        let db = profile.full_scale_stats();
        let t1 = run(&db, 0, 1, true).seconds();
        let t4 = run(&db, 0, 4, true).seconds();
        let s4 = t1 / t4;
        assert!((3.4..4.1).contains(&s4), "{}: 4-core speedup {s4}", db.name);
    }
}

#[test]
fn table4_gpu_speedup_is_near_linear_on_swissprot() {
    let db = swissprot();
    let t1 = run(&db, 1, 0, true).seconds();
    let t2 = run(&db, 2, 0, true).seconds();
    let t4 = run(&db, 4, 0, true).seconds();
    assert!((1.8..2.1).contains(&(t1 / t2)), "2-GPU speedup {}", t1 / t2);
    assert!((3.4..4.1).contains(&(t1 / t4)), "4-GPU speedup {}", t1 / t4);
}

#[test]
fn table4_swissprot_gcups_about_double_the_small_databases() {
    // §V-A-2: for SwissProt "we were able to obtain … approximately the
    // double of GCUPS obtained when using the other databases".
    let dog = paper_database("dog").unwrap().full_scale_stats();
    let g_small = run(&dog, 4, 0, true).gcups();
    let g_big = run(&swissprot(), 4, 0, true).gcups();
    let ratio = g_big / g_small;
    assert!((1.4..2.8).contains(&ratio), "ratio {ratio}");
}

#[test]
fn table5_hybrid_beats_gpu_only_on_swissprot() {
    // The SSE contribution is decisive at 1–2 GPUs (Table V).
    let db = swissprot();
    for (gpus, sse) in [(1, 1), (1, 2), (1, 4), (2, 4)] {
        let hybrid = run(&db, gpus, sse, true);
        let gpu_only = run(&db, gpus, 0, true);
        assert!(
            hybrid.seconds() < gpu_only.seconds(),
            "{gpus}G+{sse}S {} vs {gpus}G {}",
            hybrid.seconds(),
            gpu_only.seconds()
        );
    }
    // At 4 GPUs the SSEs' ~9% capacity is offset by endgame straggler
    // costs in our calibration: a wash under the paper's file-order
    // dispatch (documented deviation), recovered by the size-aware
    // dispatch extension.
    let fifo = run(&db, 4, 4, true);
    let gpu_only = run(&db, 4, 0, true);
    assert!(
        fifo.seconds() < gpu_only.seconds() * 1.10,
        "4G+4S fifo {} vs 4G {}",
        fifo.seconds(),
        gpu_only.seconds()
    );
    let size_aware = PlatformBuilder::new()
        .gpus(4)
        .sse_cores(4)
        .policy(Policy::pss_default())
        .dispatch(swhybrid::exec::master::Dispatch::SizeAware)
        .run(PlatformBuilder::workload(&db, &QuerySetSpec::paper(), 2013));
    assert!(
        size_aware.seconds() < fifo.seconds(),
        "size-aware {} should beat fifo {}",
        size_aware.seconds(),
        fifo.seconds()
    );
}

#[test]
fn size_aware_dispatch_makes_hybrids_additive_on_small_dbs() {
    // Extension: when slow PEs take the small ready tasks, adding SSEs to
    // 4 GPUs helps on every database.
    for profile in paper_databases() {
        let db = profile.full_scale_stats();
        let w = || PlatformBuilder::workload(&db, &QuerySetSpec::paper(), 2013);
        let gpu_only = PlatformBuilder::new().gpus(4).run(w());
        let hybrid = PlatformBuilder::new()
            .gpus(4)
            .sse_cores(4)
            .dispatch(swhybrid::exec::master::Dispatch::SizeAware)
            .run(w());
        assert!(
            hybrid.seconds() <= gpu_only.seconds() * 1.02,
            "{}: size-aware hybrid {} vs 4G {}",
            db.name,
            hybrid.seconds(),
            gpu_only.seconds()
        );
    }
}

#[test]
fn fig6_adjustment_gain_is_large_for_the_biggest_hybrid() {
    // §V-B: +207.2% GCUPS for 4G+4S in the paper; our calibration lands
    // near +100% — same story, same order of magnitude.
    let db = swissprot();
    let with = run(&db, 4, 4, true).gcups();
    let without = run(&db, 4, 4, false).gcups();
    let gain = with / without - 1.0;
    assert!(gain > 0.5, "gain {gain}");
}

#[test]
fn fig6_without_adjustment_hybrid_drops_below_gpu_only() {
    // "Without this mechanism, many of the hybrid executions would not be
    // better than the GPU-only executions" (§VI).
    let db = swissprot();
    let hybrid_no_adj = run(&db, 4, 4, false).gcups();
    let gpu_only = run(&db, 4, 0, true).gcups();
    assert!(
        hybrid_no_adj < gpu_only,
        "no-adj hybrid {hybrid_no_adj} vs gpu-only {gpu_only}"
    );
}

#[test]
fn adjustment_has_negligible_impact_on_homogeneous_platforms() {
    // Fig. 6: "the load adjustment mechanism has a negligible impact when
    // the PEs are homogeneous (1, 2 and 4 GPUs)".
    let db = swissprot();
    for gpus in [1usize, 2, 4] {
        let with = run(&db, gpus, 0, true).seconds();
        let without = run(&db, gpus, 0, false).seconds();
        let delta = (with - without).abs() / without;
        assert!(delta < 0.05, "{gpus} GPUs: delta {delta}");
    }
}

#[test]
fn speedup_headline_order_of_magnitude() {
    // 7,190 s → 112 s in the paper (~64×); our calibration reaches ~39×.
    // Assert the order of magnitude, not the exact constant.
    let db = swissprot();
    let slowest = run(&db, 0, 1, true).seconds();
    let fastest = run(&db, 4, 4, true).seconds();
    let speedup = slowest / fastest;
    assert!((25.0..80.0).contains(&speedup), "speedup {speedup}");
}

#[test]
fn small_databases_make_4gpu_and_hybrid_a_wash() {
    // §V-A-3: "better results are obtained with the 4 GPUs execution for
    // the first four databases, when compared to the 4 GPUs + 4 SSEs
    // execution … because these databases are relatively small and most of
    // the work assigned for the SSEs is actually done by the GPUs, using
    // the workload adjustment mechanism". The mechanism keeps the two
    // within a few percent of each other — sometimes the hybrid edges
    // ahead, sometimes (e.g. Ensembl Rat) the GPU-only run does.
    for profile in paper_databases().into_iter().take(4) {
        let db = profile.full_scale_stats();
        let hybrid = run(&db, 4, 4, true).seconds();
        let gpu_only = run(&db, 4, 0, true).seconds();
        let rel = (hybrid - gpu_only).abs() / gpu_only;
        assert!(
            rel < 0.15,
            "{}: hybrid {hybrid} vs gpu-only {gpu_only} differ {rel:.0}%",
            db.name
        );
    }
    // SwissProt sits in the same band under file-order dispatch.
    let sw = swissprot();
    let rel = run(&sw, 4, 4, true).seconds() / run(&sw, 4, 0, true).seconds();
    assert!(rel < 1.10, "SwissProt 4G+4S/4G ratio {rel}");
}
