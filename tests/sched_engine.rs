//! Property pins on the extracted scheduling engine (`exec::sched`): the
//! Φ batch-sizing and Ω-window speed statistics must match an independent
//! transcription of the paper's formulas (the pre-refactor algorithm), and
//! the workload-adjustment state machine must keep its first-completion-
//! wins invariants for *any* platform shape and speed trace. The engine is
//! driven directly here — no pool, no simulator, no transport — under a
//! [`VirtualClock`], exactly as a new driver would hold it.

use std::collections::VecDeque;

use proptest::prelude::*;
use swhybrid::device::task::TaskSpec;
use swhybrid::exec::master::MasterConfig;
use swhybrid::exec::policy::Policy;
use swhybrid::exec::sched::{Assignment, Clock, Dispatch, Scheduler, VirtualClock};
use swhybrid::exec::stats::PeSpeedStats;
use swhybrid::exec::trace::EventKind;

/// §IV-A-2, transcribed independently of `PeSpeedStats`: the linearly
/// weighted mean of the last Ω retained samples (newest weight Ω-slot,
/// oldest weight 1), with degenerate observations dropped and the static
/// prior standing in until the first real sample.
fn reference_weighted_mean(prior: f64, omega: usize, trace: &[f64]) -> f64 {
    let kept: Vec<f64> = trace
        .iter()
        .copied()
        .filter(|g| g.is_finite() && *g >= 0.0)
        .collect();
    let window: Vec<f64> = kept
        .iter()
        .copied()
        .skip(kept.len().saturating_sub(omega))
        .collect();
    if window.is_empty() {
        return prior;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, g) in window.iter().enumerate() {
        let w = (i + 1) as f64;
        num += w * g;
        den += w;
    }
    num / den
}

/// §IV-A-2's Φ, transcribed independently of `Policy::batch_size`:
/// `round(speed / min_alive_speed)`, at least 1, where an unobserved PE is
/// represented in the fleet minimum by its static prior.
fn reference_phi(pe: usize, means: &[f64]) -> usize {
    let min_alive = means.iter().copied().fold(f64::INFINITY, f64::min);
    if !min_alive.is_finite() || min_alive <= 0.0 {
        return 1;
    }
    ((means[pe] / min_alive).round() as usize).max(1)
}

fn spec(id: usize, tenth_gcells: u64) -> TaskSpec {
    TaskSpec {
        id,
        query_len: 1000,
        queries: 1,
        db_residues: tenth_gcells * 100_000, // ×1000 query = 0.1 Gcells units
        db_sequences: 100,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Ω statistics the engine exposes are exactly the paper's formula
    /// for any trace, including degenerate samples that must be ignored.
    #[test]
    fn omega_window_mean_matches_reference(
        prior in 0.5f64..64.0,
        omega in 1usize..10,
        trace in prop::collection::vec(-5.0f64..60.0, 0..25),
    ) {
        let mut stats = PeSpeedStats::new(prior, omega);
        for (i, &g) in trace.iter().enumerate() {
            stats.observe(i as f64, g);
        }
        let expected = reference_weighted_mean(prior, omega, &trace);
        let got = stats.weighted_mean_gcups();
        prop_assert!(
            (got - expected).abs() <= 1e-12 * expected.abs().max(1.0),
            "Ω mean {} != reference {}",
            got,
            expected
        );
    }

    /// Φ batch sizes handed out by the engine match the reference formula
    /// applied to the reference means, for every PE of a randomized fleet
    /// with randomized observation traces.
    #[test]
    fn pss_batches_match_reference_phi(
        priors in prop::collection::vec(1.0f64..32.0, 1..6),
        omega in 1usize..8,
        traces in prop::collection::vec(
            prop::collection::vec(0.5f64..40.0, 0..10), 6..7),
    ) {
        let n = priors.len();
        let means: Vec<f64> = (0..n)
            .map(|pe| reference_weighted_mean(priors[pe], omega, &traces[pe]))
            .collect();
        // Engine semantics on top of Φ: a PE with no observations yet gets
        // the SS grain of 1 ("in the first allocation, the master assigns
        // one work unit for each slave").
        let expected: Vec<usize> = (0..n)
            .map(|pe| {
                if traces[pe].is_empty() {
                    1
                } else {
                    reference_phi(pe, &means)
                }
            })
            .collect();
        // Enough ready tasks that the pool never truncates a batch.
        let total: usize = expected.iter().sum::<usize>() + n;
        let specs: Vec<TaskSpec> = (0..total).map(|id| spec(id, 10)).collect();
        let mut s = Scheduler::new(
            specs,
            MasterConfig {
                policy: Policy::Pss { omega },
                adjustment: true,
                dispatch: Dispatch::FileOrder,
            },
        );
        for (pe, prior) in priors.iter().enumerate() {
            let id = s.register(format!("pe{pe}"), *prior);
            prop_assert_eq!(id, pe);
        }
        let mut now = 0.0;
        for (pe, trace) in traces.iter().take(n).enumerate() {
            for &g in trace {
                now += 1.0;
                s.notify_progress(pe, now, g);
            }
        }
        for (pe, want) in expected.iter().enumerate() {
            match s.request(pe, now) {
                Assignment::Tasks(tasks) => prop_assert_eq!(
                    tasks.len(),
                    *want,
                    "pe{} batch {:?} != Φ {}",
                    pe,
                    tasks,
                    want
                ),
                other => prop_assert!(false, "pe{} got {:?}", pe, other),
            }
        }
    }

    /// Self-scheduling is the degenerate Φ ≡ 1 for any speed history.
    #[test]
    fn ss_batches_are_always_one(
        priors in prop::collection::vec(1.0f64..32.0, 1..6),
        traces in prop::collection::vec(
            prop::collection::vec(0.5f64..40.0, 0..10), 6..7),
    ) {
        let n = priors.len();
        let specs: Vec<TaskSpec> = (0..4 * n).map(|id| spec(id, 10)).collect();
        let mut s = Scheduler::new(
            specs,
            MasterConfig {
                policy: Policy::SelfScheduling,
                adjustment: false,
                dispatch: Dispatch::FileOrder,
            },
        );
        for (pe, prior) in priors.iter().enumerate() {
            s.register(format!("pe{pe}"), *prior);
        }
        let mut now = 0.0;
        for (pe, trace) in traces.iter().take(n).enumerate() {
            for &g in trace {
                now += 1.0;
                s.notify_progress(pe, now, g);
            }
        }
        for pe in 0..n {
            match s.request(pe, now) {
                Assignment::Tasks(tasks) => prop_assert_eq!(tasks.len(), 1),
                other => prop_assert!(false, "pe{} got {:?}", pe, other),
            }
        }
    }

    /// Drive the bare engine through whole runs: whatever the platform
    /// shape and workload, exactly one winner crosses the line per task,
    /// no replica is cancelled twice, and every cancelled replica's task
    /// has a winner elsewhere.
    #[test]
    fn replication_first_completion_wins(
        speeds in prop::collection::vec(1.0f64..32.0, 2..5),
        sizes in prop::collection::vec(1u64..200, 1..20),
        omega in 1usize..8,
    ) {
        let events = drive_to_completion(&speeds, &sizes, omega);
        for task in 0..sizes.len() {
            let winners = events
                .iter()
                .filter(|e| matches!(e,
                    Kind::TaskFinished { task: t, winner: true, .. } if *t == task))
                .count();
            prop_assert_eq!(winners, 1, "task {} had {} winners", task, winners);
            for pe in 0..speeds.len() {
                let cancels = events
                    .iter()
                    .filter(|e| matches!(e,
                        Kind::ReplicaCancelled { pe: p, task: t }
                            if *p == pe && *t == task))
                    .count();
                prop_assert!(
                    cancels <= 1,
                    "replica of task {} on pe{} cancelled {} times",
                    task,
                    pe,
                    cancels
                );
            }
        }
        // Every cancelled replica lost to a winner on a different PE.
        for e in &events {
            if let Kind::ReplicaCancelled { pe, task } = e {
                prop_assert!(events.iter().any(|w| matches!(w,
                    Kind::TaskFinished { pe: p, task: t, winner: true }
                        if t == task && p != pe)));
            }
        }
        let completed = events
            .iter()
            .filter(|e| matches!(e, Kind::RunCompleted))
            .count();
        prop_assert_eq!(completed, 1);
    }
}

/// A minimal discrete-event driver over the bare [`Scheduler`] — the kind
/// any new transport would write: per-PE local queues, one running task per
/// PE, completions in virtual-time order. Returns the engine's event kinds
/// (stripped of the `TaskFinished` speed field for easy matching).
fn drive_to_completion(speeds: &[f64], sizes: &[u64], omega: usize) -> Vec<Kind> {
    let specs: Vec<TaskSpec> = sizes
        .iter()
        .enumerate()
        .map(|(id, &s)| spec(id, s))
        .collect();
    let mut s = Scheduler::new(
        specs.clone(),
        MasterConfig {
            policy: Policy::Pss { omega },
            adjustment: true,
            dispatch: Dispatch::FileOrder,
        },
    );
    let clock = VirtualClock::new();
    let n = speeds.len();
    for (pe, g) in speeds.iter().enumerate() {
        s.register(format!("pe{pe}"), *g);
    }
    // Per-PE driver state.
    let mut queue: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
    let mut running: Vec<Option<(usize, f64)>> = vec![None; n]; // (task, finish time)
    let mut done = vec![false; n];
    let mut rounds = 0usize;
    while done.iter().any(|d| !d) {
        rounds += 1;
        assert!(rounds < 100_000, "driver livelocked");
        // Idle PEs ask for work (one request per PE per round).
        for pe in 0..n {
            if done[pe] || running[pe].is_some() || !queue[pe].is_empty() {
                continue;
            }
            match s.request(pe, clock.now()) {
                Assignment::Tasks(ts) => queue[pe].extend(ts),
                Assignment::Steal { task, from } => {
                    queue[from].retain(|&t| t != task);
                    queue[pe].push_back(task);
                }
                Assignment::Replicate(t) => queue[pe].push_back(t),
                Assignment::Wait => {}
                Assignment::Done => done[pe] = true,
            }
        }
        // Start the next queued task on every free PE.
        for pe in 0..n {
            if running[pe].is_none() {
                if let Some(t) = queue[pe].pop_front() {
                    s.task_started(pe, t, clock.now());
                    let secs = specs[t].cells() as f64 / (speeds[pe] * 1e9);
                    running[pe] = Some((t, clock.now() + secs));
                }
            }
        }
        // Advance to the earliest completion and report it.
        let next = running
            .iter()
            .enumerate()
            .filter_map(|(pe, r)| r.map(|(t, at)| (at, pe, t)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        if let Some((at, pe, t)) = next {
            clock.advance_to(at);
            running[pe] = None;
            for other in s.task_finished(pe, t, clock.now(), Some(speeds[pe])) {
                if running[other].map(|(rt, _)| rt) == Some(t) {
                    running[other] = None;
                }
                queue[other].retain(|&q| q != t);
            }
        }
    }
    s.take_events().into_iter().map(|e| strip(e.kind)).collect()
}

/// Event kinds with run-specific measurements removed, so matching is
/// exact.
#[derive(Debug, Clone, PartialEq)]
enum Kind {
    TaskFinished {
        pe: usize,
        task: usize,
        winner: bool,
    },
    ReplicaCancelled {
        pe: usize,
        task: usize,
    },
    RunCompleted,
    Other,
}

fn strip(kind: EventKind) -> Kind {
    match kind {
        EventKind::TaskFinished {
            pe, task, winner, ..
        } => Kind::TaskFinished { pe, task, winner },
        EventKind::ReplicaCancelled { pe, task, .. } => Kind::ReplicaCancelled { pe, task },
        EventKind::RunCompleted => Kind::RunCompleted,
        _ => Kind::Other,
    }
}

/// Deterministic witness that the adjustment path is actually exercised:
/// a fast PE replicates the slow PE's huge task and wins, and the slow
/// PE's replica is cancelled exactly once.
#[test]
fn fast_pe_wins_replica_of_straggler_task() {
    let specs = vec![spec(0, 50), spec(1, 400)];
    let mut s = Scheduler::new(
        specs.clone(),
        MasterConfig {
            policy: Policy::SelfScheduling,
            adjustment: true,
            dispatch: Dispatch::FileOrder,
        },
    );
    let clock = VirtualClock::new();
    let fast = s.register("fast", 30.0);
    let slow = s.register("slow", 1.0);
    // Both take one task; the slow PE lands on the huge one.
    assert_eq!(s.request(fast, clock.now()), Assignment::Tasks(vec![0]));
    assert_eq!(s.request(slow, clock.now()), Assignment::Tasks(vec![1]));
    s.task_started(fast, 0, clock.now());
    s.task_started(slow, 1, clock.now());
    // The fast PE finishes its small task and comes back for more: the
    // ready queue is empty, so it replicates the straggler.
    clock.advance_to(specs[0].cells() as f64 / 30e9);
    assert!(s.task_finished(fast, 0, clock.now(), Some(30.0)).is_empty());
    assert_eq!(s.request(fast, clock.now()), Assignment::Replicate(1));
    s.task_started(fast, 1, clock.now());
    // It wins the race; the slow PE's original execution is cancelled.
    clock.advance_to(clock.now() + specs[1].cells() as f64 / 30e9);
    let cancels = s.task_finished(fast, 1, clock.now(), Some(30.0));
    assert_eq!(cancels, vec![slow]);
    assert!(s.all_finished());
    assert_eq!(s.request(fast, clock.now()), Assignment::Done);
    let events = s.take_events();
    assert!(events.iter().any(|e| matches!(
        e.kind,
        EventKind::TaskReplicated { pe, task: 1 } if pe == fast
    )));
    assert!(events.iter().any(|e| matches!(
        e.kind,
        EventKind::ReplicaCancelled { pe, task: 1, .. } if pe == slow
    )));
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskFinished { winner: true, .. }))
            .count(),
        2
    );
}
