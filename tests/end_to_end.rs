//! End-to-end integration: indexed files on disk → master/slave runtime on
//! real threads → merged hit lists, across crates.

use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::device::exec::StripedBackend;
use swhybrid::exec::master::MasterConfig;
use swhybrid::exec::policy::Policy;
use swhybrid::exec::runtime::{run_real, RealPe, RuntimeConfig};
use swhybrid::seq::fasta::{self, FastaReader};
use swhybrid::seq::index::{index_path_for, IndexedFasta, SeqIndex};
use swhybrid::seq::sequence::EncodedSequence;
use swhybrid::seq::synth::{paper_database, QueryOrder, QuerySetSpec};
use swhybrid::seq::Alphabet;

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

fn pe(name: &str) -> RealPe {
    RealPe {
        name: name.into(),
        static_gcups: 1.0,
        backend: Box::new(StripedBackend::default()),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swhybrid_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn indexed_fasta_random_access_equals_sequential_parse() {
    let dir = temp_dir("index");
    let db = paper_database("rat").unwrap().generate_scaled(21, 0.001);
    let path = dir.join("db.fasta");
    std::fs::write(&path, fasta::to_string(&db.sequences)).unwrap();

    // Index built from the file matches the records parsed sequentially.
    let sequential = FastaReader::open(&path).unwrap().read_all().unwrap();
    let mut indexed = IndexedFasta::open(&path).unwrap();
    assert_eq!(indexed.count(), sequential.len());
    assert_eq!(
        indexed.index().max_len,
        sequential.iter().map(|s| s.len()).max().unwrap() as u64
    );
    // Reverse-order access through the offsets.
    for i in (0..sequential.len()).rev() {
        assert_eq!(indexed.fetch(i).unwrap(), sequential[i]);
    }
    // The saved index file round-trips.
    let idx_path = index_path_for(&path);
    assert!(idx_path.exists());
    let loaded = SeqIndex::read_from(&mut std::io::BufReader::new(
        std::fs::File::open(idx_path).unwrap(),
    ))
    .unwrap();
    assert_eq!(&loaded, indexed.index());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn real_runtime_hits_match_direct_kernel_scores() {
    let db = paper_database("dog").unwrap().generate_scaled(31, 0.0015);
    let subjects: Vec<EncodedSequence> = db.encode_all().unwrap();
    let queries: Vec<EncodedSequence> = QuerySetSpec {
        count: 5,
        min_len: 50,
        max_len: 220,
        order: QueryOrder::Ascending,
    }
    .generate(32)
    .iter()
    .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
    .collect();

    let out = run_real(
        vec![pe("a"), pe("b")],
        &queries,
        &subjects,
        &scoring(),
        RuntimeConfig {
            master: MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            top_n: 3,
        },
    );
    assert_eq!(out.completed_by.len(), 5);
    assert!(out.completed_by.iter().all(|n| n == "a" || n == "b"));

    // Every reported hit's score equals a direct scalar computation.
    for qh in &out.hits {
        let expect = swhybrid::align::score_only::sw_score_affine(
            &queries[qh.query_index].codes,
            &subjects[qh.hit.db_index].codes,
            &scoring(),
        )
        .score;
        assert_eq!(qh.hit.score, expect);
    }
    // Merged list is sorted best-first.
    for w in out.hits.windows(2) {
        assert!(w[0].hit.score >= w[1].hit.score);
    }
}

#[test]
fn runtime_results_are_identical_across_policies_and_pe_counts() {
    let db = paper_database("mouse").unwrap().generate_scaled(41, 0.001);
    let subjects: Vec<EncodedSequence> = db.encode_all().unwrap();
    let queries: Vec<EncodedSequence> = QuerySetSpec {
        count: 4,
        min_len: 60,
        max_len: 150,
        order: QueryOrder::Descending,
    }
    .generate(42)
    .iter()
    .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
    .collect();

    let key = |pes: Vec<RealPe>, policy: Policy, adjustment: bool| {
        let out = run_real(
            pes,
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig {
                master: MasterConfig {
                    policy,
                    adjustment,
                    dispatch: Default::default(),
                },
                top_n: 4,
            },
        );
        let mut v: Vec<(usize, usize, i32)> = out
            .hits
            .iter()
            .map(|h| (h.query_index, h.hit.db_index, h.hit.score))
            .collect();
        v.sort_unstable();
        v
    };

    let reference = key(vec![pe("solo")], Policy::SelfScheduling, false);
    assert_eq!(
        key(vec![pe("a"), pe("b"), pe("c")], Policy::pss_default(), true),
        reference
    );
    assert_eq!(key(vec![pe("a"), pe("b")], Policy::Fixed, false), reference);
    assert_eq!(key(vec![pe("a"), pe("b")], Policy::WFixed, true), reference);
}
