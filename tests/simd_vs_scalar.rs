//! Property-based cross-validation: the striped SIMD engine (all widths,
//! all implementation families) must agree with the scalar Gotoh oracle on
//! arbitrary sequences, scoring schemes, and gap parameters.

use proptest::prelude::*;
use swhybrid::align::score_only::sw_score_affine;
use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::simd::engine::{EnginePreference, StripedEngine};
use swhybrid::simd::KernelScratch;

fn protein_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn scoring_strategy() -> impl Strategy<Value = Scoring> {
    (1i32..=14, 1i32..=4, prop::bool::ANY).prop_map(|(open, extend, blosum50)| Scoring {
        matrix: if blosum50 {
            SubstMatrix::blosum50()
        } else {
            SubstMatrix::blosum62()
        },
        gap: GapModel::Affine { open, extend },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn striped_engine_matches_scalar_oracle(
        query in protein_codes(120),
        subject in protein_codes(160),
        scoring in scoring_strategy(),
    ) {
        let expect = sw_score_affine(&query, &subject, &scoring).score;
        for pref in [EnginePreference::Auto, EnginePreference::Portable, EnginePreference::Simd] {
            let mut engine = StripedEngine::new(&query, &scoring, pref);
            let mut scratch = KernelScratch::new();
            prop_assert_eq!(engine.score(&subject, &mut scratch), expect, "preference {:?}", pref);
        }
    }

    #[test]
    fn score_is_symmetric(
        a in protein_codes(80),
        b in protein_codes(80),
        scoring in scoring_strategy(),
    ) {
        // Standard matrices are symmetric, so swapping the pair must not
        // change the optimal local score.
        let mut ab = StripedEngine::new(&a, &scoring, EnginePreference::Auto);
        let mut ba = StripedEngine::new(&b, &scoring, EnginePreference::Auto);
        let mut scratch = KernelScratch::new();
        prop_assert_eq!(ab.score(&b, &mut scratch), ba.score(&a, &mut scratch));
    }

    #[test]
    fn score_nonnegative_and_bounded(
        query in protein_codes(100),
        subject in protein_codes(100),
        scoring in scoring_strategy(),
    ) {
        let mut engine = StripedEngine::new(&query, &scoring, EnginePreference::Auto);
        let mut scratch = KernelScratch::new();
        let score = engine.score(&subject, &mut scratch);
        prop_assert!(score >= 0);
        // Upper bound: best diagonal score × shorter length.
        let bound = scoring.matrix.max_score() * query.len().min(subject.len()) as i32;
        prop_assert!(score <= bound, "score {} > bound {}", score, bound);
    }

    #[test]
    fn appending_residues_never_decreases_score(
        query in protein_codes(60),
        subject in protein_codes(60),
        extra in protein_codes(20),
        scoring in scoring_strategy(),
    ) {
        // A local alignment of (q, t) is still available in (q, t ++ extra).
        let mut engine = StripedEngine::new(&query, &scoring, EnginePreference::Auto);
        let mut scratch = KernelScratch::new();
        let base = engine.score(&subject, &mut scratch);
        let mut longer = subject.clone();
        longer.extend_from_slice(&extra);
        prop_assert!(engine.score(&longer, &mut scratch) >= base);
    }

    #[test]
    fn self_alignment_score_is_diagonal_sum(
        query in protein_codes(90),
        scoring in scoring_strategy(),
    ) {
        // All standard matrices have a strictly dominant diagonal on the 20
        // amino-acid codes, so the best local alignment of q with itself is
        // the full ungapped diagonal.
        let expect: i32 = query.iter().map(|&c| scoring.matrix.score(c, c)).sum();
        let mut engine = StripedEngine::new(&query, &scoring, EnginePreference::Auto);
        let mut scratch = KernelScratch::new();
        prop_assert_eq!(engine.score(&query, &mut scratch), expect);
    }
}
