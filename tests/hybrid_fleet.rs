//! Hybrid-fleet integration: real SIMD PEs and modeled accelerators (real
//! scores through the repo kernels, speed attributed from the calibrated
//! device models) run on the *same* scheduling pool, and their merged hit
//! table is byte-identical to the single-process one-shot search of the
//! same workload. This is the acceptance surface of the `--fleet` runtime:
//! heterogeneity may change who computes what and how fast the run is
//! reported to be — never what a query scores.

use swhybrid::align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid::device::task::DeviceModel;
use swhybrid::device::{FleetSpec, FpgaDevice, GpuDevice, TaskSpec};
use swhybrid::exec::runtime::{run_real, RealPe, RuntimeConfig};
use swhybrid::exec::trace::EventKind;
use swhybrid::seq::sequence::EncodedSequence;
use swhybrid::seq::synth::{paper_database, QueryOrder, QuerySetSpec};
use swhybrid::seq::Alphabet;
use swhybrid::simd::search::{DatabaseSearch, SearchConfig};

const TOP_N: usize = 5;

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

struct Fixture {
    queries: Vec<EncodedSequence>,
    subjects: Vec<EncodedSequence>,
}

impl Fixture {
    fn build() -> Fixture {
        let db = paper_database("dog").unwrap().generate_scaled(77, 0.0015);
        let subjects = db.encode_all().unwrap();
        let queries = QuerySetSpec {
            count: 6,
            min_len: 40,
            max_len: 200,
            order: QueryOrder::Shuffled,
        }
        .generate(78)
        .iter()
        .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
        .collect();
        Fixture { queries, subjects }
    }

    /// The spec the runtime derives for query `task` — what a modeled
    /// backend's speed attribution is a function of.
    fn task_spec(&self, task: usize) -> TaskSpec {
        TaskSpec {
            id: task,
            query_len: self.queries[task].len(),
            queries: 1,
            db_residues: self.subjects.iter().map(|s| s.len() as u64).sum(),
            db_sequences: self.subjects.len(),
        }
    }

    fn run_fleet(&self, spec: &str) -> swhybrid::exec::runtime::RuntimeOutcome {
        let pes: Vec<RealPe> = FleetSpec::parse(spec)
            .unwrap()
            .build()
            .into_iter()
            .map(RealPe::from)
            .collect();
        run_real(
            pes,
            &self.queries,
            &self.subjects,
            &scoring(),
            RuntimeConfig {
                top_n: TOP_N,
                ..RuntimeConfig::default()
            },
        )
    }

    /// The one-shot oracle: per-query kernel scans merged through the same
    /// canonical ranking rule the runtime uses.
    fn one_shot(&self) -> Vec<swhybrid::device::exec::QueryHit> {
        let scoring = scoring();
        swhybrid::device::exec::merge_hits(self.queries.iter().enumerate().map(|(i, q)| {
            let cfg = SearchConfig {
                top_n: TOP_N,
                ..SearchConfig::default()
            };
            (
                i,
                DatabaseSearch::new(&q.codes, &scoring, cfg)
                    .run(&self.subjects)
                    .hits,
            )
        }))
    }

    /// Per-task `TaskFinished` speeds of every PE named `name` in the run.
    fn finished_speeds(
        out: &swhybrid::exec::runtime::RuntimeOutcome,
        name: &str,
    ) -> Vec<(usize, f64)> {
        let pe_id = out
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::PeRegistered { pe, name: n } if n == name => Some(*pe),
                _ => None,
            })
            .unwrap_or_else(|| panic!("{name} never registered"));
        out.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::TaskFinished {
                    pe,
                    task,
                    measured_gcups,
                    ..
                } if pe == pe_id => Some((task, measured_gcups)),
                _ => None,
            })
            .collect()
    }
}

#[test]
fn gpu_and_sse_fleet_matches_one_shot_search() {
    let fx = Fixture::build();
    let out = fx.run_fleet("gpu:1+sse:2");
    assert_eq!(
        out.hits,
        fx.one_shot(),
        "hybrid hit table must be byte-identical to the one-shot search"
    );
    // Every task was completed by a fleet member, under its fleet name.
    assert_eq!(out.completed_by.len(), fx.queries.len());
    assert!(out
        .completed_by
        .iter()
        .all(|n| ["gpu0", "sse0", "sse1"].contains(&n.as_str())));
}

#[test]
fn modeled_pes_attribute_model_speed_real_pes_measure() {
    let fx = Fixture::build();
    let out = fx.run_fleet("gpu:1+sse:1+fpga:1");
    assert_eq!(out.hits, fx.one_shot());

    // Modeled kinds quote their calibrated device model for exactly the
    // finished task's spec — reproducible across runs.
    let gpu = GpuDevice::gtx580("gpu0");
    for (task, gcups) in Fixture::finished_speeds(&out, "gpu0") {
        assert_eq!(gcups, gpu.task_gcups(&fx.task_spec(task)));
    }
    let fpga = FpgaDevice::systolic("fpga0");
    for (task, gcups) in Fixture::finished_speeds(&out, "fpga0") {
        assert_eq!(gcups, fpga.task_gcups(&fx.task_spec(task)));
    }
    // The real SIMD PE reports a wall-clock measurement: positive, finite,
    // and (on a tiny test workload) nowhere near the accelerators' curves.
    for (_, gcups) in Fixture::finished_speeds(&out, "sse0") {
        assert!(gcups.is_finite() && gcups > 0.0);
    }
}

#[test]
fn all_modeled_fleet_still_scores_exactly() {
    // Even with no real-measurement PE in the fleet at all, every score
    // comes from the repo kernels: the model only shapes scheduling.
    let fx = Fixture::build();
    let out = fx.run_fleet("gpu:2");
    assert_eq!(out.hits, fx.one_shot());
    assert!(out.completed_by.iter().all(|n| n == "gpu0" || n == "gpu1"));
}
