//! Property-based invariants of the task execution environment: for *any*
//! platform shape, workload, policy, and adjustment setting, the schedule
//! must be complete, non-duplicative in its results, bounded by the obvious
//! serial/ideal envelopes, and deterministic.

use std::sync::Arc;

use proptest::prelude::*;
use swhybrid::device::cpu::CpuSseDevice;
use swhybrid::device::perfmodel::PerfModel;
use swhybrid::device::task::{DeviceModel, TaskSpec};
use swhybrid::exec::master::MasterConfig;
use swhybrid::exec::policy::Policy;
use swhybrid::exec::sim::{SimConfig, SimPe, SimReport, Simulator};
use swhybrid::exec::trace::SegmentEnd;

fn flat_pe(name: String, gcups: f64) -> SimPe {
    SimPe::new(
        name.clone(),
        Arc::new(CpuSseDevice::with_model(
            name,
            PerfModel {
                peak_gcups: gcups,
                startup_seconds: 0.0,
                transfer_bytes_per_sec: None,
                query_ramp: 0.0,
                db_fill: 0.0,
            },
        )) as Arc<dyn DeviceModel>,
    )
}

fn platform_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..32.0, 1..6)
}

fn workload_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Task sizes in Gcells (as multiples of 0.1 Gcells).
    prop::collection::vec(1u64..400, 1..30)
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::SelfScheduling),
        (1usize..10).prop_map(|omega| Policy::Pss { omega }),
        Just(Policy::Fixed),
        Just(Policy::WFixed),
    ]
}

fn run(speeds: &[f64], sizes: &[u64], policy: Policy, adjustment: bool) -> SimReport {
    let pes: Vec<SimPe> = speeds
        .iter()
        .enumerate()
        .map(|(i, &g)| flat_pe(format!("pe{i}"), g))
        .collect();
    let specs: Vec<TaskSpec> = sizes
        .iter()
        .enumerate()
        .map(|(id, &tenth_gcells)| TaskSpec {
            id,
            query_len: 1000,
            queries: 1,
            db_residues: tenth_gcells * 100_000, // ×1000 query = 0.1 Gcells units
            db_sequences: 100,
        })
        .collect();
    Simulator::new(
        pes,
        specs,
        SimConfig {
            master: MasterConfig {
                policy,
                adjustment,
                dispatch: Default::default(),
            },
            notify_interval: 5.0,
            comm_latency: 0.0,
        },
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_task_completes_exactly_once(
        speeds in platform_strategy(),
        sizes in workload_strategy(),
        policy in policy_strategy(),
        adjustment in prop::bool::ANY,
    ) {
        let report = run(&speeds, &sizes, policy, adjustment);
        let completed: usize = report.per_pe.iter().map(|p| p.tasks_completed).sum();
        prop_assert_eq!(completed, sizes.len());
        // Each task has exactly one Completed trace segment.
        for task in 0..sizes.len() {
            let wins = report
                .trace
                .segments
                .iter()
                .filter(|s| s.task == task && s.end_kind == SegmentEnd::Completed)
                .count();
            prop_assert_eq!(wins, 1, "task {} completed {} times", task, wins);
        }
    }

    #[test]
    fn makespan_respects_serial_and_ideal_envelopes(
        speeds in platform_strategy(),
        sizes in workload_strategy(),
        policy in policy_strategy(),
        adjustment in prop::bool::ANY,
    ) {
        let report = run(&speeds, &sizes, policy, adjustment);
        let total_cells: f64 = sizes.iter().map(|&s| s as f64 * 1e8).sum();
        let sum_rate: f64 = speeds.iter().map(|g| g * 1e9).sum();
        let min_rate: f64 = speeds.iter().fold(f64::INFINITY, |a, &b| a.min(b)) * 1e9;
        let ideal = total_cells / sum_rate;
        let serial_on_slowest = total_cells / min_rate;
        prop_assert!(
            report.makespan >= ideal - 1e-9,
            "makespan {} below ideal {}",
            report.makespan,
            ideal
        );
        prop_assert!(
            report.makespan <= serial_on_slowest + 1e-6,
            "makespan {} exceeds serial-on-slowest {}",
            report.makespan,
            serial_on_slowest
        );
    }

    #[test]
    fn adjustment_never_hurts(
        speeds in platform_strategy(),
        sizes in workload_strategy(),
        omega in 1usize..10,
    ) {
        let policy = Policy::Pss { omega };
        let with = run(&speeds, &sizes, policy, true);
        let without = run(&speeds, &sizes, policy, false);
        prop_assert!(
            with.makespan <= without.makespan + 1e-6,
            "adjustment hurt: {} > {}",
            with.makespan,
            without.makespan
        );
    }

    #[test]
    fn runs_are_deterministic(
        speeds in platform_strategy(),
        sizes in workload_strategy(),
        policy in policy_strategy(),
        adjustment in prop::bool::ANY,
    ) {
        let a = run(&speeds, &sizes, policy, adjustment);
        let b = run(&speeds, &sizes, policy, adjustment);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.trace.segments.len(), b.trace.segments.len());
        for (x, y) in a.trace.segments.iter().zip(&b.trace.segments) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn without_adjustment_no_work_is_duplicated(
        speeds in platform_strategy(),
        sizes in workload_strategy(),
        policy in policy_strategy(),
    ) {
        let report = run(&speeds, &sizes, policy, false);
        prop_assert_eq!(report.duplicated_cells, 0.0);
        let cancelled: usize = report.per_pe.iter().map(|p| p.tasks_cancelled).sum();
        prop_assert_eq!(cancelled, 0);
    }

    #[test]
    fn busy_time_never_exceeds_makespan_per_pe(
        speeds in platform_strategy(),
        sizes in workload_strategy(),
        policy in policy_strategy(),
        adjustment in prop::bool::ANY,
    ) {
        let report = run(&speeds, &sizes, policy, adjustment);
        for pe in &report.per_pe {
            prop_assert!(
                pe.busy_seconds <= report.makespan + 1e-6,
                "{} busy {} > makespan {}",
                pe.name,
                pe.busy_seconds,
                report.makespan
            );
        }
    }
}
