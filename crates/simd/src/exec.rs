//! The shard-execution layer: ONE implementation of the chunked database
//! scan, shared by every owner of a shard.
//!
//! The paper's architecture (Fig. 1) is a single task-execution environment
//! driving heterogeneous PEs; this module is that environment's inner loop.
//! Three owners drive it:
//!
//! * the one-shot `search` scan workers ([`crate::search::search_arena`] and
//!   the fused [`crate::search::search_arena_multi`]),
//! * the serve daemon's local PE threads (`swhybrid-serve`),
//! * the remote serve-mode slave executor (`core::net::slave`).
//!
//! Each owner builds a [`ShardPlan`] (which arena positions to scan, the
//! chunk size, the kernel preference, prefetch) and drives a
//! [`ShardExecutor`], which owns the per-worker [`KernelScratch`] for its
//! lifetime and implements chunk claiming, per-chunk [`KernelChoice`]
//! dispatch, solo and fused multi-query DP driving, [`KernelStats`]
//! accumulation, and the per-query top-N demux. Because the loop exists
//! once, hit tables and kernel counters are byte-identical across the three
//! transports by construction — the tri-path oracle test pins this.
//!
//! Chunk sizing is centralized here too: [`chunk_size`] enforces a floor of
//! [`chunk_floor`] = 2 × the widest kernel lane count. Below that floor the
//! `Auto` dispatcher can never fill the inter-sequence lanes, so every chunk
//! silently degrades to the striped kernel — the exact bug class PR 5 fixed
//! twice (serve default 16, slave hardcoded 16).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::engine::{KernelStats, PreparedQuery, StripedEngine};
use crate::interseq::interseq_lanes;
use crate::scratch::KernelScratch;
use crate::search::{rank_scored, Hit, KernelChoice, ScanOutput, Scored, SearchConfig};
use swhybrid_align::stats::cells;
use swhybrid_seq::arena::DbArena;

/// The minimum chunk size any scan path may use: 2 × the widest
/// inter-sequence kernel lane count (AVX2, 32 × i8). A chunk narrower than
/// this can never satisfy the `Auto` dispatcher's lane-fill guard, so every
/// `Auto` chunk silently runs striped — a performance bug with no wrong
/// answers to catch it.
pub const fn chunk_floor() -> usize {
    2 * crate::avx2::LANES_I8
}

/// The ONE chunk-size decision for every scan path. `None` yields the
/// default (the floor itself); `Some(c)` validates a caller override
/// against [`chunk_floor`] and rejects it rather than silently degrading.
pub fn chunk_size(requested: Option<usize>) -> Result<usize, String> {
    let floor = chunk_floor();
    match requested {
        None => Ok(floor),
        Some(c) if c >= floor => Ok(c),
        Some(c) => Err(format!(
            "chunk size {c} is below the floor {floor} (2 x the widest kernel \
             lane count): Auto dispatch could never fill the inter-sequence lanes"
        )),
    }
}

/// Everything an owner decides about scanning one shard: the arena slice,
/// how it is chunked, which kernel family scores each chunk, and whether to
/// issue software prefetches. The executor supplies the rest (scratch,
/// engines, counters).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Arena scan positions to cover.
    pub range: Range<usize>,
    /// Subjects per self-scheduled chunk.
    pub chunk_size: usize,
    /// Kernel dispatch: striped, inter-sequence, or adaptive.
    pub kernel: KernelChoice,
    /// Software-prefetch the next subject's residues ahead of use.
    pub prefetch: bool,
}

impl ShardPlan {
    /// Derive a plan from a [`SearchConfig`] (the search-path spelling).
    pub fn from_config(range: Range<usize>, config: &SearchConfig) -> ShardPlan {
        ShardPlan {
            range,
            chunk_size: config.chunk_size,
            kernel: config.kernel,
            prefetch: config.prefetch,
        }
    }
}

/// Should `Auto` send this chunk to the inter-sequence kernel?
///
/// The inter-sequence kernel amortises nothing when lanes cannot fill
/// (`n < 2 × LANES`), thrashes the cache when the query is long (its DP
/// state is `2 × query × LANES` bytes versus the striped kernel's
/// `2 × query`), and wastes lanes when one subject dwarfs the chunk (every
/// other lane idles while it drains — the skew test compares the longest
/// subject against the chunk's mean length).
fn auto_picks_interseq(prepared: &PreparedQuery, arena: &DbArena, chunk: Range<usize>) -> bool {
    /// Above this query length the striped kernel's compact DP state wins.
    const MAX_INTERSEQ_QUERY: usize = 2048;
    /// Minimum lane utilisation (as 1/MAX_SKEW). Lanes refill from the
    /// subject queue, so a long outlier only hurts once the queue drains
    /// and the other lanes idle behind it: the wasted fraction of the
    /// chunk is bounded by `max_len·lanes / total`. Only when that ratio
    /// is extreme (one subject dominating the whole chunk) does the
    /// striped kernel's sequential scan win back the difference.
    const MAX_SKEW: u64 = 8;
    let lanes = interseq_lanes(prepared.preference()) as u64;
    if (chunk.len() as u64) < 2 * lanes {
        return false;
    }
    if prepared.query_len() > MAX_INTERSEQ_QUERY {
        return false;
    }
    let total = arena.range_residues(chunk.clone());
    if total == 0 {
        return false;
    }
    let max_len = chunk.clone().map(|p| arena.seq_len(p)).max().unwrap_or(0) as u64;
    max_len * lanes <= MAX_SKEW * total
}

/// One worker of the shard-execution layer. Owns the worker's
/// [`KernelScratch`] for its lifetime — per-PE, not per-chunk, so chunk
/// N+1 finds chunk N's buffers warm — and implements the only chunk-claim
/// loops in the workspace ([`ShardExecutor::solo`] and
/// [`ShardExecutor::fused`]).
pub struct ShardExecutor {
    scratch: KernelScratch,
}

impl Default for ShardExecutor {
    fn default() -> Self {
        ShardExecutor::new()
    }
}

impl ShardExecutor {
    /// Fresh executor with empty scratch; buffers size themselves
    /// high-water on first use.
    pub fn new() -> Self {
        ShardExecutor {
            scratch: KernelScratch::new(),
        }
    }

    /// Wrap an existing scratch (a caller that owns one per thread keeps
    /// its warm buffers across executors).
    pub fn from_scratch(scratch: KernelScratch) -> Self {
        ShardExecutor { scratch }
    }

    /// Recover the scratch (and its warm buffers) from a finished executor.
    pub fn into_scratch(self) -> KernelScratch {
        self.scratch
    }

    /// THE solo chunk loop: claim chunks of `plan.range` from the shared
    /// `cursor`, dispatch each per `plan.kernel`, and accumulate this
    /// worker's scored subjects and kernel counters. `top_n` bounds the
    /// local list (only the global top-N can survive the merge).
    pub fn solo(
        &mut self,
        prepared: &Arc<PreparedQuery>,
        arena: &DbArena,
        plan: &ShardPlan,
        cursor: &AtomicUsize,
        top_n: usize,
    ) -> (Vec<Scored>, KernelStats) {
        let range = &plan.range;
        let chunk_size = plan.chunk_size;
        let scratch = &mut self.scratch;
        let mut engine = StripedEngine::with_prepared(Arc::clone(prepared));
        let mut stats = KernelStats::default();
        let mut local: Vec<Scored> = Vec::new();
        loop {
            let start = range.start + cursor.fetch_add(chunk_size, Ordering::Relaxed);
            if start >= range.end {
                break;
            }
            let end = (start + chunk_size).min(range.end);
            let use_interseq = match plan.kernel {
                KernelChoice::Striped => false,
                KernelChoice::InterSeq => true,
                KernelChoice::Auto => auto_picks_interseq(prepared, arena, start..end),
            };
            if use_interseq {
                stats.chunks_interseq += 1;
                let scores = crate::interseq::scores_arena_with(
                    prepared,
                    arena,
                    start..end,
                    &mut stats,
                    scratch,
                    plan.prefetch,
                );
                for (offset, &score) in scores.iter().enumerate() {
                    let pos = start + offset;
                    local.push(Scored {
                        db_index: arena.db_index(pos),
                        score,
                        subject_len: arena.seq_len(pos),
                    });
                }
            } else {
                stats.chunks_striped += 1;
                for pos in start..end {
                    // Pull the next subject's residues towards L1 while this
                    // one is scored.
                    if plan.prefetch && pos + 1 < end {
                        crate::scratch::prefetch_read(arena.residues(pos + 1));
                    }
                    let score = engine.score(arena.residues(pos), scratch);
                    local.push(Scored {
                        db_index: arena.db_index(pos),
                        score,
                        subject_len: arena.seq_len(pos),
                    });
                }
            }
            // Keep the per-worker list bounded: only the global top-N can
            // survive the merge anyway.
            if local.len() > 4 * top_n.max(16) {
                rank_scored(&mut local);
                local.truncate(2 * top_n.max(8));
            }
        }
        stats.merge(&engine.stats());
        (local, stats)
    }

    /// THE fused chunk loop: claim chunks from the shared cursor and score
    /// every batch query against each chunk before releasing it. The
    /// per-query work inside one chunk mirrors [`ShardExecutor::solo`]
    /// statement for statement — that is what keeps fused outputs
    /// byte-identical to solo scans. Returns one `(scored, stats)` pair per
    /// batch entry.
    pub fn fused(
        &mut self,
        batch: &[(Arc<PreparedQuery>, usize)],
        arena: &DbArena,
        plan: &ShardPlan,
        cursor: &AtomicUsize,
    ) -> Vec<(Vec<Scored>, KernelStats)> {
        let range = &plan.range;
        let chunk_size = plan.chunk_size;
        let scratch = &mut self.scratch;
        let mut engines: Vec<StripedEngine> = batch
            .iter()
            .map(|(prepared, _)| StripedEngine::with_prepared(Arc::clone(prepared)))
            .collect();
        let mut stats: Vec<KernelStats> = vec![KernelStats::default(); batch.len()];
        let mut locals: Vec<Vec<Scored>> = vec![Vec::new(); batch.len()];
        // Per-chunk lists, hoisted out of the claim loop and reused (cleared
        // each chunk) so the steady-state loop allocates nothing.
        let mut picks_interseq: Vec<bool> = Vec::with_capacity(batch.len());
        let mut fused: Vec<usize> = Vec::with_capacity(batch.len());
        let mut fused_batch: Vec<&PreparedQuery> = Vec::with_capacity(batch.len());
        let mut fused_stats: Vec<KernelStats> = Vec::with_capacity(batch.len());
        loop {
            let start = range.start + cursor.fetch_add(chunk_size, Ordering::Relaxed);
            if start >= range.end {
                break;
            }
            let end = (start + chunk_size).min(range.end);
            // Decide every query's kernel for this chunk up front, then run
            // all the inter-sequence queries through ONE fused pass while
            // the chunk is hot: the per-column score gather is shared across
            // the batch and each query's DP loop runs over the
            // already-filled lane buffer. Per query this is byte-identical
            // to its solo `scores_arena` call.
            picks_interseq.clear();
            picks_interseq.extend(batch.iter().map(|(prepared, _)| match plan.kernel {
                KernelChoice::Striped => false,
                KernelChoice::InterSeq => true,
                KernelChoice::Auto => auto_picks_interseq(prepared, arena, start..end),
            }));
            fused.clear();
            fused.extend((0..batch.len()).filter(|&k| picks_interseq[k]));
            fused_batch.clear();
            fused_batch.extend(fused.iter().map(|&k| &*batch[k].0));
            fused_stats.clear();
            fused_stats.resize(fused.len(), KernelStats::default());
            // The fused pass folds in first (its scores borrow `scratch`),
            // then the striped queries run; per-query work and counters are
            // the same either way because each query takes exactly one of
            // the paths.
            {
                let fused_scores = crate::interseq::scores_arena_multi_with(
                    &fused_batch,
                    arena,
                    start..end,
                    &mut fused_stats,
                    scratch,
                    plan.prefetch,
                );
                for ((&k, scores), chunk_stats) in fused.iter().zip(fused_scores).zip(&fused_stats)
                {
                    stats[k].chunks_interseq += 1;
                    stats[k].merge(chunk_stats);
                    for (offset, &score) in scores.iter().enumerate() {
                        let pos = start + offset;
                        locals[k].push(Scored {
                            db_index: arena.db_index(pos),
                            score,
                            subject_len: arena.seq_len(pos),
                        });
                    }
                }
            }
            for (k, top_n) in batch.iter().map(|&(_, top_n)| top_n).enumerate() {
                if !picks_interseq[k] {
                    stats[k].chunks_striped += 1;
                    for pos in start..end {
                        if plan.prefetch && pos + 1 < end {
                            crate::scratch::prefetch_read(arena.residues(pos + 1));
                        }
                        let score = engines[k].score(arena.residues(pos), scratch);
                        locals[k].push(Scored {
                            db_index: arena.db_index(pos),
                            score,
                            subject_len: arena.seq_len(pos),
                        });
                    }
                }
                if locals[k].len() > 4 * top_n.max(16) {
                    rank_scored(&mut locals[k]);
                    locals[k].truncate(2 * top_n.max(8));
                }
            }
        }
        for (k, engine) in engines.iter().enumerate() {
            stats[k].merge(&engine.stats());
        }
        locals.into_iter().zip(stats).collect()
    }

    /// Scan one whole shard with this (single) worker: the entry point of
    /// the long-lived owners — serve PE threads and the remote slave — that
    /// execute one self-describing shard task at a time. Drives the fused
    /// loop over a private cursor and demuxes into per-query outputs; a
    /// one-query batch is byte-identical to a solo scan of the same range.
    pub fn execute(
        &mut self,
        batch: &[(Arc<PreparedQuery>, usize)],
        arena: &DbArena,
        plan: &ShardPlan,
    ) -> Vec<ScanOutput> {
        if batch.is_empty() {
            return Vec::new();
        }
        let cursor = AtomicUsize::new(0);
        let per_query = self.fused(batch, arena, plan, &cursor);
        demux_top_n(per_query, batch, arena, plan.range.clone())
    }
}

/// THE per-query top-N demux: rank each query's merged scored list by
/// [`rank_scored`]'s total order, truncate to that query's depth, and
/// attach the cell accounting. Every multi-query path (fused search,
/// serve PE, slave) ends here, so per-query outputs are identical across
/// decompositions.
pub(crate) fn demux_top_n(
    merged: Vec<(Vec<Scored>, KernelStats)>,
    batch: &[(Arc<PreparedQuery>, usize)],
    arena: &DbArena,
    range: Range<usize>,
) -> Vec<ScanOutput> {
    merged
        .into_iter()
        .zip(batch)
        .map(|((mut scored, stats), (prepared, top_n))| {
            rank_scored(&mut scored);
            scored.truncate(*top_n);
            ScanOutput {
                scored,
                cells: stats.cells_computed,
                cells_nominal: cells(prepared.query_len(), 1) * arena.range_residues(range.clone()),
                stats,
            }
        })
        .collect()
}

/// Materialise ranked [`Hit`]s from internal [`Scored`] records: the one
/// place identifier strings are attached (for the reported top-N only).
/// `id_of` maps a database index to its identifier — callers hold ids in
/// different shapes (encoded records, arena snapshots, store headers).
pub fn materialize_hits(scored: &[Scored], mut id_of: impl FnMut(usize) -> String) -> Vec<Hit> {
    scored
        .iter()
        .map(|s| Hit {
            db_index: s.db_index,
            id: id_of(s.db_index),
            score: s.score,
            subject_len: s.subject_len,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the floor: 2 × the widest (AVX2 32 × i8) lane count. If a wider
    /// kernel is ever added, this test forces the floor (and every default
    /// chunk size) to be revisited.
    #[test]
    fn chunk_floor_is_twice_the_widest_lane_count() {
        assert_eq!(chunk_floor(), 64);
        assert_eq!(chunk_size(None).unwrap(), 64);
        assert_eq!(chunk_size(Some(64)).unwrap(), 64);
        assert_eq!(chunk_size(Some(4096)).unwrap(), 4096);
        assert!(chunk_size(Some(63)).is_err());
        assert!(chunk_size(Some(16)).is_err());
        assert!(chunk_size(Some(0)).is_err());
    }

    #[test]
    fn search_config_validate_pins_the_floor() {
        let mut cfg = SearchConfig::default();
        assert!(cfg.validate().is_ok(), "the default must validate");
        cfg.chunk_size = chunk_floor() - 1;
        assert!(cfg.validate().is_err());
        cfg.chunk_size = chunk_floor();
        cfg.threads = 0;
        assert!(cfg.validate().is_err());
    }
}
