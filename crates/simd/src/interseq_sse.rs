//! x86-64 SSE kernels for the inter-sequence recurrence (16 × i8 and
//! 8 × i16 lanes per 128-bit register).
//!
//! One vector holds the same DP cell of up to `LANES` *different* database
//! sequences; lanes refill from the job queue as sequences finish. The
//! per-step substitution gather — each lane needs `score(query[j], c_lane)`
//! for its own residue `c_lane` — is the crux: it is done by loading each
//! lane's padded, transposed matrix row
//! ([`crate::engine::PreparedQuery::interseq_matrix`]) and running a 16 × 16
//! byte transpose (a 4-stage `punpck` network), which yields one vector per
//! *query symbol* holding that symbol's score against every lane's residue.
//! The inner DP loop then indexes this `dprofile` by `query[j]` — a single
//! aligned-width load per cell, exactly like SWIPE's score profile.
//!
//! Contract (shared with the portable pass and the AVX2 kernels): each job
//! resolves to `Some(score)` (exact) or `None` (the lane's best hit the
//! type's ceiling — recompute wider). Gap penalties are clamped into the
//! lane type the same way everywhere, so all implementations saturate
//! identically.

#![allow(unsafe_code)]

use crate::engine::PreparedQuery;
use crate::scratch::WidthBuf;
use swhybrid_seq::arena::DbArena;

/// Hot-path variant of [`pass_i8`]: results land in `buf.results`, DP rows
/// in `buf.h`/`buf.e` (reused, zero steady-state allocations). Returns
/// whether the vectorized pass ran.
pub(crate) fn pass_i8_buf(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i8>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some(matrix32) = prepared.interseq_matrix.as_deref() {
            if crate::sse::sse41_available() {
                let (goe, ext) = prepared.gap_penalties();
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::pass_i8_sse41(
                        prepared.query(),
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.h,
                        &mut buf.e,
                        &mut buf.results,
                    )
                };
                return true;
            }
        }
    }
    let _ = (prepared, arena, jobs, prefetch, buf);
    false
}

/// Run the 16 × i8 inter-sequence pass if the CPU supports SSE4.1 (needed
/// for signed-byte `max`) and the alphabet fits the padded score table.
pub fn pass_i8(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Option<i32>>> {
    let mut buf = WidthBuf::new();
    pass_i8_buf(prepared, arena, jobs, false, &mut buf).then_some(buf.results)
}

/// Hot-path variant of [`pass_i16`] (see [`pass_i8_buf`]).
pub(crate) fn pass_i16_buf(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i16>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some(matrix32) = prepared.interseq_matrix.as_deref() {
            if crate::sse::sse41_available() {
                let (goe, ext) = prepared.gap_penalties();
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::pass_i16_sse41(
                        prepared.query(),
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.h,
                        &mut buf.e,
                        &mut buf.results,
                    )
                };
                return true;
            }
        }
    }
    let _ = (prepared, arena, jobs, prefetch, buf);
    false
}

/// Run the 8 × i16 inter-sequence pass if the CPU supports SSE4.1 (for the
/// sign-extending widen of the transposed score bytes).
pub fn pass_i16(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Option<i32>>> {
    let mut buf = WidthBuf::new();
    pass_i16_buf(prepared, arena, jobs, false, &mut buf).then_some(buf.results)
}

/// Hot-path variant of [`multi_pass_i8`]: per-query results land in
/// `buf.mresults`, DP state in `buf.mh`/`buf.me`/`buf.mbest`. Returns
/// whether the fused pass ran.
pub(crate) fn multi_pass_i8_buf(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i8>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some((matrix32, goe, ext)) = super::interseq::fusable_batch(batch) {
            if crate::sse::sse41_available() {
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::multi_pass_i8_sse41(
                        batch,
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.mh,
                        &mut buf.me,
                        &mut buf.mbest,
                        &mut buf.mresults,
                    )
                };
                return true;
            }
        }
    }
    let _ = (batch, arena, jobs, prefetch, buf);
    false
}

/// Run the fused multi-query 16 × i8 pass: every query scored against
/// `jobs` in one shared lane traversal. `None` when the CPU lacks SSE4.1
/// or the batch does not share a single scoring.
pub fn multi_pass_i8(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Vec<Option<i32>>>> {
    let mut buf = WidthBuf::new();
    multi_pass_i8_buf(batch, arena, jobs, false, &mut buf).then_some(buf.mresults)
}

/// Hot-path variant of [`multi_pass_i16`] (see [`multi_pass_i8_buf`]).
pub(crate) fn multi_pass_i16_buf(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i16>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some((matrix32, goe, ext)) = super::interseq::fusable_batch(batch) {
            if crate::sse::sse41_available() {
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::multi_pass_i16_sse41(
                        batch,
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.mh,
                        &mut buf.me,
                        &mut buf.mbest,
                        &mut buf.mresults,
                    )
                };
                return true;
            }
        }
    }
    let _ = (batch, arena, jobs, prefetch, buf);
    false
}

/// Run the fused multi-query 8 × i16 pass (the rerun width for subjects
/// that saturate the i8 pass).
pub fn multi_pass_i16(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Vec<Option<i32>>>> {
    let mut buf = WidthBuf::new();
    multi_pass_i16_buf(batch, arena, jobs, false, &mut buf).then_some(buf.mresults)
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use std::arch::x86_64::*;
    use swhybrid_seq::arena::DbArena;

    pub(crate) const IDLE: usize = usize::MAX;

    /// Transpose a 16 × 16 byte matrix: `out[q]` byte `l` = `rows[l]` byte
    /// `q`. A 4-stage unpack network (8 → 16 → 32 → 64 bit granularity);
    /// all intrinsics are baseline SSE2.
    #[inline(always)]
    pub(crate) unsafe fn transpose_16x16(rows: [__m128i; 16]) -> [__m128i; 16] {
        let z = _mm_setzero_si128();
        let mut u = [z; 16]; // u[2g], u[2g+1]: rows (2g, 2g+1), cols 0-7 / 8-15
        for g in 0..8 {
            u[2 * g] = _mm_unpacklo_epi8(rows[2 * g], rows[2 * g + 1]);
            u[2 * g + 1] = _mm_unpackhi_epi8(rows[2 * g], rows[2 * g + 1]);
        }
        let mut v = [z; 16]; // row quads × col quads
        for g in 0..4 {
            v[4 * g] = _mm_unpacklo_epi16(u[4 * g], u[4 * g + 2]);
            v[4 * g + 1] = _mm_unpackhi_epi16(u[4 * g], u[4 * g + 2]);
            v[4 * g + 2] = _mm_unpacklo_epi16(u[4 * g + 1], u[4 * g + 3]);
            v[4 * g + 3] = _mm_unpackhi_epi16(u[4 * g + 1], u[4 * g + 3]);
        }
        let mut w = [z; 16]; // row octets × col pairs
        for g in 0..2 {
            for k in 0..4 {
                w[8 * g + 2 * k] = _mm_unpacklo_epi32(v[8 * g + k], v[8 * g + 4 + k]);
                w[8 * g + 2 * k + 1] = _mm_unpackhi_epi32(v[8 * g + k], v[8 * g + 4 + k]);
            }
        }
        let mut out = [z; 16];
        for k in 0..8 {
            out[2 * k] = _mm_unpacklo_epi64(w[k], w[8 + k]);
            out[2 * k + 1] = _mm_unpackhi_epi64(w[k], w[8 + k]);
        }
        out
    }

    /// Per-lane scan cursors over the arena's flat residue buffer.
    pub(crate) struct LaneCursors<const L: usize> {
        /// Index into `jobs` (or [`IDLE`]).
        pub(crate) job: [usize; L],
        /// Absolute offset of the next residue in the arena buffer.
        pub(crate) cur: [usize; L],
        /// Absolute end offset of the lane's sequence.
        pub(crate) end: [usize; L],
        pub(crate) next: usize,
        pub(crate) active: usize,
    }

    impl<const L: usize> LaneCursors<L> {
        pub(crate) fn new(arena: &DbArena, jobs: &[usize], prefetch: bool) -> Self {
            let mut lanes = LaneCursors {
                job: [IDLE; L],
                cur: [0; L],
                end: [0; L],
                next: 0,
                active: 0,
            };
            for lane in 0..L {
                lanes.assign(lane, arena, jobs, prefetch);
            }
            lanes
        }

        /// Give `lane` the next queued job (or mark it idle).
        pub(crate) fn assign(
            &mut self,
            lane: usize,
            arena: &DbArena,
            jobs: &[usize],
            prefetch: bool,
        ) {
            let was_live = self.job[lane] != IDLE;
            if self.next < jobs.len() {
                let (offset, len) = arena.span(jobs[self.next]);
                self.job[lane] = self.next;
                self.cur[lane] = offset;
                self.end[lane] = offset + len;
                self.next += 1;
                if !was_live {
                    self.active += 1;
                }
                // Hide the NEXT refill's residue fetch behind the columns
                // about to run: whichever lane retires first will start
                // reading this span at its head.
                if prefetch && self.next < jobs.len() {
                    crate::scratch::prefetch_read(arena.residues(jobs[self.next]));
                }
            } else {
                self.job[lane] = IDLE;
                if was_live {
                    self.active -= 1;
                }
            }
        }
    }

    /// Shared retire/refill + gather + advance bookkeeping, generated per
    /// lane width so the DP loop below it can stay in registers.
    ///
    /// Each invocation emits two passes from the same DP and gather blocks:
    /// the single-query `$name`, and the fused `$multi` which scores a whole
    /// query *batch* per lane traversal. The score gather (matrix-row loads
    /// plus the byte transpose) depends only on the lane residues — never on
    /// the query — so the fused pass builds `dprofile` once per column and
    /// runs every query's DP block over it. Per query the instruction
    /// sequence is identical to `$name`, which is what keeps fused scores
    /// byte-identical to solo passes.
    macro_rules! interseq_pass {
        (
            $name:ident, $multi:ident, $feature:literal, $elem:ty, $lanes:expr,
            |$dp_query:ident, $dp_h:ident, $dp_e:ident, $dp_best:ident,
             $dp_dprofile:ident, $dp_goe:ident, $dp_ext:ident, $dp_m:ident| $dp:block,
            |$gq:ident, $gmatrix:ident, $gcodes:ident, $ghalves:ident, $gdprofile:ident| $gather:block
        ) => {
            /// # Safety
            /// The caller must ensure the CPU supports the named feature.
            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn $name(
                query: &[u8],
                matrix32: &[i8],
                goe: i32,
                ext: i32,
                arena: &DbArena,
                jobs: &[usize],
                prefetch: bool,
                h: &mut Vec<$elem>,
                e: &mut Vec<$elem>,
                results: &mut Vec<Option<i32>>,
            ) {
                const L: usize = $lanes;
                type E = $elem;
                let m = query.len();
                debug_assert!(m >= 1);
                let buf = arena.buffer();
                let halves = matrix32.len().div_ceil(32 * 16).max(1);
                results.clear();
                results.resize(jobs.len(), None);
                // Lane-major DP state: `j * L + lane` is query prefix j of
                // that lane's comparison. Caller-owned and sized high-water:
                // clear + resize only change the length once warm.
                h.clear();
                h.resize((m + 1) * L, 0 as E);
                e.clear();
                e.resize((m + 1) * L, E::MIN);
                let mut best = [0 as E; L];
                // One vector of lane scores per query symbol (padded to 32).
                let mut dprofile = [0 as E; 32 * L];
                let mut lanes = LaneCursors::<L>::new(arena, jobs, prefetch);

                while lanes.active > 0 {
                    // Retire finished lanes (empty subjects retire a whole
                    // run at once) and refill from the queue.
                    for lane in 0..L {
                        while lanes.job[lane] != IDLE && lanes.cur[lane] == lanes.end[lane] {
                            let b = best[lane];
                            results[lanes.job[lane]] = (b != E::MAX).then(|| b as i32);
                            for j in 0..=m {
                                h[j * L + lane] = 0;
                                e[j * L + lane] = E::MIN;
                            }
                            best[lane] = 0;
                            lanes.assign(lane, arena, jobs, prefetch);
                        }
                    }
                    if lanes.active == 0 {
                        break;
                    }

                    // One residue per live lane; idle lanes read row 0 of
                    // the score table (their results are never used).
                    let mut codes = [0usize; L];
                    for lane in 0..L {
                        if lanes.job[lane] != IDLE {
                            codes[lane] = buf[lanes.cur[lane]] as usize;
                        }
                    }

                    {
                        let $gq = query;
                        let $gmatrix = matrix32;
                        let $gcodes = &codes;
                        let $ghalves = halves;
                        let $gdprofile = &mut dprofile;
                        $gather
                    }

                    {
                        let $dp_query = query;
                        let $dp_h = &mut *h;
                        let $dp_e = &mut *e;
                        let $dp_best = &mut best;
                        let $dp_dprofile = &dprofile;
                        let $dp_goe = goe;
                        let $dp_ext = ext;
                        let $dp_m = m;
                        $dp
                    }

                    for lane in 0..L {
                        if lanes.job[lane] != IDLE {
                            lanes.cur[lane] += 1;
                        }
                    }
                }
            }

            /// Fused variant of the pass above: scores every query in
            /// `queries` against `jobs` in ONE lane traversal, reusing the
            /// per-column score gather across the batch. Returns one result
            /// vector per query, each byte-identical to running the
            /// single-query pass alone.
            ///
            /// All queries must share the scoring that produced `matrix32`,
            /// `goe` and `ext` — the safe wrappers check this.
            ///
            /// # Safety
            /// The caller must ensure the CPU supports the named feature.
            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn $multi(
                queries: &[&crate::engine::PreparedQuery],
                matrix32: &[i8],
                goe: i32,
                ext: i32,
                arena: &DbArena,
                jobs: &[usize],
                prefetch: bool,
                h: &mut Vec<Vec<$elem>>,
                e: &mut Vec<Vec<$elem>>,
                best: &mut Vec<$elem>,
                results: &mut Vec<Vec<Option<i32>>>,
            ) {
                const L: usize = $lanes;
                type E = $elem;
                let nq = queries.len();
                results.resize_with(nq, Vec::new);
                if nq == 0 {
                    return;
                }
                debug_assert!(queries.iter().all(|p| !p.query().is_empty()));
                let buf = arena.buffer();
                let halves = matrix32.len().div_ceil(32 * 16).max(1);
                for r in results.iter_mut() {
                    r.clear();
                    r.resize(jobs.len(), None);
                }
                // Per-query DP state over the SHARED lane assignment: query
                // q's `j * L + lane` is its prefix j against that lane's
                // subject. Caller-owned, reused across chunks.
                h.resize_with(nq, Vec::new);
                e.resize_with(nq, Vec::new);
                for ((hq, eq), p) in h.iter_mut().zip(e.iter_mut()).zip(queries) {
                    let rows = (p.query().len() + 1) * L;
                    hq.clear();
                    hq.resize(rows, 0 as E);
                    eq.clear();
                    eq.resize(rows, E::MIN);
                }
                // Per-query per-lane best, flattened `q * L + lane`.
                best.clear();
                best.resize(nq * L, 0 as E);
                let mut dprofile = [0 as E; 32 * L];
                let mut lanes = LaneCursors::<L>::new(arena, jobs, prefetch);

                while lanes.active > 0 {
                    // Retire finished lanes for EVERY query (the traversal
                    // is shared, so all queries finish a subject together)
                    // and refill from the queue.
                    for lane in 0..L {
                        while lanes.job[lane] != IDLE && lanes.cur[lane] == lanes.end[lane] {
                            let job = lanes.job[lane];
                            for (q, p) in queries.iter().enumerate() {
                                let b = best[q * L + lane];
                                results[q][job] = (b != E::MAX).then(|| b as i32);
                                for j in 0..=p.query().len() {
                                    h[q][j * L + lane] = 0;
                                    e[q][j * L + lane] = E::MIN;
                                }
                                best[q * L + lane] = 0;
                            }
                            lanes.assign(lane, arena, jobs, prefetch);
                        }
                    }
                    if lanes.active == 0 {
                        break;
                    }

                    // One residue per live lane; idle lanes read row 0 of
                    // the score table (their results are never used).
                    let mut codes = [0usize; L];
                    for lane in 0..L {
                        if lanes.job[lane] != IDLE {
                            codes[lane] = buf[lanes.cur[lane]] as usize;
                        }
                    }

                    // Built once per column — every query's DP loop below
                    // reads the same gathered lane scores.
                    {
                        let $gq = queries[0].query();
                        let $gmatrix = matrix32;
                        let $gcodes = &codes;
                        let $ghalves = halves;
                        let $gdprofile = &mut dprofile;
                        $gather
                    }

                    // The multi-query outer loop: each query advances one DP
                    // column over the already-filled lane buffer. The chains
                    // are independent, so the CPU overlaps their latencies.
                    for (q, p) in queries.iter().enumerate() {
                        let query = p.query();
                        let $dp_query = query;
                        let $dp_h = &mut h[q];
                        let $dp_e = &mut e[q];
                        let $dp_best = &mut best[q * L..(q + 1) * L];
                        let $dp_dprofile = &dprofile;
                        let $dp_goe = goe;
                        let $dp_ext = ext;
                        let $dp_m = query.len();
                        $dp
                    }

                    for lane in 0..L {
                        if lanes.job[lane] != IDLE {
                            lanes.cur[lane] += 1;
                        }
                    }
                }
            }
        };
    }
    pub(crate) use interseq_pass;

    interseq_pass!(
        pass_i8_sse41,
        multi_pass_i8_sse41,
        "sse4.1",
        i8,
        16,
        |query, h, e, best, dprofile, goe, ext, m| {
            let v_goe = _mm_set1_epi8(goe.clamp(i8::MIN as i32, i8::MAX as i32) as i8);
            let v_ext = _mm_set1_epi8(ext.clamp(i8::MIN as i32, i8::MAX as i32) as i8);
            let v_zero = _mm_setzero_si128();
            let mut v_f = _mm_set1_epi8(i8::MIN);
            let mut v_diag = v_zero;
            let mut v_best = _mm_loadu_si128(best.as_ptr() as *const __m128i);
            for j in 1..=m {
                let off = j * 16;
                let v_h_old = _mm_loadu_si128(h.as_ptr().add(off) as *const __m128i);
                let v_e_old = _mm_loadu_si128(e.as_ptr().add(off) as *const __m128i);
                let v_e =
                    _mm_max_epi8(_mm_subs_epi8(v_h_old, v_goe), _mm_subs_epi8(v_e_old, v_ext));
                let v_s = _mm_loadu_si128(
                    dprofile
                        .as_ptr()
                        .add(*query.get_unchecked(j - 1) as usize * 16)
                        as *const __m128i,
                );
                let mut v_v = _mm_adds_epi8(v_diag, v_s);
                v_v = _mm_max_epi8(v_v, v_e);
                v_v = _mm_max_epi8(v_v, v_f);
                v_v = _mm_max_epi8(v_v, v_zero);
                _mm_storeu_si128(h.as_mut_ptr().add(off) as *mut __m128i, v_v);
                _mm_storeu_si128(e.as_mut_ptr().add(off) as *mut __m128i, v_e);
                v_best = _mm_max_epi8(v_best, v_v);
                v_f = _mm_max_epi8(_mm_subs_epi8(v_v, v_goe), _mm_subs_epi8(v_f, v_ext));
                v_diag = v_h_old;
            }
            _mm_storeu_si128(best.as_mut_ptr() as *mut __m128i, v_best);
        },
        |_query, matrix32, codes, halves, dprofile| {
            for half in 0..halves {
                let mut rows = [_mm_setzero_si128(); 16];
                for lane in 0..16 {
                    rows[lane] = _mm_loadu_si128(
                        matrix32.as_ptr().add(codes[lane] * 32 + half * 16) as *const __m128i,
                    );
                }
                let t = transpose_16x16(rows);
                for (q, tq) in t.iter().enumerate() {
                    _mm_storeu_si128(
                        dprofile.as_mut_ptr().add((half * 16 + q) * 16) as *mut __m128i,
                        *tq,
                    );
                }
            }
        }
    );

    interseq_pass!(
        pass_i16_sse41,
        multi_pass_i16_sse41,
        "sse4.1",
        i16,
        8,
        |query, h, e, best, dprofile, goe, ext, m| {
            let v_goe = _mm_set1_epi16(goe.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
            let v_ext = _mm_set1_epi16(ext.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
            let v_zero = _mm_setzero_si128();
            let mut v_f = _mm_set1_epi16(i16::MIN);
            let mut v_diag = v_zero;
            let mut v_best = _mm_loadu_si128(best.as_ptr() as *const __m128i);
            for j in 1..=m {
                let off = j * 8;
                let v_h_old = _mm_loadu_si128(h.as_ptr().add(off) as *const __m128i);
                let v_e_old = _mm_loadu_si128(e.as_ptr().add(off) as *const __m128i);
                let v_e = _mm_max_epi16(
                    _mm_subs_epi16(v_h_old, v_goe),
                    _mm_subs_epi16(v_e_old, v_ext),
                );
                let v_s = _mm_loadu_si128(
                    dprofile
                        .as_ptr()
                        .add(*query.get_unchecked(j - 1) as usize * 8)
                        as *const __m128i,
                );
                let mut v_v = _mm_adds_epi16(v_diag, v_s);
                v_v = _mm_max_epi16(v_v, v_e);
                v_v = _mm_max_epi16(v_v, v_f);
                v_v = _mm_max_epi16(v_v, v_zero);
                _mm_storeu_si128(h.as_mut_ptr().add(off) as *mut __m128i, v_v);
                _mm_storeu_si128(e.as_mut_ptr().add(off) as *mut __m128i, v_e);
                v_best = _mm_max_epi16(v_best, v_v);
                v_f = _mm_max_epi16(_mm_subs_epi16(v_v, v_goe), _mm_subs_epi16(v_f, v_ext));
                v_diag = v_h_old;
            }
            _mm_storeu_si128(best.as_mut_ptr() as *mut __m128i, v_best);
        },
        |_query, matrix32, codes, halves, dprofile| {
            // 8 live rows (+ 8 dummies) through the byte transpose, then
            // sign-extend each output's low 8 bytes to 8 × i16.
            for half in 0..halves {
                let mut rows = [_mm_setzero_si128(); 16];
                for lane in 0..8 {
                    rows[lane] = _mm_loadu_si128(
                        matrix32.as_ptr().add(codes[lane] * 32 + half * 16) as *const __m128i,
                    );
                }
                let t = transpose_16x16(rows);
                for (q, tq) in t.iter().enumerate() {
                    let wide = _mm_cvtepi8_epi16(*tq);
                    _mm_storeu_si128(
                        dprofile.as_mut_ptr().add((half * 16 + q) * 8) as *mut __m128i,
                        wide,
                    );
                }
            }
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EnginePreference;
    use crate::interseq::pass_portable;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
    use swhybrid_seq::sequence::EncodedSequence;
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_subjects(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| EncodedSequence {
                id: format!("s{i}"),
                codes: (0..rng.random_range(1..max_len))
                    .map(|_| rng.random_range(0..20u8))
                    .collect(),
                alphabet: Alphabet::Protein,
            })
            .collect()
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn transpose_matches_scalar() {
        use std::arch::x86_64::*;
        if !crate::sse::sse2_available() {
            return;
        }
        let mut bytes = [[0i8; 16]; 16];
        for (r, row) in bytes.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = (r * 16 + c) as i8;
            }
        }
        unsafe {
            let mut rows = [_mm_setzero_si128(); 16];
            for (r, row) in bytes.iter().enumerate() {
                rows[r] = _mm_loadu_si128(row.as_ptr() as *const __m128i);
            }
            let t = x86::transpose_16x16(rows);
            for (q, tq) in t.iter().enumerate() {
                let mut out = [0i8; 16];
                _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, *tq);
                for (l, &val) in out.iter().enumerate() {
                    assert_eq!(val, bytes[l][q], "out[{q}][{l}]");
                }
            }
        }
    }

    fn check_pass_matches_portable<T: crate::lanes::Lane>(
        run: impl Fn(
            &crate::engine::PreparedQuery,
            &swhybrid_seq::arena::DbArena,
            &[usize],
        ) -> Option<Vec<Option<i32>>>,
        seed: u64,
    ) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let s = scoring();
        for round in 0..6 {
            let m = rng.random_range(1..120);
            let query: Vec<u8> = (0..m).map(|_| rng.random_range(0..20u8)).collect();
            let subjects = random_subjects(seed + round, 40, 90);
            let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
            let jobs: Vec<usize> = (0..arena.len()).collect();
            let prepared = crate::engine::PreparedQuery::new(&query, &s, EnginePreference::Simd);
            let Some(simd) = run(&prepared, &arena, &jobs) else {
                return; // CPU lacks the feature; nothing to compare.
            };
            let portable = pass_portable::<T>(&query, &s, &arena, &jobs);
            assert_eq!(simd, portable, "round {round} m={m}");
        }
    }

    #[test]
    fn i8_pass_matches_portable() {
        check_pass_matches_portable::<i8>(pass_i8, 301);
    }

    #[test]
    fn i16_pass_matches_portable() {
        check_pass_matches_portable::<i16>(pass_i16, 303);
    }

    #[test]
    fn i8_pass_saturation_agrees_with_portable() {
        // Self-match of a 60-residue query exceeds 127: the i8 pass must
        // flag it None exactly like the portable pass.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(307);
        let query: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        let mut subjects = random_subjects(308, 20, 40);
        subjects[9] = EncodedSequence {
            id: "self".into(),
            codes: query.clone(),
            alphabet: Alphabet::Protein,
        };
        let s = scoring();
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared = crate::engine::PreparedQuery::new(&query, &s, EnginePreference::Simd);
        let Some(simd) = pass_i8(&prepared, &arena, &jobs) else {
            return;
        };
        assert_eq!(simd[9], None, "planted self-match must saturate i8");
        assert_eq!(simd, pass_portable::<i8>(&query, &s, &arena, &jobs));
    }

    #[test]
    fn empty_and_tiny_subjects_round_through_lanes() {
        let query: Vec<u8> = vec![3, 1, 4, 1, 5];
        let s = scoring();
        let mut subjects = vec![
            EncodedSequence {
                id: "e0".into(),
                codes: vec![],
                alphabet: Alphabet::Protein,
            };
            40
        ];
        subjects[17].codes = vec![3, 1, 4];
        subjects[39].codes = vec![1];
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared = crate::engine::PreparedQuery::new(&query, &s, EnginePreference::Simd);
        let Some(simd) = pass_i8(&prepared, &arena, &jobs) else {
            return;
        };
        assert_eq!(simd, pass_portable::<i8>(&query, &s, &arena, &jobs));
        assert_eq!(simd[0], Some(0));
    }

    #[test]
    fn multi_pass_i8_matches_solo_passes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(441);
        let s = scoring();
        let mut subjects = random_subjects(442, 90, 70);
        // Different lengths on purpose: the fused pass must keep each
        // query's own DP extent while sharing the lane traversal.
        let queries: Vec<Vec<u8>> = [20usize, 47, 20, 111]
            .iter()
            .map(|&m| (0..m).map(|_| rng.random_range(0..20u8)).collect())
            .collect();
        // Plant a subject that saturates the pass for query 1 only.
        subjects[40] = EncodedSequence {
            id: "self".into(),
            codes: queries[1].clone(),
            alphabet: Alphabet::Protein,
        };
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared: Vec<_> = queries
            .iter()
            .map(|q| crate::engine::PreparedQuery::new(q, &s, EnginePreference::Simd))
            .collect();
        let batch: Vec<&crate::engine::PreparedQuery> = prepared.iter().collect();
        let Some(multi) = multi_pass_i8(&batch, &arena, &jobs) else {
            return; // CPU lacks the feature; nothing to compare.
        };
        assert_eq!(multi.len(), batch.len());
        for (q, p) in batch.iter().enumerate() {
            let solo = pass_i8(p, &arena, &jobs).unwrap();
            assert_eq!(multi[q], solo, "query {q}");
        }
        assert_eq!(multi[1][40], None, "planted self-match must saturate i8");
    }

    #[test]
    fn multi_pass_i16_matches_solo_passes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(445);
        let s = scoring();
        let mut subjects = random_subjects(446, 90, 70);
        // Different lengths on purpose: the fused pass must keep each
        // query's own DP extent while sharing the lane traversal.
        let queries: Vec<Vec<u8>> = [20usize, 47, 20, 111]
            .iter()
            .map(|&m| (0..m).map(|_| rng.random_range(0..20u8)).collect())
            .collect();
        // Plant a subject that saturates the pass for query 1 only.
        subjects[40] = EncodedSequence {
            id: "self".into(),
            codes: queries[1].iter().cycle().take(3100).copied().collect(),
            alphabet: Alphabet::Protein,
        };
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared: Vec<_> = queries
            .iter()
            .map(|q| crate::engine::PreparedQuery::new(q, &s, EnginePreference::Simd))
            .collect();
        let batch: Vec<&crate::engine::PreparedQuery> = prepared.iter().collect();
        let Some(multi) = multi_pass_i16(&batch, &arena, &jobs) else {
            return; // CPU lacks the feature; nothing to compare.
        };
        assert_eq!(multi.len(), batch.len());
        for (q, p) in batch.iter().enumerate() {
            let solo = pass_i16(p, &arena, &jobs).unwrap();
            assert_eq!(multi[q], solo, "query {q}");
        }
        let _ = &multi;
    }

    #[test]
    fn multi_pass_refuses_mixed_scorings() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(431);
        let query: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
        let cheap = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine { open: 4, extend: 1 },
        };
        let a = crate::engine::PreparedQuery::new(&query, &scoring(), EnginePreference::Simd);
        let b = crate::engine::PreparedQuery::new(&query, &cheap, EnginePreference::Simd);
        let subjects = random_subjects(432, 8, 30);
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        assert!(
            multi_pass_i8(&[&a, &b], &arena, &jobs).is_none(),
            "mixed gap penalties must refuse to fuse"
        );
    }
}
