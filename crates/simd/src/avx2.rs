//! AVX2 striped kernels: 32 × i8 and 16 × i16 lanes.
//!
//! The paper's 2013 testbed predates AVX2, but any modern deployment of the
//! system would use it, so the engine picks these kernels up automatically
//! when the CPU advertises the feature (extension; documented in
//! `DESIGN.md` §6). The algorithm is identical to [`crate::sse`]; only the
//! register width and the cross-lane shift change — `_mm256_slli_si256`
//! shifts within each 128-bit half, so the lane shift is composed from
//! `permute2x128` + `alignr`.

#![allow(unsafe_code)]

use crate::portable::{StripedOutcome, Workspace};
use crate::profile::StripedProfile;

/// Lane count of the 8-bit AVX2 kernel.
pub const LANES_I8: usize = 32;

/// Lane count of the 16-bit AVX2 kernel.
pub const LANES_I16: usize = 16;

/// Whether the AVX2 kernels can run on this machine.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Safe wrapper: 8-bit AVX2 kernel if supported. The profile must have been
/// built with [`LANES_I8`] lanes.
pub fn sw_striped_i8_avx2(
    profile: &StripedProfile<i8>,
    subject: &[u8],
    goe: i32,
    ext: i32,
    ws: &mut Workspace<i8>,
) -> Option<StripedOutcome> {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            assert_eq!(profile.lanes, LANES_I8, "profile must be 32-lane");
            // SAFETY: feature presence checked above.
            return Some(unsafe { imp::sw_i8(profile, subject, goe, ext, ws) });
        }
    }
    let _ = (profile, subject, goe, ext, ws);
    None
}

/// Safe wrapper: 16-bit AVX2 kernel if supported. The profile must have
/// been built with [`LANES_I16`] lanes.
pub fn sw_striped_i16_avx2(
    profile: &StripedProfile<i16>,
    subject: &[u8],
    goe: i32,
    ext: i32,
    ws: &mut Workspace<i16>,
) -> Option<StripedOutcome> {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            assert_eq!(profile.lanes, LANES_I16, "profile must be 16-lane");
            // SAFETY: feature presence checked above.
            return Some(unsafe { imp::sw_i16(profile, subject, goe, ext, ws) });
        }
    }
    let _ = (profile, subject, goe, ext, ws);
    None
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use std::arch::x86_64::*;

    // The 256-bit cross-half byte shift (`lshift` inside the macro below)
    // composes `permute2x128` (move the low half into the high half, zero
    // the low half) with `alignr` (stitch the two so every byte moves up by
    // `shift_bytes`). The alignr immediate must be a literal, hence the
    // macro-per-width construction.
    macro_rules! striped_avx2 {
        (
            $fname:ident, $lane_ty:ty, $lanes:expr, $shift_bytes:expr,
            $set1:ident, $adds:ident, $subs:ident, $max:ident, $cmpgt:ident
        ) => {
            /// # Safety
            /// Caller must ensure AVX2 is available.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $fname(
                profile: &StripedProfile<$lane_ty>,
                subject: &[u8],
                goe: i32,
                ext: i32,
                ws: &mut Workspace<$lane_ty>,
            ) -> StripedOutcome {
                const LANES: usize = $lanes;
                debug_assert_eq!(profile.lanes, LANES);
                let seg_len = profile.seg_len;
                let slots = seg_len * LANES;
                ws.reset(slots);
                // Raw pointers hoisted out of the DP loop: going through the
                // workspace's Vec headers each iteration would force the compiler
                // to re-load the data pointers after every store.
                let mut h_load = ws.h_load.as_mut_ptr();
                let mut h_store = ws.h_store.as_mut_ptr();
                let e_arr = ws.e.as_mut_ptr();

                let clamp =
                    |x: i32| x.clamp(<$lane_ty>::MIN as i32, <$lane_ty>::MAX as i32) as $lane_ty;
                let v_goe = $set1(clamp(goe) as _);
                let v_ext = $set1(clamp(ext) as _);
                let v_zero = _mm256_setzero_si256();
                let v_min = $set1(<$lane_ty>::MIN as _);
                // MIN in lane 0, zero elsewhere: realised by shifting MIN
                // right so only the lowest lane survives.
                let min_lane0 = {
                    let mut buf = [0 as $lane_ty; LANES];
                    buf[0] = <$lane_ty>::MIN;
                    _mm256_loadu_si256(buf.as_ptr() as *const __m256i)
                };
                let mut v_best = v_min;

                #[inline(always)]
                unsafe fn lshift(v: __m256i) -> __m256i {
                    let t = _mm256_permute2x128_si256::<0x08>(v, v);
                    _mm256_alignr_epi8::<{ 16 - $shift_bytes }>(v, t)
                }

                for &r in subject {
                    let mut v_f = v_min;
                    let mut v_h = lshift(_mm256_loadu_si256(
                        h_load.add((seg_len - 1) * LANES) as *const __m256i
                    ));

                    for k in 0..seg_len {
                        let prof = _mm256_loadu_si256(profile.vector_ptr(r, k) as *const __m256i);
                        v_h = $adds(v_h, prof);
                        let v_e = _mm256_loadu_si256(e_arr.add(k * LANES) as *const __m256i);
                        v_h = $max(v_h, v_e);
                        v_h = $max(v_h, v_f);
                        v_h = $max(v_h, v_zero);
                        v_best = $max(v_best, v_h);
                        _mm256_storeu_si256(h_store.add(k * LANES) as *mut __m256i, v_h);
                        let h_open = $subs(v_h, v_goe);
                        let v_e2 = $max(h_open, $subs(v_e, v_ext));
                        _mm256_storeu_si256(e_arr.add(k * LANES) as *mut __m256i, v_e2);
                        v_f = $max(h_open, $subs(v_f, v_ext));
                        v_h = _mm256_loadu_si256(h_load.add(k * LANES) as *const __m256i);
                    }

                    // Break condition argued in crate::portable: the carry
                    // must be dominated everywhere, not merely changeless.
                    'lazy: for _ in 0..LANES {
                        v_f = _mm256_or_si256(lshift(v_f), min_lane0);
                        let mut alive = false;
                        for k in 0..seg_len {
                            let mut vh =
                                _mm256_loadu_si256(h_store.add(k * LANES) as *const __m256i);
                            let gt = _mm256_movemask_epi8($cmpgt(v_f, vh));
                            if gt != 0 {
                                vh = $max(vh, v_f);
                                _mm256_storeu_si256(h_store.add(k * LANES) as *mut __m256i, vh);
                                let h_open = $subs(vh, v_goe);
                                let e_old =
                                    _mm256_loadu_si256(e_arr.add(k * LANES) as *const __m256i);
                                _mm256_storeu_si256(
                                    e_arr.add(k * LANES) as *mut __m256i,
                                    $max(e_old, h_open),
                                );
                                v_best = $max(v_best, vh);
                            }
                            let h_open = $subs(vh, v_goe);
                            if _mm256_movemask_epi8($cmpgt(v_f, h_open)) != 0 {
                                alive = true;
                            }
                            v_f = $max($subs(v_f, v_ext), h_open);
                        }
                        if !alive {
                            break 'lazy;
                        }
                    }

                    std::mem::swap(&mut h_load, &mut h_store);
                }

                let mut lanes_out = [0 as $lane_ty; LANES];
                _mm256_storeu_si256(lanes_out.as_mut_ptr() as *mut __m256i, v_best);
                let best = lanes_out.iter().copied().max().unwrap().max(0);
                StripedOutcome {
                    score: best as i32,
                    saturated: best == <$lane_ty>::MAX,
                }
            }
        };
    }

    striped_avx2!(
        sw_i8,
        i8,
        32,
        1,
        _mm256_set1_epi8,
        _mm256_adds_epi8,
        _mm256_subs_epi8,
        _mm256_max_epi8,
        _mm256_cmpgt_epi8
    );
    striped_avx2!(
        sw_i16,
        i16,
        16,
        2,
        _mm256_set1_epi16,
        _mm256_adds_epi16,
        _mm256_subs_epi16,
        _mm256_max_epi16,
        _mm256_cmpgt_epi16
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable::{sw_striped_portable, Workspace};
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::SubstMatrix;

    #[test]
    fn avx2_i16_matches_portable_16_lane() {
        if !avx2_available() {
            return;
        }
        let matrix = SubstMatrix::blosum62();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(301);
        let mut ws = Workspace::<i16>::new();
        for round in 0..40 {
            let ql = rng.random_range(1..200);
            let tl = rng.random_range(1..200);
            let q: Vec<u8> = (0..ql).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let profile = StripedProfile::<i16>::build_with_lanes(&q, &matrix, LANES_I16);
            let avx = sw_striped_i16_avx2(&profile, &t, 12, 2, &mut Workspace::new()).unwrap();
            let portable = sw_striped_portable(&profile, &t, 12, 2, &mut ws);
            assert_eq!(avx, portable, "round {round} ql={ql} tl={tl}");
        }
    }

    #[test]
    fn avx2_i8_matches_portable_32_lane() {
        if !avx2_available() {
            return;
        }
        let matrix = SubstMatrix::blosum62();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(303);
        let mut ws = Workspace::<i8>::new();
        for round in 0..40 {
            let ql = rng.random_range(1..200);
            let tl = rng.random_range(1..200);
            let q: Vec<u8> = (0..ql).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let profile = StripedProfile::<i8>::build_with_lanes(&q, &matrix, LANES_I8);
            let avx = sw_striped_i8_avx2(&profile, &t, 12, 2, &mut Workspace::new()).unwrap();
            let portable = sw_striped_portable(&profile, &t, 12, 2, &mut ws);
            assert_eq!(avx, portable, "round {round} ql={ql} tl={tl}");
        }
    }

    #[test]
    fn lane_count_does_not_change_scores() {
        // The striped score is lane-layout invariant: 8- and 16-lane
        // portable runs agree (this also validates build_with_lanes).
        let matrix = SubstMatrix::blosum62();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(305);
        let mut ws = Workspace::<i16>::new();
        for _ in 0..20 {
            let q: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..80).map(|_| rng.random_range(0..20u8)).collect();
            let p8 = StripedProfile::<i16>::build_with_lanes(&q, &matrix, 8);
            let p16 = StripedProfile::<i16>::build_with_lanes(&q, &matrix, 16);
            let s8 = sw_striped_portable(&p8, &t, 12, 2, &mut ws);
            let s16 = sw_striped_portable(&p16, &t, 12, 2, &mut ws);
            assert_eq!(s8.score, s16.score);
        }
    }
}
