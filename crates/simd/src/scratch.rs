//! Per-worker kernel scratch: every buffer the scan hot path needs, owned
//! once per PE thread and reused across chunks.
//!
//! The paper's dynamic workload adjustment assumes each PE's measured GCUPS
//! reflects the hardware; an allocator round-trip per claimed chunk breaks
//! that. [`KernelScratch`] therefore owns the complete working set of every
//! kernel family — the striped H/E rows ([`crate::portable::Workspace`] at
//! both widths), the inter-sequence lane state at both widths (solo and
//! fused multi-query variants), the i8→i16→scalar fallback job lists, and
//! the score output vectors — all sized high-water: each buffer grows to the
//! largest chunk/query it has seen and is then only `clear()`ed and
//! `resize()`d (a length change, never a reallocation) on reuse. After the
//! first chunk a worker claims, the steady-state scan performs **zero** heap
//! allocations per chunk (enforced by `tests/alloc_regression.rs`).
//!
//! Ownership: one `KernelScratch` per worker thread, created when the
//! worker starts (scan workers in [`crate::search`], serve PE threads, the
//! remote slave executor) and living for the worker's lifetime — per-PE,
//! not per-chunk, because the whole point is that chunk N+1 finds chunk N's
//! buffers still warm in cache.

#![allow(unsafe_code)]

use crate::lanes::Lane;
use crate::portable::Workspace;

/// Reusable buffers for one inter-sequence lane width (solo and fused
/// multi-query variants). Grown high-water, never shrunk.
pub(crate) struct WidthBuf<T: Lane> {
    /// Per-job pass results (`Some(score)` exact, `None` saturated).
    pub(crate) results: Vec<Option<i32>>,
    /// Lane-major H row, `(m + 1) * lanes`.
    pub(crate) h: Vec<T>,
    /// Lane-major E row, `(m + 1) * lanes`.
    pub(crate) e: Vec<T>,
    /// Portable pass: query-major score columns, `dim * m`.
    pub(crate) colprof: Vec<T>,
    /// Portable pass: the gathered score column, `(m + 1) * lanes`.
    pub(crate) score_col: Vec<T>,
    /// Portable pass: per-lane running best.
    pub(crate) best: Vec<T>,
    /// Portable pass: per-lane job index (or IDLE).
    pub(crate) lane_job: Vec<usize>,
    /// Portable pass: per-lane position within the subject.
    pub(crate) lane_pos: Vec<usize>,
    /// Portable pass: per-lane liveness for the current column.
    pub(crate) live: Vec<bool>,
    /// Portable pass: per-lane H[j-1] of the previous column.
    pub(crate) diag: Vec<T>,
    /// Portable pass: per-lane F carry.
    pub(crate) f: Vec<T>,
    /// Fused pass: per-query pass results.
    pub(crate) mresults: Vec<Vec<Option<i32>>>,
    /// Fused pass: per-query lane-major H rows.
    pub(crate) mh: Vec<Vec<T>>,
    /// Fused pass: per-query lane-major E rows.
    pub(crate) me: Vec<Vec<T>>,
    /// Fused pass: per-query per-lane best, flattened `nq * lanes`.
    pub(crate) mbest: Vec<T>,
}

impl<T: Lane> WidthBuf<T> {
    pub(crate) fn new() -> Self {
        WidthBuf {
            results: Vec::new(),
            h: Vec::new(),
            e: Vec::new(),
            colprof: Vec::new(),
            score_col: Vec::new(),
            best: Vec::new(),
            lane_job: Vec::new(),
            lane_pos: Vec::new(),
            live: Vec::new(),
            diag: Vec::new(),
            f: Vec::new(),
            mresults: Vec::new(),
            mh: Vec::new(),
            me: Vec::new(),
            mbest: Vec::new(),
        }
    }
}

/// The inter-sequence kernel chain's complete buffer set: job lists plus
/// one [`WidthBuf`] per lane width of the i8 → i16 fallback chain.
pub(crate) struct InterSeqScratch {
    /// Scan positions of the current chunk.
    pub(crate) jobs: Vec<usize>,
    /// Indices into `jobs` whose i8 lane saturated.
    pub(crate) sat: Vec<usize>,
    /// Scan positions of the i16 rerun (mapped from `sat`).
    pub(crate) jobs16: Vec<usize>,
    pub(crate) w8: WidthBuf<i8>,
    pub(crate) w16: WidthBuf<i16>,
}

impl InterSeqScratch {
    fn new() -> Self {
        InterSeqScratch {
            jobs: Vec::new(),
            sat: Vec::new(),
            jobs16: Vec::new(),
            w8: WidthBuf::new(),
            w16: WidthBuf::new(),
        }
    }
}

/// Every buffer the scan kernels need, owned by one worker thread for its
/// lifetime. See the module docs for the ownership and sizing model.
pub struct KernelScratch {
    /// Striped i8 DP rows (first pass of the saturation chain).
    pub(crate) ws8: Workspace<i8>,
    /// Striped i16 DP rows (the saturation rerun width).
    pub(crate) ws16: Workspace<i16>,
    /// Inter-sequence chain buffers (solo and fused).
    pub(crate) interseq: InterSeqScratch,
    /// Solo-chain score output, one per chunk position.
    pub(crate) scores: Vec<i32>,
    /// Fused-chain score output, one vector per batch query.
    pub(crate) multi_scores: Vec<Vec<i32>>,
}

impl KernelScratch {
    /// Fresh, empty scratch; every buffer sizes itself high-water on first
    /// use.
    pub fn new() -> Self {
        KernelScratch {
            ws8: Workspace::new(),
            ws16: Workspace::new(),
            interseq: InterSeqScratch::new(),
            scores: Vec::new(),
            multi_scores: Vec::new(),
        }
    }
}

impl Default for KernelScratch {
    fn default() -> Self {
        KernelScratch::new()
    }
}

/// Hint the CPU to pull the head of `data` (up to four cache lines) into
/// L1 ahead of use. Purely advisory: results never depend on it, which is
/// why [`crate::search::SearchConfig::prefetch`] may toggle it freely.
#[inline(always)]
pub(crate) fn prefetch_read(data: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let mut off = 0usize;
        while off < data.len() && off < 256 {
            // SAFETY: prefetch is a pure hint and the pointer stays
            // within `data`'s bounds.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(off) as *const i8) };
            off += 64;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = data;
}
