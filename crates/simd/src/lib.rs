//! Adapted-Farrar striped SIMD Smith-Waterman (paper §IV-C).
//!
//! The paper executes SW on the multicore hosts with "a modified version of
//! the Farrar algorithm … using **signed** integers instead of unsigned ones
//! to store the values of the SW DP matrices" (Farrar's original biases
//! unsigned 8-bit lanes because SSE2 lacks signed byte `max`). This crate
//! implements that adaptation:
//!
//! * [`profile`] — the striped query profile (Farrar's layout: query
//!   position `j` lives in vector `j % seg_len`, lane `j / seg_len`),
//! * [`lanes`] — the signed saturating lane arithmetic (`i8`/`i16`/`i32`),
//! * [`portable`] — the striped kernel over plain arrays (works on every
//!   architecture; the reference for the intrinsics path),
//! * [`sse`] — x86-64 intrinsics kernels (16 × i8 via SSE4.1, 8 × i16 via
//!   SSE2), selected at runtime,
//! * [`engine`] — the dispatch + saturation-fallback chain: 8-bit kernel
//!   first, recompute with 16 bits on saturation, fall back to the exact
//!   scalar kernel as a last resort,
//! * [`interseq`] — the Rognes/SWIPE-style *inter-sequence* kernel family
//!   (the related-work baseline [17]): `LANES` database sequences scored
//!   simultaneously in the lanes of one vector, lanes refilling from the
//!   queue, with its own i8 → i16 → scalar saturation chain,
//! * [`interseq_sse`] / [`interseq_avx2`] — the hand-vectorized
//!   inter-sequence passes (16/8 lanes per 128-bit register, 32/16 per
//!   256-bit register) whose score gather is a 16 × 16 byte transpose,
//! * [`search`] — a multi-threaded query × database scan with
//!   self-scheduled chunks (the intra-node parallelisation of Rognes'
//!   SWIPE-style tools) and adaptive per-chunk kernel dispatch
//!   ([`search::KernelChoice`]), producing a ranked hit list.
//!
//! Every kernel computes the **Gotoh affine-gap local alignment score** and
//! is validated against `swhybrid_align::score_only::sw_score_affine`.

pub mod avx2;
pub mod engine;
pub mod exec;
pub mod interseq;
pub mod interseq_avx2;
pub mod interseq_sse;
pub mod lanes;
pub mod portable;
pub mod profile;
pub mod scratch;
pub mod search;
pub mod sse;

pub use engine::{EnginePreference, KernelStats, PreparedQuery, StripedEngine};
pub use exec::{chunk_floor, chunk_size, materialize_hits, ShardExecutor, ShardPlan};
pub use profile::StripedProfile;
pub use scratch::KernelScratch;
pub use search::{DatabaseSearch, Hit, KernelChoice, SearchConfig};
