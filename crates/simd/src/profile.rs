//! The striped query profile (Farrar 2007, §"query profile").
//!
//! For a query of `m` residues processed with `L` SIMD lanes, the query is
//! split into `seg_len = ceil(m / L)` vectors: query position `j` (0-based)
//! is stored in vector `j % seg_len`, lane `j / seg_len`. For every alphabet
//! code `r` the profile stores the substitution scores `sub(query[j], r)` in
//! that layout, so the inner loop's score lookup is a single aligned vector
//! load.
//!
//! Padding positions (`j ≥ m`) carry [`Lane::MIN`] so that, with saturating
//! arithmetic and the explicit zero floor of the signed kernel, they can
//! never contribute a positive score (their `H` sticks at zero, which is
//! also the score of the empty alignment).

use crate::lanes::Lane;
use swhybrid_align::scoring::SubstMatrix;

/// A striped query profile over lane type `T`.
#[derive(Debug, Clone)]
pub struct StripedProfile<T: Lane> {
    /// Number of vectors per alphabet code.
    pub seg_len: usize,
    /// Lanes per vector (`T::SIMD_LANES`).
    pub lanes: usize,
    /// Query length in residues.
    pub query_len: usize,
    /// Alphabet size (number of codes with a profile row).
    pub alphabet_size: usize,
    /// `alphabet_size × seg_len × lanes` scores; vector `k` of code `r`
    /// starts at `(r * seg_len + k) * lanes`.
    data: Vec<T>,
}

impl<T: Lane> StripedProfile<T> {
    /// Build a profile for `query` (encoded codes) under `matrix`, with the
    /// lane count of the 128-bit register for `T`.
    ///
    /// # Panics
    /// Panics if the query is empty or contains codes outside the matrix.
    pub fn build(query: &[u8], matrix: &SubstMatrix) -> StripedProfile<T> {
        StripedProfile::build_with_lanes(query, matrix, T::SIMD_LANES)
    }

    /// Build a profile with an explicit lane count (e.g. 32 × i8 for the
    /// AVX2 kernels). The striped score is lane-count invariant; only the
    /// memory layout changes.
    #[allow(clippy::needless_range_loop)] // (k, lane) index math is the layout definition
    pub fn build_with_lanes(query: &[u8], matrix: &SubstMatrix, lanes: usize) -> StripedProfile<T> {
        assert!(!query.is_empty(), "query must not be empty");
        assert!(lanes >= 1, "need at least one lane");
        let m = query.len();
        let seg_len = m.div_ceil(lanes);
        let alphabet_size = matrix.dim();
        let mut data = vec![T::MIN; alphabet_size * seg_len * lanes];
        for r in 0..alphabet_size {
            let row = matrix.row(r as u8);
            for k in 0..seg_len {
                for lane in 0..lanes {
                    let j = lane * seg_len + k;
                    if j < m {
                        let code = query[j] as usize;
                        assert!(
                            code < alphabet_size,
                            "query code {code} out of range for {}",
                            matrix.name
                        );
                        data[(r * seg_len + k) * lanes + lane] = T::from_i32_sat(row[code] as i32);
                    }
                }
            }
        }
        StripedProfile {
            seg_len,
            lanes,
            query_len: m,
            alphabet_size,
            data,
        }
    }

    /// The scores of vector `k` for alphabet code `r` (`lanes` elements).
    #[inline(always)]
    pub fn vector(&self, r: u8, k: usize) -> &[T] {
        let base = (r as usize * self.seg_len + k) * self.lanes;
        &self.data[base..base + self.lanes]
    }

    /// Raw pointer to vector `k` of code `r` — used by the intrinsics
    /// kernels for `_mm_load_si128`-style access.
    #[inline(always)]
    pub fn vector_ptr(&self, r: u8, k: usize) -> *const T {
        self.data[(r as usize * self.seg_len + k) * self.lanes..].as_ptr()
    }

    /// Query position stored at `(k, lane)`, or `None` if it is padding.
    #[inline]
    pub fn position(&self, k: usize, lane: usize) -> Option<usize> {
        let j = lane * self.seg_len + k;
        (j < self.query_len).then_some(j)
    }

    /// Total number of vector slots (including padding).
    pub fn padded_len(&self) -> usize {
        self.seg_len * self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swhybrid_seq::Alphabet;

    fn profile_i8(query: &str) -> StripedProfile<i8> {
        let q = Alphabet::Protein.encode(query.as_bytes()).unwrap();
        StripedProfile::<i8>::build(&q, &SubstMatrix::blosum62())
    }

    #[test]
    fn layout_dimensions() {
        let p = profile_i8("MKVLAWCDEFGHIKLMN"); // 17 residues
        assert_eq!(p.lanes, 16);
        assert_eq!(p.seg_len, 2); // ceil(17/16)
        assert_eq!(p.padded_len(), 32);
        assert_eq!(p.query_len, 17);
    }

    #[test]
    fn every_query_position_mapped_once() {
        let p = profile_i8("MKVLAWCDEFGHIKLMNPQRSTVWYACDEFGHIK"); // 34 residues
        let mut seen = vec![false; p.query_len];
        for k in 0..p.seg_len {
            for lane in 0..p.lanes {
                if let Some(j) = p.position(k, lane) {
                    assert!(!seen[j], "position {j} mapped twice");
                    seen[j] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some positions unmapped");
    }

    #[test]
    fn scores_match_matrix() {
        let matrix = SubstMatrix::blosum62();
        let q = Alphabet::Protein.encode(b"MKVLAW").unwrap();
        let p = StripedProfile::<i8>::build(&q, &matrix);
        for r in 0..matrix.dim() as u8 {
            for k in 0..p.seg_len {
                let v = p.vector(r, k);
                #[allow(clippy::needless_range_loop)] // lane indexes both v and position()
                for lane in 0..p.lanes {
                    match p.position(k, lane) {
                        Some(j) => {
                            assert_eq!(v[lane] as i32, matrix.score(q[j], r));
                        }
                        None => assert_eq!(v[lane], i8::MIN),
                    }
                }
            }
        }
    }

    #[test]
    fn i16_profile_has_eight_lanes() {
        let matrix = SubstMatrix::blosum62();
        let q = Alphabet::Protein.encode(b"MKVLAWCDE").unwrap();
        let p = StripedProfile::<i16>::build(&q, &matrix);
        assert_eq!(p.lanes, 8);
        assert_eq!(p.seg_len, 2); // ceil(9/8)
                                  // Padding is i16::MIN.
        assert_eq!(p.vector(0, 1)[7], i16::MIN);
    }

    #[test]
    fn exact_multiple_of_lanes_has_no_padding() {
        let matrix = SubstMatrix::blosum62();
        let q = Alphabet::Protein.encode(b"MKVLAWCD").unwrap(); // 8 = i16 lanes
        let p = StripedProfile::<i16>::build(&q, &matrix);
        assert_eq!(p.seg_len, 1);
        for k in 0..p.seg_len {
            for lane in 0..p.lanes {
                assert!(p.position(k, lane).is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "query must not be empty")]
    fn empty_query_rejected() {
        let matrix = SubstMatrix::blosum62();
        StripedProfile::<i8>::build(&[], &matrix);
    }
}
