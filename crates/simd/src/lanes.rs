//! Signed saturating lane arithmetic for the striped kernels.
//!
//! The paper's adaptation of Farrar replaces unsigned-with-bias arithmetic
//! by signed saturating arithmetic. This trait expresses exactly the lane
//! operations the striped recurrence needs, implemented for `i8`, `i16` and
//! `i32`, so that the portable kernel is written once and instantiated per
//! width.

/// A signed saturating DP lane element.
pub trait Lane: Copy + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// Most negative representable value (acts as −∞).
    const MIN: Self;
    /// Most positive representable value (saturation ceiling).
    const MAX: Self;
    /// Zero.
    const ZERO: Self;
    /// Lane count of the 128-bit SIMD register this width maps to
    /// (16 for i8, 8 for i16, 4 for i32); the portable kernel uses the same
    /// count so both paths produce bit-identical intermediate layouts.
    const SIMD_LANES: usize;

    /// Saturating addition.
    fn sat_add(self, other: Self) -> Self;
    /// Saturating subtraction.
    fn sat_sub(self, other: Self) -> Self;
    /// Narrow an `i32` with saturation.
    fn from_i32_sat(x: i32) -> Self;
    /// Widen to `i32` (always exact).
    fn to_i32(self) -> i32;
}

macro_rules! impl_lane {
    ($t:ty, $lanes:expr) => {
        impl Lane for $t {
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;
            const ZERO: Self = 0;
            const SIMD_LANES: usize = $lanes;

            #[inline(always)]
            fn sat_add(self, other: Self) -> Self {
                self.saturating_add(other)
            }

            #[inline(always)]
            fn sat_sub(self, other: Self) -> Self {
                self.saturating_sub(other)
            }

            #[inline(always)]
            fn from_i32_sat(x: i32) -> Self {
                if x > <$t>::MAX as i32 {
                    <$t>::MAX
                } else if x < <$t>::MIN as i32 {
                    <$t>::MIN
                } else {
                    x as $t
                }
            }

            #[inline(always)]
            fn to_i32(self) -> i32 {
                self as i32
            }
        }
    };
}

impl_lane!(i8, 16);
impl_lane!(i16, 8);
impl_lane!(i32, 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(<i8 as Lane>::sat_add(120, 100), i8::MAX);
        assert_eq!(<i8 as Lane>::sat_add(-120, -100), i8::MIN);
        assert_eq!(<i16 as Lane>::sat_add(1, 2), 3);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(<i8 as Lane>::sat_sub(-120, 100), i8::MIN);
        assert_eq!(<i16 as Lane>::sat_sub(-32000, 1000), i16::MIN);
        assert_eq!(<i32 as Lane>::sat_sub(5, 3), 2);
    }

    #[test]
    fn from_i32_saturates_both_ways() {
        assert_eq!(<i8 as Lane>::from_i32_sat(300), i8::MAX);
        assert_eq!(<i8 as Lane>::from_i32_sat(-300), i8::MIN);
        assert_eq!(<i8 as Lane>::from_i32_sat(-5), -5);
        assert_eq!(<i16 as Lane>::from_i32_sat(70_000), i16::MAX);
        assert_eq!(<i32 as Lane>::from_i32_sat(70_000), 70_000);
    }

    #[test]
    fn simd_lane_counts_fill_128_bits() {
        assert_eq!(<i8 as Lane>::SIMD_LANES * 8, 128);
        assert_eq!(<i16 as Lane>::SIMD_LANES * 16, 128);
        assert_eq!(<i32 as Lane>::SIMD_LANES * 32, 128);
    }
}
