//! Kernel dispatch with the adapted-Farrar saturation-fallback chain.
//!
//! A database scan runs the cheapest kernel first (16 lanes of i8); when a
//! subject's score saturates the 8-bit range the engine recomputes it with
//! 8 lanes of i16, and — should even that saturate — falls back to the exact
//! scalar Gotoh kernel (i32). This mirrors the paper's §IV-C: "our version
//! uses signed integers … augmenting the maximum score to 2⁸−1 (8 bits) and
//! 2¹⁶−1 (16 bits)"; with two's-complement signed lanes the practical
//! ceilings are 127 and 32,767, after which the scalar kernel is exact.

use std::sync::Arc;

use crate::portable::{sw_striped_portable, StripedOutcome, Workspace};
use crate::profile::StripedProfile;
use crate::scratch::KernelScratch;
use crate::sse;
use swhybrid_align::gotoh::gap_params;
use swhybrid_align::score_only::sw_score_affine;
use swhybrid_align::scoring::Scoring;

/// Which implementation family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnginePreference {
    /// Intrinsics when the CPU supports them, portable otherwise.
    #[default]
    Auto,
    /// Force the portable (array) kernels.
    Portable,
    /// Force the x86-64 intrinsics kernels; falls back to portable per-call
    /// when the CPU lacks the feature.
    Simd,
}

/// Counters describing which kernels actually ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Subjects resolved by the striped 8-bit kernel.
    pub resolved_i8: u64,
    /// Subjects that saturated 8 bits and were resolved by the striped
    /// 16-bit kernel.
    pub resolved_i16: u64,
    /// Subjects that saturated 16 bits and needed the scalar i32 kernel.
    pub resolved_scalar: u64,
    /// Subjects resolved by the inter-sequence 8-bit kernel.
    pub interseq_i8: u64,
    /// Subjects that saturated the inter-sequence 8-bit pass and were
    /// resolved by the inter-sequence 16-bit pass.
    pub interseq_i16: u64,
    /// Subjects that saturated both inter-sequence passes and needed the
    /// scalar i32 kernel.
    pub interseq_scalar: u64,
    /// Chunks the dispatcher sent to the striped kernel.
    pub chunks_striped: u64,
    /// Chunks the dispatcher sent to the inter-sequence kernel.
    pub chunks_interseq: u64,
    /// DP cells actually computed (every pass counted: an i8 pass that
    /// saturates and is recomputed at i16 costs both passes' cells).
    pub cells_computed: u64,
}

impl KernelStats {
    /// Total subjects scored.
    pub fn total(&self) -> u64 {
        self.resolved_i8
            + self.resolved_i16
            + self.resolved_scalar
            + self.interseq_i8
            + self.interseq_i16
            + self.interseq_scalar
    }

    /// Subjects scored by the inter-sequence kernel family.
    pub fn interseq_total(&self) -> u64 {
        self.interseq_i8 + self.interseq_i16 + self.interseq_scalar
    }

    /// Merge counters from another worker.
    pub fn merge(&mut self, other: &KernelStats) {
        self.resolved_i8 += other.resolved_i8;
        self.resolved_i16 += other.resolved_i16;
        self.resolved_scalar += other.resolved_scalar;
        self.interseq_i8 += other.interseq_i8;
        self.interseq_i16 += other.interseq_i16;
        self.interseq_scalar += other.interseq_scalar;
        self.chunks_striped += other.chunks_striped;
        self.chunks_interseq += other.chunks_interseq;
        self.cells_computed += other.cells_computed;
    }
}

/// The immutable, shareable half of a query's engine: the encoded query,
/// the scoring scheme, and every striped profile the kernels may need.
///
/// Building the profiles is the per-query setup cost of a database scan
/// (`O(query × alphabet)` work and the dominant allocation). A
/// `PreparedQuery` is built once and shared — across the worker threads of
/// one scan, and across *scans* by a long-lived server that sees the same
/// query repeatedly. Engines ([`StripedEngine`]) stay per-thread because
/// they own mutable workspaces; the profiles they read are behind an
/// [`Arc`].
pub struct PreparedQuery {
    pub(crate) query: Vec<u8>,
    pub(crate) scoring: Scoring,
    pub(crate) goe: i32,
    pub(crate) ext: i32,
    profile8: StripedProfile<i8>,
    profile16: StripedProfile<i16>,
    /// 32-lane profile, built only when the AVX2 kernels will run.
    profile8_avx: Option<StripedProfile<i8>>,
    /// 16-lane profile, built only when the AVX2 kernels will run.
    profile16_avx: Option<StripedProfile<i16>>,
    /// Transposed substitution scores padded to 32-byte rows for the
    /// inter-sequence kernels' score gather: row `c` (a database residue)
    /// holds `score(q, c)` at `interseq_matrix[c * 32 + q]` for every query
    /// symbol `q`. `None` when the alphabet exceeds 32 codes (the portable
    /// inter-sequence pass handles those).
    pub(crate) interseq_matrix: Option<Vec<i8>>,
    preference: EnginePreference,
}

impl PreparedQuery {
    /// Build all profiles for an encoded `query` under `scoring`.
    pub fn new(query: &[u8], scoring: &Scoring, preference: EnginePreference) -> PreparedQuery {
        let (open, ext) = gap_params(scoring.gap);
        let use_avx2 = preference != EnginePreference::Portable && crate::avx2::avx2_available();
        PreparedQuery {
            query: query.to_vec(),
            scoring: scoring.clone(),
            goe: open + ext,
            ext,
            profile8: StripedProfile::<i8>::build(query, &scoring.matrix),
            profile16: StripedProfile::<i16>::build(query, &scoring.matrix),
            profile8_avx: use_avx2.then(|| {
                StripedProfile::<i8>::build_with_lanes(
                    query,
                    &scoring.matrix,
                    crate::avx2::LANES_I8,
                )
            }),
            profile16_avx: use_avx2.then(|| {
                StripedProfile::<i16>::build_with_lanes(
                    query,
                    &scoring.matrix,
                    crate::avx2::LANES_I16,
                )
            }),
            interseq_matrix: build_interseq_matrix(&scoring.matrix),
            preference,
        }
    }

    /// The encoded query.
    pub fn query(&self) -> &[u8] {
        &self.query
    }

    /// Query length in residues.
    pub fn query_len(&self) -> usize {
        self.query.len()
    }

    /// The scoring scheme the profiles were built under.
    pub fn scoring(&self) -> &Scoring {
        &self.scoring
    }

    /// The kernel preference the profiles were built for.
    pub fn preference(&self) -> EnginePreference {
        self.preference
    }

    /// Gap penalties as `(open + extend, extend)` — the magnitudes the
    /// kernels subtract.
    pub fn gap_penalties(&self) -> (i32, i32) {
        (self.goe, self.ext)
    }
}

/// Build the inter-sequence kernels' padded, transposed score table (see
/// [`PreparedQuery::interseq_matrix`]).
fn build_interseq_matrix(matrix: &swhybrid_align::scoring::SubstMatrix) -> Option<Vec<i8>> {
    let dim = matrix.dim();
    if dim > 32 {
        return None;
    }
    let mut table = vec![0i8; dim * 32];
    for c in 0..dim {
        for q in 0..dim {
            table[c * 32 + q] = matrix.score(q as u8, c as u8) as i8;
        }
    }
    Some(table)
}

/// A query bound to its striped profiles and scoring scheme: scores one
/// subject at a time with the fallback chain. The engine itself is cheap —
/// profiles live in a shared [`PreparedQuery`], DP rows in the caller's
/// [`KernelScratch`] — so the scratch (one per worker thread) carries the
/// reusable buffers across engines, queries and chunks.
///
/// ```
/// use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
/// use swhybrid_simd::engine::{EnginePreference, StripedEngine};
/// use swhybrid_simd::scratch::KernelScratch;
/// use swhybrid_seq::Alphabet;
///
/// let scoring = Scoring {
///     matrix: SubstMatrix::blosum62(),
///     gap: GapModel::Affine { open: 10, extend: 2 },
/// };
/// let query = Alphabet::Protein.encode(b"MKVLAWCDEF").unwrap();
/// let subject = Alphabet::Protein.encode(b"MKVLWCDEF").unwrap();
/// let mut scratch = KernelScratch::new();
/// let mut engine = StripedEngine::new(&query, &scoring, EnginePreference::Auto);
/// assert!(engine.score(&subject, &mut scratch) > 0);
/// assert_eq!(engine.stats().total(), 1);
/// ```
pub struct StripedEngine {
    prepared: Arc<PreparedQuery>,
    stats: KernelStats,
}

impl StripedEngine {
    /// Build the engine for an encoded `query` under `scoring` (profiles
    /// are built fresh; use [`StripedEngine::with_prepared`] to share them).
    pub fn new(query: &[u8], scoring: &Scoring, preference: EnginePreference) -> StripedEngine {
        StripedEngine::with_prepared(Arc::new(PreparedQuery::new(query, scoring, preference)))
    }

    /// Wrap an already-built [`PreparedQuery`]; construction is free (the
    /// DP rows live in the caller's [`KernelScratch`]).
    pub fn with_prepared(prepared: Arc<PreparedQuery>) -> StripedEngine {
        StripedEngine {
            prepared,
            stats: KernelStats::default(),
        }
    }

    /// Query length in residues.
    pub fn query_len(&self) -> usize {
        self.prepared.query_len()
    }

    /// Kernel-usage counters accumulated so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Reset the kernel-usage counters.
    pub fn reset_stats(&mut self) {
        self.stats = KernelStats::default();
    }

    fn run_i8(&self, subject: &[u8], ws: &mut Workspace<i8>) -> StripedOutcome {
        let p = &self.prepared;
        if let Some(profile) = &p.profile8_avx {
            if let Some(out) = crate::avx2::sw_striped_i8_avx2(profile, subject, p.goe, p.ext, ws) {
                return out;
            }
        }
        if p.preference != EnginePreference::Portable {
            if let Some(out) = sse::sw_striped_i8(&p.profile8, subject, p.goe, p.ext, ws) {
                return out;
            }
        }
        sw_striped_portable(&p.profile8, subject, p.goe, p.ext, ws)
    }

    fn run_i16(&self, subject: &[u8], ws: &mut Workspace<i16>) -> StripedOutcome {
        let p = &self.prepared;
        if let Some(profile) = &p.profile16_avx {
            if let Some(out) = crate::avx2::sw_striped_i16_avx2(profile, subject, p.goe, p.ext, ws)
            {
                return out;
            }
        }
        if p.preference != EnginePreference::Portable {
            if let Some(out) = sse::sw_striped_i16(&p.profile16, subject, p.goe, p.ext, ws) {
                return out;
            }
        }
        sw_striped_portable(&p.profile16, subject, p.goe, p.ext, ws)
    }

    /// Score one encoded subject, with the 8→16→scalar fallback chain.
    /// Every pass that runs is charged to `cells_computed`, so reported
    /// GCUPS reflect work actually done on saturated workloads. `scratch`
    /// provides the DP rows; in steady state (same query length) the call
    /// performs zero heap allocations.
    pub fn score(&mut self, subject: &[u8], scratch: &mut KernelScratch) -> i32 {
        if subject.is_empty() {
            self.stats.resolved_i8 += 1;
            return 0;
        }
        let pass_cells = self.prepared.query_len() as u64 * subject.len() as u64;
        self.stats.cells_computed += pass_cells;
        let out8 = self.run_i8(subject, &mut scratch.ws8);
        if !out8.saturated {
            self.stats.resolved_i8 += 1;
            return out8.score;
        }
        self.stats.cells_computed += pass_cells;
        let out16 = self.run_i16(subject, &mut scratch.ws16);
        if !out16.saturated {
            self.stats.resolved_i16 += 1;
            return out16.score;
        }
        self.stats.resolved_scalar += 1;
        self.stats.cells_computed += pass_cells;
        sw_score_affine(&self.prepared.query, subject, &self.prepared.scoring).score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::{GapModel, SubstMatrix};

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_seq(rng: &mut impl rand::RngExt, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..20u8)).collect()
    }

    #[test]
    fn engine_matches_scalar_on_random_db() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(113);
        let s = scoring();
        let query = random_seq(&mut rng, 90);
        for pref in [
            EnginePreference::Auto,
            EnginePreference::Portable,
            EnginePreference::Simd,
        ] {
            let mut scratch = KernelScratch::new();
            let mut engine = StripedEngine::new(&query, &s, pref);
            for _ in 0..30 {
                let len = rng.random_range(1..200);
                let subject = random_seq(&mut rng, len);
                let got = engine.score(&subject, &mut scratch);
                let expect = sw_score_affine(&query, &subject, &s).score;
                assert_eq!(got, expect, "pref {pref:?}");
            }
            assert_eq!(engine.stats().total(), 30);
        }
    }

    #[test]
    fn fallback_chain_engages_on_high_scores() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(127);
        // Self-comparison of a long query forces >127 score (i16 path).
        let query = random_seq(&mut rng, 400);
        let s = scoring();
        let mut engine = StripedEngine::new(&query, &s, EnginePreference::Auto);
        let got = engine.score(&query, &mut KernelScratch::new());
        let expect = sw_score_affine(&query, &query, &s).score;
        assert_eq!(got, expect);
        assert!(expect > 127, "test premise: score must exceed i8 range");
        assert_eq!(
            engine.stats().resolved_i16 + engine.stats().resolved_scalar,
            1
        );
    }

    #[test]
    fn scalar_fallback_for_extreme_scores() {
        // A score beyond 32,767: 3,100 tryptophans self-align to
        // 3,100 × 11 = 34,100 under BLOSUM62 (W-W = 11).
        let query: Vec<u8> = vec![17u8; 3100];
        let s = scoring();
        let mut engine = StripedEngine::new(&query, &s, EnginePreference::Auto);
        let got = engine.score(&query, &mut KernelScratch::new());
        let expect = sw_score_affine(&query, &query, &s).score;
        assert_eq!(got, expect);
        assert!(expect > i16::MAX as i32, "test premise: must exceed i16");
        assert_eq!(engine.stats().resolved_scalar, 1);
    }

    #[test]
    fn empty_subject() {
        let s = scoring();
        let query = vec![0u8, 1, 2];
        let mut engine = StripedEngine::new(&query, &s, EnginePreference::Auto);
        assert_eq!(engine.score(&[], &mut KernelScratch::new()), 0);
    }

    #[test]
    fn stats_reset() {
        let s = scoring();
        let query = vec![0u8, 1, 2];
        let mut engine = StripedEngine::new(&query, &s, EnginePreference::Auto);
        engine.score(&[0, 1, 2], &mut KernelScratch::new());
        assert_eq!(engine.stats().total(), 1);
        engine.reset_stats();
        assert_eq!(engine.stats().total(), 0);
    }
}
