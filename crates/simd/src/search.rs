//! Multi-threaded query × database search.
//!
//! This is the intra-node parallelisation the paper runs on each multicore
//! host (coarse-grained, Fig. 3b): the database is scanned in chunks that
//! worker threads claim in a self-scheduling fashion (an atomic cursor —
//! the same SS idea as Rognes' multi-threaded SSE search [17]), each worker
//! owning its own [`StripedEngine`] so profiles are shared-nothing and the
//! scan is embarrassingly parallel.
//!
//! The output is a ranked [`Hit`] list (top-N by score, ties broken by
//! database order), plus the kernel-usage counters.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::engine::{EnginePreference, KernelStats, PreparedQuery, StripedEngine};
use swhybrid_align::alignment::Alignment;
use swhybrid_align::gotoh::gotoh_align;
use swhybrid_align::scoring::Scoring;
use swhybrid_align::stats::cells;
use swhybrid_seq::sequence::EncodedSequence;

/// One database hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Index of the subject within the database.
    pub db_index: usize,
    /// Identifier of the subject sequence.
    pub id: String,
    /// Optimal local alignment score.
    pub score: i32,
    /// Subject length in residues.
    pub subject_len: usize,
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Worker threads (≥ 1). The default is 1: thread count is a *platform*
    /// decision made by the execution environment, not the kernel layer.
    pub threads: usize,
    /// How many top hits to keep.
    pub top_n: usize,
    /// Subjects per self-scheduled chunk.
    pub chunk_size: usize,
    /// Kernel family preference.
    pub preference: EnginePreference,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            threads: 1,
            top_n: 20,
            chunk_size: 64,
            preference: EnginePreference::Auto,
        }
    }
}

/// Result of a database search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Ranked hits (best first), at most `top_n`.
    pub hits: Vec<Hit>,
    /// DP cells updated (query length × total subject residues).
    pub cells: u64,
    /// Kernel usage across all workers.
    pub stats: KernelStats,
}

impl SearchResult {
    /// Recover the optimal local alignments for the ranked hits (the scan
    /// itself is score-only; only the reported top-N pay the quadratic
    /// traceback — the standard database-search trade-off).
    ///
    /// Each returned alignment's score equals the hit's score by
    /// construction (asserted in debug builds).
    pub fn align_hits(
        &self,
        query: &[u8],
        subjects: &[EncodedSequence],
        scoring: &Scoring,
    ) -> Vec<(Hit, Alignment)> {
        self.hits
            .iter()
            .map(|hit| {
                let alignment = gotoh_align(query, &subjects[hit.db_index].codes, scoring);
                debug_assert_eq!(alignment.score, hit.score, "hit {}", hit.id);
                (hit.clone(), alignment)
            })
            .collect()
    }
}

/// Rank hits deterministically: score descending, ties broken by database
/// order ascending. This is THE ranking of the whole workspace — every
/// merge of partial hit lists (per-worker, per-shard, per-process) goes
/// through here, so a result assembled from any decomposition of the
/// database is bit-identical to a single sequential scan.
pub fn rank_hits(hits: &mut [Hit]) {
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
}

/// Merge any number of partial hit lists into the global top `top_n`.
///
/// Correct whenever each input list contains at least the top `top_n` hits
/// of its own partition (lists shorter than that are taken whole): any
/// global top-`top_n` hit is necessarily in its partition's top `top_n`.
pub fn merge_top_n(lists: impl IntoIterator<Item = Vec<Hit>>, top_n: usize) -> Vec<Hit> {
    let mut all: Vec<Hit> = lists.into_iter().flatten().collect();
    rank_hits(&mut all);
    all.truncate(top_n);
    all
}

/// A prepared database search: one query against many subjects.
pub struct DatabaseSearch<'a> {
    query: &'a [u8],
    scoring: &'a Scoring,
    config: SearchConfig,
}

impl<'a> DatabaseSearch<'a> {
    /// Prepare a search for an encoded query.
    pub fn new(query: &'a [u8], scoring: &'a Scoring, config: SearchConfig) -> Self {
        assert!(config.threads >= 1, "at least one worker required");
        assert!(config.chunk_size >= 1, "chunk size must be positive");
        DatabaseSearch {
            query,
            scoring,
            config,
        }
    }

    /// Scan `subjects` and return the ranked hits. The query profiles are
    /// built once and shared by every worker.
    pub fn run(&self, subjects: &[EncodedSequence]) -> SearchResult {
        let prepared = Arc::new(PreparedQuery::new(
            self.query,
            self.scoring,
            self.config.preference,
        ));
        search_prepared(&prepared, subjects, &self.config)
    }
}

/// Scan `subjects` with an already-prepared query (shared profiles). This
/// is the entry point for long-lived callers — a server that keeps
/// [`PreparedQuery`]s across searches skips the per-query profile build
/// entirely. `config.preference` is ignored: the preference is baked into
/// the prepared profiles.
pub fn search_prepared(
    prepared: &Arc<PreparedQuery>,
    subjects: &[EncodedSequence],
    config: &SearchConfig,
) -> SearchResult {
    assert!(config.threads >= 1, "at least one worker required");
    assert!(config.chunk_size >= 1, "chunk size must be positive");
    let n_workers = config.threads.min(subjects.len().max(1));
    let cursor = AtomicUsize::new(0);

    let mut worker_outputs: Vec<(Vec<Hit>, KernelStats)> = if n_workers == 1 {
        vec![scan_worker(prepared, subjects, &cursor, config)]
    } else {
        let mut outs = Vec::with_capacity(n_workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| scope.spawn(|| scan_worker(prepared, subjects, &cursor, config)))
                .collect();
            for h in handles {
                outs.push(h.join().expect("search worker panicked"));
            }
        });
        outs
    };

    let mut stats = KernelStats::default();
    for (_, worker_stats) in &worker_outputs {
        stats.merge(worker_stats);
    }
    let hits = merge_top_n(
        worker_outputs.drain(..).map(|(worker_hits, _)| worker_hits),
        config.top_n,
    );

    let total_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    SearchResult {
        hits,
        cells: cells(prepared.query_len(), 1) * total_residues,
        stats,
    }
}

fn scan_worker(
    prepared: &Arc<PreparedQuery>,
    subjects: &[EncodedSequence],
    cursor: &AtomicUsize,
    config: &SearchConfig,
) -> (Vec<Hit>, KernelStats) {
    let chunk = config.chunk_size;
    let mut engine = StripedEngine::with_prepared(Arc::clone(prepared));
    let mut local: Vec<Hit> = Vec::new();
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= subjects.len() {
            break;
        }
        let end = (start + chunk).min(subjects.len());
        for (offset, subject) in subjects[start..end].iter().enumerate() {
            let score = engine.score(&subject.codes);
            local.push(Hit {
                db_index: start + offset,
                id: subject.id.clone(),
                score,
                subject_len: subject.len(),
            });
        }
        // Keep the per-worker list bounded: only the global top-N can
        // survive the merge anyway.
        if local.len() > 4 * config.top_n.max(16) {
            rank_hits(&mut local);
            local.truncate(2 * config.top_n.max(8));
        }
    }
    (local, engine.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::score_only::sw_score_affine;
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_db(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let len = rng.random_range(1..max_len);
                EncodedSequence {
                    id: format!("s{i}"),
                    codes: (0..len).map(|_| rng.random_range(0..20u8)).collect(),
                    alphabet: Alphabet::Protein,
                }
            })
            .collect()
    }

    #[test]
    fn hits_match_scalar_scores_and_are_sorted() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(131);
        let query: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(133, 50, 120);
        let s = scoring();
        let result = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                top_n: 50,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(result.hits.len(), 50);
        for pair in result.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        for hit in &result.hits {
            let expect = sw_score_affine(&query, &db[hit.db_index].codes, &s).score;
            assert_eq!(hit.score, expect, "hit {}", hit.id);
        }
        assert_eq!(result.stats.total(), 50);
    }

    #[test]
    fn multithreaded_equals_single_threaded() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(137);
        let query: Vec<u8> = (0..80).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(139, 200, 150);
        let s = scoring();
        let single = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                threads: 1,
                top_n: 10,
                ..Default::default()
            },
        )
        .run(&db);
        let multi = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                threads: 4,
                top_n: 10,
                chunk_size: 7,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(single.hits, multi.hits);
        assert_eq!(single.stats.total(), multi.stats.total());
    }

    #[test]
    fn top_n_truncates() {
        let db = random_db(141, 30, 60);
        let query: Vec<u8> = (0..40).map(|i| (i % 20) as u8).collect();
        let s = scoring();
        let result = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                top_n: 5,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(result.hits.len(), 5);
    }

    #[test]
    fn planted_homolog_ranks_first() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(149);
        let query: Vec<u8> = (0..100).map(|_| rng.random_range(0..20u8)).collect();
        let mut db = random_db(151, 40, 120);
        // Plant a copy of the query in the middle of the database.
        db[17] = EncodedSequence {
            id: "planted".into(),
            codes: query.clone(),
            alphabet: Alphabet::Protein,
        };
        let s = scoring();
        let result = DatabaseSearch::new(&query, &s, SearchConfig::default()).run(&db);
        assert_eq!(result.hits[0].id, "planted");
        assert_eq!(
            result.hits[0].score,
            sw_score_affine(&query, &query, &s).score
        );
    }

    #[test]
    fn cells_accounting() {
        let db = random_db(157, 10, 50);
        let total: u64 = db.iter().map(|d| d.len() as u64).sum();
        let query: Vec<u8> = (0..25).map(|i| (i % 20) as u8).collect();
        let s = scoring();
        let result = DatabaseSearch::new(&query, &s, SearchConfig::default()).run(&db);
        assert_eq!(result.cells, 25 * total);
    }

    #[test]
    fn align_hits_recovers_consistent_alignments() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(163);
        let query: Vec<u8> = (0..50).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(165, 25, 80);
        let s = scoring();
        let result = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                top_n: 5,
                ..Default::default()
            },
        )
        .run(&db);
        let aligned = result.align_hits(&query, &db, &s);
        assert_eq!(aligned.len(), 5);
        for (hit, alignment) in &aligned {
            assert_eq!(alignment.score, hit.score);
            if !alignment.is_empty() {
                assert_eq!(
                    alignment.rescore(&query, &db[hit.db_index].codes, &s),
                    hit.score
                );
            }
        }
    }

    #[test]
    fn empty_database_yields_no_hits() {
        let query: Vec<u8> = vec![0, 1, 2];
        let s = scoring();
        let result = DatabaseSearch::new(&query, &s, SearchConfig::default()).run(&[]);
        assert!(result.hits.is_empty());
        assert_eq!(result.cells, 0);
    }

    #[test]
    fn merge_top_n_matches_whole_db_scan() {
        // Shard the database arbitrarily, scan each shard, merge the
        // per-shard top-N lists: the ranking must be bit-identical to a
        // single scan of the whole database. This is the invariant the
        // query service relies on when it splits one query across tasks.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(167);
        let query: Vec<u8> = (0..70).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(169, 120, 100);
        let s = scoring();
        let cfg = SearchConfig {
            top_n: 15,
            ..Default::default()
        };
        let whole = DatabaseSearch::new(&query, &s, cfg.clone()).run(&db);

        let prepared = Arc::new(PreparedQuery::new(&query, &s, cfg.preference));
        let bounds = [0usize, 13, 50, 51, 120];
        let shard_lists: Vec<Vec<Hit>> = bounds
            .windows(2)
            .map(|w| {
                let mut part = search_prepared(&prepared, &db[w[0]..w[1]], &cfg).hits;
                // Shard hits index into the shard; rebase to global order.
                for h in &mut part {
                    h.db_index += w[0];
                }
                part
            })
            .collect();
        let merged = merge_top_n(shard_lists, cfg.top_n);
        assert_eq!(merged, whole.hits);
    }

    #[test]
    fn merge_top_n_is_deterministic_on_ties() {
        let hit = |db_index: usize, score: i32| Hit {
            db_index,
            id: format!("s{db_index}"),
            score,
            subject_len: 10,
        };
        // Two lists with interleaved ties: db order must break them.
        let a = vec![hit(4, 50), hit(0, 40), hit(6, 40)];
        let b = vec![hit(2, 50), hit(1, 40), hit(5, 60)];
        let merged = merge_top_n([a, b], 4);
        let order: Vec<usize> = merged.iter().map(|h| h.db_index).collect();
        assert_eq!(order, vec![5, 2, 4, 0]);
    }
}
