//! Multi-threaded query × database search.
//!
//! This is the intra-node parallelisation the paper runs on each multicore
//! host (coarse-grained, Fig. 3b): the database is scanned in chunks that
//! worker threads claim in a self-scheduling fashion (an atomic cursor —
//! the same SS idea as Rognes' multi-threaded SSE search [17]), each worker
//! owning its own engine state so the scan is embarrassingly parallel.
//!
//! The database is packed into a flat [`DbArena`] before scanning, and each
//! claimed chunk is dispatched to one of two kernel families
//! ([`KernelChoice`]):
//!
//! * **Striped** — the adapted-Farrar intra-sequence kernel, one subject at
//!   a time. Wins on long queries (its DP state is `O(query)`) and on tiny
//!   chunks.
//! * **InterSeq** — the SWIPE-style inter-sequence kernel, `LANES` subjects
//!   per vector. Wins on bulk scans of short-to-medium subjects: no per
//!   subject setup, no lazy-F loop, near-perfect lane utilisation when
//!   chunk lengths are homogeneous (see [`SearchConfig::sort_by_length`]).
//! * **Auto** (default) — picks per chunk from the query length and the
//!   chunk's length skew; the decision counters land in [`KernelStats`].
//!
//! Every kernel family resolves every subject to the exact Gotoh score, so
//! the ranked output is **bit-identical** across kernel choices, thread
//! counts, and scan orders: hits are keyed by *database* index (the arena
//! un-permutes length-sorted scan positions) and ranked by [`rank_hits`]'s
//! total order.
//!
//! The output is a ranked [`Hit`] list (top-N by score, ties broken by
//! database order), plus the kernel-usage counters. Workers carry plain
//! [`Scored`] records (`Copy`, no strings); subject identifiers are
//! materialised only for the merged top-N.

use std::ops::Range;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use crate::engine::{EnginePreference, KernelStats, PreparedQuery};
use crate::exec::{demux_top_n, ShardExecutor, ShardPlan};
use crate::scratch::KernelScratch;
use swhybrid_align::alignment::Alignment;
use swhybrid_align::gotoh::gotoh_align;
use swhybrid_align::scoring::Scoring;
use swhybrid_align::stats::cells;
use swhybrid_seq::arena::DbArena;
use swhybrid_seq::sequence::EncodedSequence;

/// One database hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Index of the subject within the database.
    pub db_index: usize,
    /// Identifier of the subject sequence.
    pub id: String,
    /// Optimal local alignment score.
    pub score: i32,
    /// Subject length in residues.
    pub subject_len: usize,
}

/// A scored subject, as carried internally by scan workers: no identifier,
/// no allocation — `Hit`s (with their cloned id strings) are materialised
/// only for the merged top-N.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scored {
    /// Index of the subject within the database (already un-permuted when
    /// the scan order was length-sorted).
    pub db_index: usize,
    /// Optimal local alignment score.
    pub score: i32,
    /// Subject length in residues.
    pub subject_len: usize,
}

/// Which kernel family scores a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Always the adapted-Farrar striped kernel (one subject at a time).
    Striped,
    /// Always the SWIPE-style inter-sequence kernel (`LANES` subjects per
    /// vector).
    InterSeq,
    /// Decide per chunk from query length and chunk length-skew.
    #[default]
    Auto,
}

impl KernelChoice {
    /// Parse a CLI/protocol spelling.
    pub fn parse(s: &str) -> Option<KernelChoice> {
        match s {
            "striped" => Some(KernelChoice::Striped),
            "interseq" => Some(KernelChoice::InterSeq),
            "auto" => Some(KernelChoice::Auto),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`KernelChoice::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            KernelChoice::Striped => "striped",
            KernelChoice::InterSeq => "interseq",
            KernelChoice::Auto => "auto",
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Worker threads (≥ 1). The default is 1: thread count is a *platform*
    /// decision made by the execution environment, not the kernel layer.
    pub threads: usize,
    /// How many top hits to keep.
    pub top_n: usize,
    /// Subjects per self-scheduled chunk.
    pub chunk_size: usize,
    /// Kernel family preference (intrinsics vs portable).
    pub preference: EnginePreference,
    /// Kernel dispatch: striped, inter-sequence, or adaptive.
    pub kernel: KernelChoice,
    /// Scan the database in ascending-length order (chunks become
    /// length-homogeneous, which the inter-sequence kernel likes). Hits are
    /// always reported by database index, so results are unchanged.
    pub sort_by_length: bool,
    /// Software-prefetch the next subject's residue span ahead of use
    /// (inter-sequence lane refill and the striped sequential scan). A pure
    /// CPU hint: scores, rankings and [`KernelStats`] are identical either
    /// way.
    pub prefetch: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            threads: 1,
            top_n: 20,
            chunk_size: crate::exec::chunk_floor(),
            preference: EnginePreference::Auto,
            kernel: KernelChoice::Auto,
            sort_by_length: false,
            prefetch: true,
        }
    }
}

impl SearchConfig {
    /// Validate an externally-supplied configuration (CLI flags, daemon
    /// config, wire payloads). Rejects a chunk size below
    /// [`crate::exec::chunk_floor`] — small chunks silently degrade every
    /// `Auto` dispatch to the striped kernel (the PR 5 bug class) — and a
    /// zero thread count. Internal tests may still construct smaller chunks
    /// directly; the floor is a boundary contract, not a kernel limit.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        if self.top_n == 0 {
            return Err("top_n must be at least 1".into());
        }
        crate::exec::chunk_size(Some(self.chunk_size)).map(|_| ())
    }
}

/// Result of a database search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Ranked hits (best first), at most `top_n`.
    pub hits: Vec<Hit>,
    /// DP cells actually computed: every kernel pass is counted, including
    /// i16/scalar recomputation of saturated subjects.
    pub cells: u64,
    /// Nominal cell count (query length × total subject residues) — the
    /// classic GCUPS denominator, independent of saturation recomputes.
    pub cells_nominal: u64,
    /// Kernel usage across all workers.
    pub stats: KernelStats,
}

impl SearchResult {
    /// Recover the optimal local alignments for the ranked hits (the scan
    /// itself is score-only; only the reported top-N pay the quadratic
    /// traceback — the standard database-search trade-off).
    ///
    /// Each returned alignment's score equals the hit's score by
    /// construction (asserted in debug builds).
    pub fn align_hits(
        &self,
        query: &[u8],
        subjects: &[EncodedSequence],
        scoring: &Scoring,
    ) -> Vec<(Hit, Alignment)> {
        self.hits
            .iter()
            .map(|hit| {
                let alignment = gotoh_align(query, &subjects[hit.db_index].codes, scoring);
                debug_assert_eq!(alignment.score, hit.score, "hit {}", hit.id);
                (hit.clone(), alignment)
            })
            .collect()
    }
}

/// Output of an arena scan: ranked scores without materialised identifiers.
/// This is what sharded callers (the query service) merge; ids are attached
/// at the very end, for the global top-N only.
#[derive(Debug, Clone)]
pub struct ScanOutput {
    /// Ranked scored subjects (best first), at most `top_n`, keyed by
    /// database index.
    pub scored: Vec<Scored>,
    /// DP cells actually computed (all passes).
    pub cells: u64,
    /// Nominal cells (query length × scanned residues).
    pub cells_nominal: u64,
    /// Kernel usage across all workers.
    pub stats: KernelStats,
}

/// Rank hits deterministically: score descending, ties broken by database
/// order ascending. This is THE ranking of the whole workspace — every
/// merge of partial hit lists (per-worker, per-shard, per-process) goes
/// through here, so a result assembled from any decomposition of the
/// database is bit-identical to a single sequential scan.
pub fn rank_hits(hits: &mut [Hit]) {
    // Unstable sort: allocation-free, and deterministic anyway because the
    // comparator is a total order (db_index is unique per list).
    hits.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
}

/// [`rank_hits`]'s total order over the internal [`Scored`] records.
pub fn rank_scored(scored: &mut [Scored]) {
    scored.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
}

/// Merge any number of partial hit lists into the global top `top_n`.
///
/// Correct whenever each input list contains at least the top `top_n` hits
/// of its own partition (lists shorter than that are taken whole): any
/// global top-`top_n` hit is necessarily in its partition's top `top_n`.
pub fn merge_top_n(lists: impl IntoIterator<Item = Vec<Hit>>, top_n: usize) -> Vec<Hit> {
    let mut all: Vec<Hit> = lists.into_iter().flatten().collect();
    rank_hits(&mut all);
    all.truncate(top_n);
    all
}

/// A prepared database search: one query against many subjects.
pub struct DatabaseSearch<'a> {
    query: &'a [u8],
    scoring: &'a Scoring,
    config: SearchConfig,
}

impl<'a> DatabaseSearch<'a> {
    /// Prepare a search for an encoded query.
    pub fn new(query: &'a [u8], scoring: &'a Scoring, config: SearchConfig) -> Self {
        assert!(config.threads >= 1, "at least one worker required");
        assert!(config.chunk_size >= 1, "chunk size must be positive");
        DatabaseSearch {
            query,
            scoring,
            config,
        }
    }

    /// Scan `subjects` and return the ranked hits. The query profiles are
    /// built once and shared by every worker.
    pub fn run(&self, subjects: &[EncodedSequence]) -> SearchResult {
        let prepared = Arc::new(PreparedQuery::new(
            self.query,
            self.scoring,
            self.config.preference,
        ));
        search_prepared(&prepared, subjects, &self.config)
    }
}

/// Scan `subjects` with an already-prepared query (shared profiles). This
/// is the entry point for long-lived callers — a server that keeps
/// [`PreparedQuery`]s across searches skips the per-query profile build
/// entirely. `config.preference` is ignored: the preference is baked into
/// the prepared profiles.
///
/// The subjects are packed into a transient [`DbArena`] (length-sorted when
/// `config.sort_by_length`); callers that already hold an arena should use
/// [`search_arena`] directly.
pub fn search_prepared(
    prepared: &Arc<PreparedQuery>,
    subjects: &[EncodedSequence],
    config: &SearchConfig,
) -> SearchResult {
    let arena = if config.sort_by_length {
        DbArena::length_sorted(subjects)
    } else {
        DbArena::from_encoded(subjects)
    };
    let out = search_arena(prepared, &arena, 0..arena.len(), config);
    let hits = crate::exec::materialize_hits(&out.scored, |i| subjects[i].id.clone());
    SearchResult {
        hits,
        cells: out.cells,
        cells_nominal: out.cells_nominal,
        stats: out.stats,
    }
}

/// Scan the arena positions in `range` with an already-prepared query.
/// Workers claim chunks of scan positions; each chunk is dispatched per
/// `config.kernel`. Returned records are keyed by **database** index
/// ([`DbArena::db_index`]), so the output is independent of the arena's
/// scan order.
pub fn search_arena(
    prepared: &Arc<PreparedQuery>,
    arena: &DbArena,
    range: Range<usize>,
    config: &SearchConfig,
) -> ScanOutput {
    search_arena_with_scratch(prepared, arena, range, config, &mut KernelScratch::new())
}

/// [`search_arena`] with a caller-owned [`KernelScratch`] for the
/// single-worker path. Long-lived executors (serve PE threads, the remote
/// slave) keep one scratch per thread so back-to-back shards find warm,
/// already-sized buffers — the steady-state scan then allocates nothing.
/// With `config.threads > 1` every spawned worker owns its own scratch for
/// its lifetime and `scratch` is left untouched.
pub fn search_arena_with_scratch(
    prepared: &Arc<PreparedQuery>,
    arena: &DbArena,
    range: Range<usize>,
    config: &SearchConfig,
    scratch: &mut KernelScratch,
) -> ScanOutput {
    assert!(config.threads >= 1, "at least one worker required");
    assert!(config.chunk_size >= 1, "chunk size must be positive");
    assert!(range.end <= arena.len(), "scan range out of bounds");
    let span = range.len();
    let n_workers = config.threads.min(span.max(1));
    let cursor = AtomicUsize::new(0);
    let plan = ShardPlan::from_config(range.clone(), config);

    let mut worker_outputs: Vec<(Vec<Scored>, KernelStats)> = if n_workers == 1 {
        // Single worker: run on the caller's scratch so a long-lived owner
        // keeps its warm buffers (moved into the executor and back).
        let mut executor = ShardExecutor::from_scratch(std::mem::take(scratch));
        let out = executor.solo(prepared, arena, &plan, &cursor, config.top_n);
        *scratch = executor.into_scratch();
        vec![out]
    } else {
        let mut outs = Vec::with_capacity(n_workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    let plan = &plan;
                    let cursor = &cursor;
                    scope.spawn(move || {
                        ShardExecutor::new().solo(prepared, arena, plan, cursor, config.top_n)
                    })
                })
                .collect();
            for h in handles {
                outs.push(h.join().expect("search worker panicked"));
            }
        });
        outs
    };

    let mut stats = KernelStats::default();
    for (_, worker_stats) in &worker_outputs {
        stats.merge(worker_stats);
    }
    let mut scored: Vec<Scored> = worker_outputs
        .drain(..)
        .flat_map(|(worker_scored, _)| worker_scored)
        .collect();
    rank_scored(&mut scored);
    scored.truncate(config.top_n);

    ScanOutput {
        scored,
        cells: stats.cells_computed,
        cells_nominal: cells(prepared.query_len(), 1) * arena.range_residues(range),
        stats,
    }
}

/// Scan the arena positions in `range` for a *batch* of prepared queries
/// at once — the fused-scan entry point of the serve path. Each entry is
/// `(prepared query, top_n)`; the returned outputs are paired positionally
/// with the batch.
///
/// Workers claim chunks exactly as [`search_arena`] does, but score every
/// query of the batch against a chunk while its residues are hot in cache:
/// the striped kernel loops per query per chunk, the inter-sequence kernel
/// re-runs its lane buffer over the same chunk per query. Per-query kernel
/// work is *identical* to a solo [`search_arena`] run — the kernel choice
/// depends only on the query and the chunk shape, lane scheduling in the
/// inter-sequence pass is score-independent, and ranking is a total order —
/// so each output is byte-identical to scanning that query alone
/// (`fused_batch_matches_solo_scans` and the serve crate's permutation
/// property prove the law). `config.top_n` is ignored; each entry carries
/// its own.
pub fn search_arena_multi(
    batch: &[(Arc<PreparedQuery>, usize)],
    arena: &DbArena,
    range: Range<usize>,
    config: &SearchConfig,
) -> Vec<ScanOutput> {
    search_arena_multi_with_scratch(batch, arena, range, config, &mut KernelScratch::new())
}

/// [`search_arena_multi`] with a caller-owned [`KernelScratch`] (see
/// [`search_arena_with_scratch`] for the ownership model).
pub fn search_arena_multi_with_scratch(
    batch: &[(Arc<PreparedQuery>, usize)],
    arena: &DbArena,
    range: Range<usize>,
    config: &SearchConfig,
    scratch: &mut KernelScratch,
) -> Vec<ScanOutput> {
    assert!(config.threads >= 1, "at least one worker required");
    assert!(config.chunk_size >= 1, "chunk size must be positive");
    assert!(range.end <= arena.len(), "scan range out of bounds");
    if batch.is_empty() {
        return Vec::new();
    }
    let span = range.len();
    let n_workers = config.threads.min(span.max(1));
    let cursor = AtomicUsize::new(0);
    let plan = ShardPlan::from_config(range.clone(), config);

    let worker_outputs: Vec<Vec<(Vec<Scored>, KernelStats)>> = if n_workers == 1 {
        let mut executor = ShardExecutor::from_scratch(std::mem::take(scratch));
        let out = executor.fused(batch, arena, &plan, &cursor);
        *scratch = executor.into_scratch();
        vec![out]
    } else {
        let mut outs = Vec::with_capacity(n_workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    let plan = &plan;
                    let cursor = &cursor;
                    scope.spawn(move || ShardExecutor::new().fused(batch, arena, plan, cursor))
                })
                .collect();
            for h in handles {
                outs.push(h.join().expect("fused search worker panicked"));
            }
        });
        outs
    };

    let mut merged: Vec<(Vec<Scored>, KernelStats)> =
        vec![(Vec::new(), KernelStats::default()); batch.len()];
    for worker in worker_outputs {
        for (k, (worker_scored, worker_stats)) in worker.into_iter().enumerate() {
            merged[k].0.extend(worker_scored);
            merged[k].1.merge(&worker_stats);
        }
    }
    demux_top_n(merged, batch, arena, range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::score_only::sw_score_affine;
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_db(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let len = rng.random_range(1..max_len);
                EncodedSequence {
                    id: format!("s{i}"),
                    codes: (0..len).map(|_| rng.random_range(0..20u8)).collect(),
                    alphabet: Alphabet::Protein,
                }
            })
            .collect()
    }

    #[test]
    fn hits_match_scalar_scores_and_are_sorted() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(131);
        let query: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(133, 50, 120);
        let s = scoring();
        let result = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                top_n: 50,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(result.hits.len(), 50);
        for pair in result.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        for hit in &result.hits {
            let expect = sw_score_affine(&query, &db[hit.db_index].codes, &s).score;
            assert_eq!(hit.score, expect, "hit {}", hit.id);
        }
        assert_eq!(result.stats.total(), 50);
    }

    #[test]
    fn multithreaded_equals_single_threaded() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(137);
        let query: Vec<u8> = (0..80).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(139, 200, 150);
        let s = scoring();
        let single = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                threads: 1,
                top_n: 10,
                ..Default::default()
            },
        )
        .run(&db);
        let multi = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                threads: 4,
                top_n: 10,
                chunk_size: 7,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(single.hits, multi.hits);
        assert_eq!(single.stats.total(), multi.stats.total());
    }

    #[test]
    fn every_kernel_choice_yields_identical_hits() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(171);
        let query: Vec<u8> = (0..70).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(173, 160, 140);
        let s = scoring();
        let baseline = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                kernel: KernelChoice::Striped,
                top_n: 25,
                ..Default::default()
            },
        )
        .run(&db);
        for kernel in [KernelChoice::InterSeq, KernelChoice::Auto] {
            for sort_by_length in [false, true] {
                let got = DatabaseSearch::new(
                    &query,
                    &s,
                    SearchConfig {
                        kernel,
                        sort_by_length,
                        top_n: 25,
                        threads: 3,
                        chunk_size: 33,
                        ..Default::default()
                    },
                )
                .run(&db);
                assert_eq!(
                    got.hits, baseline.hits,
                    "kernel {kernel:?} sorted {sort_by_length}"
                );
            }
        }
    }

    #[test]
    fn interseq_choice_populates_its_counters() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(177);
        let query: Vec<u8> = (0..50).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(179, 100, 60);
        let s = scoring();
        let result = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                kernel: KernelChoice::InterSeq,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(result.stats.interseq_total(), 100);
        assert_eq!(result.stats.total(), 100);
        assert!(result.stats.chunks_interseq >= 1);
        assert_eq!(result.stats.chunks_striped, 0);
        assert!(result.cells > 0);
    }

    #[test]
    fn auto_prefers_interseq_on_homogeneous_chunks_and_striped_on_tiny_ones() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(181);
        let query: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        let s = scoring();
        // 128 similar-length subjects in one big chunk: inter-sequence.
        let db = random_db(183, 128, 60);
        let bulk = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                kernel: KernelChoice::Auto,
                chunk_size: 128,
                ..Default::default()
            },
        )
        .run(&db);
        assert!(bulk.stats.chunks_interseq >= 1, "{:?}", bulk.stats);
        // 5 subjects: lanes can't fill, Auto must stay striped.
        let tiny = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                kernel: KernelChoice::Auto,
                ..Default::default()
            },
        )
        .run(&db[..5]);
        assert_eq!(tiny.stats.chunks_interseq, 0);
        assert!(tiny.stats.chunks_striped >= 1);
    }

    #[test]
    fn top_n_truncates() {
        let db = random_db(141, 30, 60);
        let query: Vec<u8> = (0..40).map(|i| (i % 20) as u8).collect();
        let s = scoring();
        let result = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                top_n: 5,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(result.hits.len(), 5);
    }

    #[test]
    fn planted_homolog_ranks_first() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(149);
        let query: Vec<u8> = (0..100).map(|_| rng.random_range(0..20u8)).collect();
        let mut db = random_db(151, 40, 120);
        // Plant a copy of the query in the middle of the database.
        db[17] = EncodedSequence {
            id: "planted".into(),
            codes: query.clone(),
            alphabet: Alphabet::Protein,
        };
        let s = scoring();
        let result = DatabaseSearch::new(&query, &s, SearchConfig::default()).run(&db);
        assert_eq!(result.hits[0].id, "planted");
        assert_eq!(
            result.hits[0].score,
            sw_score_affine(&query, &query, &s).score
        );
    }

    #[test]
    fn cells_accounting() {
        let db = random_db(157, 10, 50);
        let total: u64 = db.iter().map(|d| d.len() as u64).sum();
        let query: Vec<u8> = (0..25).map(|i| (i % 20) as u8).collect();
        let s = scoring();
        let result = DatabaseSearch::new(&query, &s, SearchConfig::default()).run(&db);
        assert_eq!(result.cells_nominal, 25 * total);
        assert_eq!(result.cells, result.stats.cells_computed);
        // No subject here saturates i8, so actual equals nominal.
        assert_eq!(result.cells, result.cells_nominal);
    }

    #[test]
    fn saturating_subjects_cost_extra_cells() {
        let query: Vec<u8> = (0..200).map(|i| (i % 20) as u8).collect();
        let db = vec![EncodedSequence {
            id: "self".into(),
            codes: query.clone(),
            alphabet: Alphabet::Protein,
        }];
        let s = scoring();
        for kernel in [KernelChoice::Striped, KernelChoice::InterSeq] {
            let result = DatabaseSearch::new(
                &query,
                &s,
                SearchConfig {
                    kernel,
                    ..Default::default()
                },
            )
            .run(&db);
            assert!(
                result.cells > result.cells_nominal,
                "kernel {kernel:?}: self-match must saturate i8 and recompute"
            );
        }
    }

    #[test]
    fn align_hits_recovers_consistent_alignments() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(163);
        let query: Vec<u8> = (0..50).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(165, 25, 80);
        let s = scoring();
        let result = DatabaseSearch::new(
            &query,
            &s,
            SearchConfig {
                top_n: 5,
                ..Default::default()
            },
        )
        .run(&db);
        let aligned = result.align_hits(&query, &db, &s);
        assert_eq!(aligned.len(), 5);
        for (hit, alignment) in &aligned {
            assert_eq!(alignment.score, hit.score);
            if !alignment.is_empty() {
                assert_eq!(
                    alignment.rescore(&query, &db[hit.db_index].codes, &s),
                    hit.score
                );
            }
        }
    }

    #[test]
    fn empty_database_yields_no_hits() {
        let query: Vec<u8> = vec![0, 1, 2];
        let s = scoring();
        let result = DatabaseSearch::new(&query, &s, SearchConfig::default()).run(&[]);
        assert!(result.hits.is_empty());
        assert_eq!(result.cells, 0);
        assert_eq!(result.cells_nominal, 0);
    }

    #[test]
    fn merge_top_n_matches_whole_db_scan() {
        // Shard the database arbitrarily, scan each shard, merge the
        // per-shard top-N lists: the ranking must be bit-identical to a
        // single scan of the whole database. This is the invariant the
        // query service relies on when it splits one query across tasks.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(167);
        let query: Vec<u8> = (0..70).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(169, 120, 100);
        let s = scoring();
        let cfg = SearchConfig {
            top_n: 15,
            ..Default::default()
        };
        let whole = DatabaseSearch::new(&query, &s, cfg.clone()).run(&db);

        let prepared = Arc::new(PreparedQuery::new(&query, &s, cfg.preference));
        let bounds = [0usize, 13, 50, 51, 120];
        let shard_lists: Vec<Vec<Hit>> = bounds
            .windows(2)
            .map(|w| {
                let mut part = search_prepared(&prepared, &db[w[0]..w[1]], &cfg).hits;
                // Shard hits index into the shard; rebase to global order.
                for h in &mut part {
                    h.db_index += w[0];
                }
                part
            })
            .collect();
        let merged = merge_top_n(shard_lists, cfg.top_n);
        assert_eq!(merged, whole.hits);
    }

    #[test]
    fn search_arena_subrange_matches_subject_slice() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(191);
        let query: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        let db = random_db(193, 80, 90);
        let s = scoring();
        let cfg = SearchConfig {
            top_n: 10,
            ..Default::default()
        };
        let prepared = Arc::new(PreparedQuery::new(&query, &s, cfg.preference));
        let arena = DbArena::from_encoded(&db);
        let out = search_arena(&prepared, &arena, 20..55, &cfg);
        let slice = search_prepared(&prepared, &db[20..55], &cfg);
        let rebased: Vec<Scored> = slice
            .hits
            .iter()
            .map(|h| Scored {
                db_index: h.db_index + 20,
                score: h.score,
                subject_len: h.subject_len,
            })
            .collect();
        assert_eq!(out.scored, rebased);
        assert_eq!(out.cells_nominal, slice.cells_nominal);
    }

    /// The fused-scan law: each output of a batched scan is byte-identical
    /// to scanning that query alone with the same configuration — scored
    /// list, cell counts, and kernel counters all match, across kernel
    /// choices, per-entry depths, and thread counts.
    #[test]
    fn fused_batch_matches_solo_scans() {
        let db = random_db(197, 120, 110);
        let s = scoring();
        let arena = DbArena::from_encoded(&db);
        let queries: Vec<Vec<u8>> = [(199u64, 40), (211, 80), (223, 17), (227, 60)]
            .iter()
            .map(|&(seed, len)| {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                (0..len).map(|_| rng.random_range(0..20u8)).collect()
            })
            .collect();
        for kernel in [
            KernelChoice::Auto,
            KernelChoice::Striped,
            KernelChoice::InterSeq,
        ] {
            for threads in [1, 3] {
                let cfg = SearchConfig {
                    threads,
                    chunk_size: 9,
                    kernel,
                    ..Default::default()
                };
                let batch: Vec<(Arc<PreparedQuery>, usize)> = queries
                    .iter()
                    .enumerate()
                    .map(|(i, q)| {
                        (
                            Arc::new(PreparedQuery::new(q, &s, cfg.preference)),
                            5 + 3 * i, // distinct per-entry depths
                        )
                    })
                    .collect();
                let fused = search_arena_multi(&batch, &arena, 0..arena.len(), &cfg);
                assert_eq!(fused.len(), batch.len());
                for ((prepared, top_n), out) in batch.iter().zip(&fused) {
                    let solo_cfg = SearchConfig {
                        top_n: *top_n,
                        ..cfg
                    };
                    let solo = search_arena(prepared, &arena, 0..arena.len(), &solo_cfg);
                    assert_eq!(out.scored, solo.scored, "{kernel:?} t{threads}");
                    assert_eq!(out.cells, solo.cells);
                    assert_eq!(out.cells_nominal, solo.cells_nominal);
                    assert_eq!(out.stats.total(), solo.stats.total());
                }
            }
        }
    }

    /// A single-entry batch degrades to exactly `search_arena`, and an
    /// empty batch returns nothing without touching the arena.
    #[test]
    fn fused_batch_edge_sizes() {
        let db = random_db(229, 40, 70);
        let s = scoring();
        let arena = DbArena::from_encoded(&db);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(233);
        let query: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
        let cfg = SearchConfig {
            top_n: 7,
            ..Default::default()
        };
        let prepared = Arc::new(PreparedQuery::new(&query, &s, cfg.preference));
        let fused = search_arena_multi(&[(Arc::clone(&prepared), 7)], &arena, 10..35, &cfg);
        let solo = search_arena(&prepared, &arena, 10..35, &cfg);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].scored, solo.scored);
        assert_eq!(fused[0].cells, solo.cells);
        assert!(search_arena_multi(&[], &arena, 0..arena.len(), &cfg).is_empty());
    }

    #[test]
    fn merge_top_n_is_deterministic_on_ties() {
        let hit = |db_index: usize, score: i32| Hit {
            db_index,
            id: format!("s{db_index}"),
            score,
            subject_len: 10,
        };
        // Two lists with interleaved ties: db order must break them.
        let a = vec![hit(4, 50), hit(0, 40), hit(6, 40)];
        let b = vec![hit(2, 50), hit(1, 40), hit(5, 60)];
        let merged = merge_top_n([a, b], 4);
        let order: Vec<usize> = merged.iter().map(|h| h.db_index).collect();
        assert_eq!(order, vec![5, 2, 4, 0]);
    }
}
