//! x86-64 AVX2 kernels for the inter-sequence recurrence (32 × i8 and
//! 16 × i16 lanes per 256-bit register).
//!
//! Same shape as [`crate::interseq_sse`] — lanes hold different database
//! sequences, the score gather runs the 16 × 16 byte transpose — but twice
//! the lane count. The i8 kernel transposes two 16-lane groups per matrix
//! half and stores them as the two 128-bit halves of each 32-byte `dprofile`
//! row; the i16 kernel transposes one 16-lane group and sign-extends it with
//! `vpmovsxbw`. Unlike the striped kernels, inter-sequence DP needs no
//! cross-lane shifts, so the AVX2 port is pure element-wise arithmetic.

#![allow(unsafe_code)]

use crate::engine::PreparedQuery;
use crate::scratch::WidthBuf;
use swhybrid_seq::arena::DbArena;

/// Hot-path variant of [`pass_i8`]: results land in `buf.results`, DP rows
/// in `buf.h`/`buf.e` (reused, zero steady-state allocations). Returns
/// whether the vectorized pass ran.
pub(crate) fn pass_i8_buf(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i8>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some(matrix32) = prepared.interseq_matrix.as_deref() {
            if crate::avx2::avx2_available() {
                let (goe, ext) = prepared.gap_penalties();
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::pass_i8_avx2(
                        prepared.query(),
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.h,
                        &mut buf.e,
                        &mut buf.results,
                    )
                };
                return true;
            }
        }
    }
    let _ = (prepared, arena, jobs, prefetch, buf);
    false
}

/// Run the 32 × i8 inter-sequence pass if the CPU supports AVX2 and the
/// alphabet fits the padded score table.
pub fn pass_i8(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Option<i32>>> {
    let mut buf = WidthBuf::new();
    pass_i8_buf(prepared, arena, jobs, false, &mut buf).then_some(buf.results)
}

/// Hot-path variant of [`pass_i16`] (see [`pass_i8_buf`]).
pub(crate) fn pass_i16_buf(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i16>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some(matrix32) = prepared.interseq_matrix.as_deref() {
            if crate::avx2::avx2_available() {
                let (goe, ext) = prepared.gap_penalties();
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::pass_i16_avx2(
                        prepared.query(),
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.h,
                        &mut buf.e,
                        &mut buf.results,
                    )
                };
                return true;
            }
        }
    }
    let _ = (prepared, arena, jobs, prefetch, buf);
    false
}

/// Run the 16 × i16 inter-sequence pass if the CPU supports AVX2.
pub fn pass_i16(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Option<i32>>> {
    let mut buf = WidthBuf::new();
    pass_i16_buf(prepared, arena, jobs, false, &mut buf).then_some(buf.results)
}

/// Hot-path variant of [`multi_pass_i8`]: per-query results land in
/// `buf.mresults`, DP state in `buf.mh`/`buf.me`/`buf.mbest`. Returns
/// whether the fused pass ran.
pub(crate) fn multi_pass_i8_buf(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i8>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some((matrix32, goe, ext)) = crate::interseq::fusable_batch(batch) {
            if crate::avx2::avx2_available() {
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::multi_pass_i8_avx2(
                        batch,
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.mh,
                        &mut buf.me,
                        &mut buf.mbest,
                        &mut buf.mresults,
                    )
                };
                return true;
            }
        }
    }
    let _ = (batch, arena, jobs, prefetch, buf);
    false
}

/// Run the fused multi-query 32 × i8 pass: every query scored against
/// `jobs` in one shared lane traversal, the per-column score gather built
/// once and reused by each query's DP loop. `None` when the CPU lacks AVX2
/// or the batch does not share a single scoring.
pub fn multi_pass_i8(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Vec<Option<i32>>>> {
    let mut buf = WidthBuf::new();
    multi_pass_i8_buf(batch, arena, jobs, false, &mut buf).then_some(buf.mresults)
}

/// Hot-path variant of [`multi_pass_i16`] (see [`multi_pass_i8_buf`]).
pub(crate) fn multi_pass_i16_buf(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<i16>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some((matrix32, goe, ext)) = crate::interseq::fusable_batch(batch) {
            if crate::avx2::avx2_available() {
                // SAFETY: feature presence checked above.
                unsafe {
                    x86::multi_pass_i16_avx2(
                        batch,
                        matrix32,
                        goe,
                        ext,
                        arena,
                        jobs,
                        prefetch,
                        &mut buf.mh,
                        &mut buf.me,
                        &mut buf.mbest,
                        &mut buf.mresults,
                    )
                };
                return true;
            }
        }
    }
    let _ = (batch, arena, jobs, prefetch, buf);
    false
}

/// Run the fused multi-query 16 × i16 pass (the rerun width for subjects
/// that saturate the i8 pass).
pub fn multi_pass_i16(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    jobs: &[usize],
) -> Option<Vec<Vec<Option<i32>>>> {
    let mut buf = WidthBuf::new();
    multi_pass_i16_buf(batch, arena, jobs, false, &mut buf).then_some(buf.mresults)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;
    use swhybrid_seq::arena::DbArena;

    use crate::interseq_sse::x86::{interseq_pass, transpose_16x16, LaneCursors, IDLE};

    interseq_pass!(
        pass_i8_avx2,
        multi_pass_i8_avx2,
        "avx2",
        i8,
        32,
        |query, h, e, best, dprofile, goe, ext, m| {
            let v_goe = _mm256_set1_epi8(goe.clamp(i8::MIN as i32, i8::MAX as i32) as i8);
            let v_ext = _mm256_set1_epi8(ext.clamp(i8::MIN as i32, i8::MAX as i32) as i8);
            let v_zero = _mm256_setzero_si256();
            let mut v_f = _mm256_set1_epi8(i8::MIN);
            let mut v_diag = v_zero;
            let mut v_best = _mm256_loadu_si256(best.as_ptr() as *const __m256i);
            for j in 1..=m {
                let off = j * 32;
                let v_h_old = _mm256_loadu_si256(h.as_ptr().add(off) as *const __m256i);
                let v_e_old = _mm256_loadu_si256(e.as_ptr().add(off) as *const __m256i);
                let v_e = _mm256_max_epi8(
                    _mm256_subs_epi8(v_h_old, v_goe),
                    _mm256_subs_epi8(v_e_old, v_ext),
                );
                let v_s = _mm256_loadu_si256(
                    dprofile
                        .as_ptr()
                        .add(*query.get_unchecked(j - 1) as usize * 32)
                        as *const __m256i,
                );
                let mut v_v = _mm256_adds_epi8(v_diag, v_s);
                v_v = _mm256_max_epi8(v_v, v_e);
                v_v = _mm256_max_epi8(v_v, v_f);
                v_v = _mm256_max_epi8(v_v, v_zero);
                _mm256_storeu_si256(h.as_mut_ptr().add(off) as *mut __m256i, v_v);
                _mm256_storeu_si256(e.as_mut_ptr().add(off) as *mut __m256i, v_e);
                v_best = _mm256_max_epi8(v_best, v_v);
                v_f = _mm256_max_epi8(_mm256_subs_epi8(v_v, v_goe), _mm256_subs_epi8(v_f, v_ext));
                v_diag = v_h_old;
            }
            _mm256_storeu_si256(best.as_mut_ptr() as *mut __m256i, v_best);
        },
        |_query, matrix32, codes, halves, dprofile| {
            // Two 16-lane transposes per matrix half; each output row is a
            // 128-bit half of the 32-byte dprofile row for that symbol.
            for half in 0..halves {
                for group in 0..2 {
                    let mut rows = [_mm_setzero_si128(); 16];
                    for lane in 0..16 {
                        rows[lane] = _mm_loadu_si128(
                            matrix32
                                .as_ptr()
                                .add(codes[group * 16 + lane] * 32 + half * 16)
                                as *const __m128i,
                        );
                    }
                    let t = transpose_16x16(rows);
                    for (q, tq) in t.iter().enumerate() {
                        _mm_storeu_si128(
                            dprofile.as_mut_ptr().add((half * 16 + q) * 32 + group * 16)
                                as *mut __m128i,
                            *tq,
                        );
                    }
                }
            }
        }
    );

    interseq_pass!(
        pass_i16_avx2,
        multi_pass_i16_avx2,
        "avx2",
        i16,
        16,
        |query, h, e, best, dprofile, goe, ext, m| {
            let v_goe = _mm256_set1_epi16(goe.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
            let v_ext = _mm256_set1_epi16(ext.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
            let v_zero = _mm256_setzero_si256();
            let mut v_f = _mm256_set1_epi16(i16::MIN);
            let mut v_diag = v_zero;
            let mut v_best = _mm256_loadu_si256(best.as_ptr() as *const __m256i);
            for j in 1..=m {
                let off = j * 16;
                let v_h_old = _mm256_loadu_si256(h.as_ptr().add(off) as *const __m256i);
                let v_e_old = _mm256_loadu_si256(e.as_ptr().add(off) as *const __m256i);
                let v_e = _mm256_max_epi16(
                    _mm256_subs_epi16(v_h_old, v_goe),
                    _mm256_subs_epi16(v_e_old, v_ext),
                );
                let v_s = _mm256_loadu_si256(
                    dprofile
                        .as_ptr()
                        .add(*query.get_unchecked(j - 1) as usize * 16)
                        as *const __m256i,
                );
                let mut v_v = _mm256_adds_epi16(v_diag, v_s);
                v_v = _mm256_max_epi16(v_v, v_e);
                v_v = _mm256_max_epi16(v_v, v_f);
                v_v = _mm256_max_epi16(v_v, v_zero);
                _mm256_storeu_si256(h.as_mut_ptr().add(off) as *mut __m256i, v_v);
                _mm256_storeu_si256(e.as_mut_ptr().add(off) as *mut __m256i, v_e);
                v_best = _mm256_max_epi16(v_best, v_v);
                v_f =
                    _mm256_max_epi16(_mm256_subs_epi16(v_v, v_goe), _mm256_subs_epi16(v_f, v_ext));
                v_diag = v_h_old;
            }
            _mm256_storeu_si256(best.as_mut_ptr() as *mut __m256i, v_best);
        },
        |_query, matrix32, codes, halves, dprofile| {
            // One 16-lane transpose per half, then sign-extend the bytes to
            // 16 × i16 with vpmovsxbw.
            for half in 0..halves {
                let mut rows = [_mm_setzero_si128(); 16];
                for lane in 0..16 {
                    rows[lane] = _mm_loadu_si128(
                        matrix32.as_ptr().add(codes[lane] * 32 + half * 16) as *const __m128i,
                    );
                }
                let t = transpose_16x16(rows);
                for (q, tq) in t.iter().enumerate() {
                    let wide = _mm256_cvtepi8_epi16(*tq);
                    _mm256_storeu_si256(
                        dprofile.as_mut_ptr().add((half * 16 + q) * 16) as *mut __m256i,
                        wide,
                    );
                }
            }
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EnginePreference;
    use crate::interseq::pass_portable;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
    use swhybrid_seq::sequence::EncodedSequence;
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_subjects(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| EncodedSequence {
                id: format!("s{i}"),
                codes: (0..rng.random_range(1..max_len))
                    .map(|_| rng.random_range(0..20u8))
                    .collect(),
                alphabet: Alphabet::Protein,
            })
            .collect()
    }

    fn check_pass_matches_portable<T: crate::lanes::Lane>(
        run: impl Fn(
            &crate::engine::PreparedQuery,
            &swhybrid_seq::arena::DbArena,
            &[usize],
        ) -> Option<Vec<Option<i32>>>,
        seed: u64,
    ) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let s = scoring();
        for round in 0..6 {
            let m = rng.random_range(1..120);
            let query: Vec<u8> = (0..m).map(|_| rng.random_range(0..20u8)).collect();
            // More subjects than SSE tests: exercise several 32-lane refills.
            let subjects = random_subjects(seed + round, 90, 70);
            let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
            let jobs: Vec<usize> = (0..arena.len()).collect();
            let prepared = crate::engine::PreparedQuery::new(&query, &s, EnginePreference::Simd);
            let Some(simd) = run(&prepared, &arena, &jobs) else {
                return; // CPU lacks AVX2; nothing to compare.
            };
            let portable = pass_portable::<T>(&query, &s, &arena, &jobs);
            assert_eq!(simd, portable, "round {round} m={m}");
        }
    }

    #[test]
    fn i8_pass_matches_portable() {
        check_pass_matches_portable::<i8>(pass_i8, 401);
    }

    #[test]
    fn i16_pass_matches_portable() {
        check_pass_matches_portable::<i16>(pass_i16, 403);
    }

    #[test]
    fn i8_pass_saturation_agrees_with_portable() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(407);
        let query: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        let mut subjects = random_subjects(408, 50, 40);
        subjects[33] = EncodedSequence {
            id: "self".into(),
            codes: query.clone(),
            alphabet: Alphabet::Protein,
        };
        let s = scoring();
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared = crate::engine::PreparedQuery::new(&query, &s, EnginePreference::Simd);
        let Some(simd) = pass_i8(&prepared, &arena, &jobs) else {
            return;
        };
        assert_eq!(simd[33], None, "planted self-match must saturate i8");
        assert_eq!(simd, pass_portable::<i8>(&query, &s, &arena, &jobs));
    }

    #[test]
    fn fewer_subjects_than_lanes() {
        let query: Vec<u8> = vec![2, 7, 1, 8];
        let s = scoring();
        let subjects = random_subjects(411, 5, 30);
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared = crate::engine::PreparedQuery::new(&query, &s, EnginePreference::Simd);
        let Some(simd) = pass_i8(&prepared, &arena, &jobs) else {
            return;
        };
        assert_eq!(simd, pass_portable::<i8>(&query, &s, &arena, &jobs));
    }

    #[test]
    fn multi_pass_i8_matches_solo_passes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(421);
        let s = scoring();
        let mut subjects = random_subjects(422, 90, 70);
        // Different lengths on purpose: the fused pass must keep each
        // query's own DP extent while sharing the lane traversal.
        let queries: Vec<Vec<u8>> = [20usize, 47, 20, 111]
            .iter()
            .map(|&m| (0..m).map(|_| rng.random_range(0..20u8)).collect())
            .collect();
        // Plant a subject that saturates the pass for query 1 only.
        subjects[40] = EncodedSequence {
            id: "self".into(),
            codes: queries[1].clone(),
            alphabet: Alphabet::Protein,
        };
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared: Vec<_> = queries
            .iter()
            .map(|q| crate::engine::PreparedQuery::new(q, &s, EnginePreference::Simd))
            .collect();
        let batch: Vec<&crate::engine::PreparedQuery> = prepared.iter().collect();
        let Some(multi) = multi_pass_i8(&batch, &arena, &jobs) else {
            return; // CPU lacks the feature; nothing to compare.
        };
        assert_eq!(multi.len(), batch.len());
        for (q, p) in batch.iter().enumerate() {
            let solo = pass_i8(p, &arena, &jobs).unwrap();
            assert_eq!(multi[q], solo, "query {q}");
        }
        assert_eq!(multi[1][40], None, "planted self-match must saturate i8");
    }

    #[test]
    fn multi_pass_i16_matches_solo_passes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(425);
        let s = scoring();
        let mut subjects = random_subjects(426, 90, 70);
        // Different lengths on purpose: the fused pass must keep each
        // query's own DP extent while sharing the lane traversal.
        let queries: Vec<Vec<u8>> = [20usize, 47, 20, 111]
            .iter()
            .map(|&m| (0..m).map(|_| rng.random_range(0..20u8)).collect())
            .collect();
        // Plant a subject that saturates the pass for query 1 only.
        subjects[40] = EncodedSequence {
            id: "self".into(),
            codes: queries[1].iter().cycle().take(3100).copied().collect(),
            alphabet: Alphabet::Protein,
        };
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        let prepared: Vec<_> = queries
            .iter()
            .map(|q| crate::engine::PreparedQuery::new(q, &s, EnginePreference::Simd))
            .collect();
        let batch: Vec<&crate::engine::PreparedQuery> = prepared.iter().collect();
        let Some(multi) = multi_pass_i16(&batch, &arena, &jobs) else {
            return; // CPU lacks the feature; nothing to compare.
        };
        assert_eq!(multi.len(), batch.len());
        for (q, p) in batch.iter().enumerate() {
            let solo = pass_i16(p, &arena, &jobs).unwrap();
            assert_eq!(multi[q], solo, "query {q}");
        }
        let _ = &multi;
    }

    #[test]
    fn multi_pass_refuses_mixed_scorings() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(431);
        let query: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
        let cheap = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine { open: 4, extend: 1 },
        };
        let a = crate::engine::PreparedQuery::new(&query, &scoring(), EnginePreference::Simd);
        let b = crate::engine::PreparedQuery::new(&query, &cheap, EnginePreference::Simd);
        let subjects = random_subjects(432, 8, 30);
        let arena = swhybrid_seq::arena::DbArena::from_encoded(&subjects);
        let jobs: Vec<usize> = (0..arena.len()).collect();
        assert!(
            multi_pass_i8(&[&a, &b], &arena, &jobs).is_none(),
            "mixed gap penalties must refuse to fuse"
        );
    }
}
