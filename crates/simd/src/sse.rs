//! x86-64 intrinsics kernels for the striped recurrence.
//!
//! Two widths are provided, mirroring the paper's adapted Farrar kernel:
//!
//! * [`sw_striped_i16_sse2`] — 8 × i16 lanes, plain SSE2 (signed 16-bit
//!   `max`/saturating ops have existed since SSE2),
//! * [`sw_striped_i8_sse41`] — 16 × i8 lanes; signed byte `max`
//!   (`_mm_max_epi8`) arrived with SSE4.1, which is exactly why Farrar's
//!   original used unsigned bytes with a bias — the paper's "signed
//!   integers instead of unsigned" adaptation presumes a ≥ SSE4.1 machine
//!   (their Core i7 has SSE4.2).
//!
//! Both compute identical results to [`crate::portable`]; the test suite
//! compares them score-for-score on random inputs.

#![allow(unsafe_code)]

use crate::portable::{StripedOutcome, Workspace};
use crate::profile::StripedProfile;

/// Whether the 16-bit SSE2 kernel can run on this machine.
pub fn sse2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("sse2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the 8-bit SSE4.1 kernel can run on this machine.
pub fn sse41_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("sse4.1")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Safe wrapper: run the 16-bit kernel if the CPU supports it. `ws` holds
/// the DP rows and is reused (grown high-water) across calls.
pub fn sw_striped_i16(
    profile: &StripedProfile<i16>,
    subject: &[u8],
    goe: i32,
    ext: i32,
    ws: &mut Workspace<i16>,
) -> Option<StripedOutcome> {
    #[cfg(target_arch = "x86_64")]
    {
        if sse2_available() {
            // SAFETY: feature presence checked above.
            return Some(unsafe { x86::sw_striped_i16_sse2(profile, subject, goe, ext, ws) });
        }
    }
    let _ = (profile, subject, goe, ext, ws);
    None
}

/// Safe wrapper: run the 8-bit kernel if the CPU supports it. `ws` holds
/// the DP rows and is reused (grown high-water) across calls.
pub fn sw_striped_i8(
    profile: &StripedProfile<i8>,
    subject: &[u8],
    goe: i32,
    ext: i32,
    ws: &mut Workspace<i8>,
) -> Option<StripedOutcome> {
    #[cfg(target_arch = "x86_64")]
    {
        if sse41_available() {
            // SAFETY: feature presence checked above.
            return Some(unsafe { x86::sw_striped_i8_sse41(profile, subject, goe, ext, ws) });
        }
    }
    let _ = (profile, subject, goe, ext, ws);
    None
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// 8 × i16 striped kernel (SSE2).
    ///
    /// # Safety
    /// The caller must ensure the CPU supports SSE2 (always true on
    /// x86-64, but we keep the contract explicit).
    #[target_feature(enable = "sse2")]
    pub unsafe fn sw_striped_i16_sse2(
        profile: &StripedProfile<i16>,
        subject: &[u8],
        goe: i32,
        ext: i32,
        ws: &mut Workspace<i16>,
    ) -> StripedOutcome {
        const LANES: usize = 8;
        debug_assert_eq!(profile.lanes, LANES);
        let seg_len = profile.seg_len;
        let slots = seg_len * LANES;
        ws.reset(slots);
        // Raw pointers hoisted out of the DP loop: going through the
        // workspace's Vec headers each iteration would force the compiler
        // to re-load the data pointers after every store.
        let mut h_load = ws.h_load.as_mut_ptr();
        let mut h_store = ws.h_store.as_mut_ptr();
        let e_arr = ws.e.as_mut_ptr();

        let v_goe = _mm_set1_epi16(goe as i16);
        let v_ext = _mm_set1_epi16(ext as i16);
        let v_zero = _mm_setzero_si128();
        let v_min_lane0 = _mm_insert_epi16(v_zero, i16::MIN as i32, 0);
        let mut v_best = _mm_set1_epi16(i16::MIN);

        for &r in subject {
            let mut v_f = _mm_set1_epi16(i16::MIN);
            // vH = previous column's last vector shifted one lane up
            // (lane 0 ← zero boundary; slli fills with zeros).
            let mut v_h = _mm_slli_si128::<2>(_mm_loadu_si128(
                h_load.add((seg_len - 1) * LANES) as *const __m128i
            ));

            for k in 0..seg_len {
                let prof = _mm_loadu_si128(profile.vector_ptr(r, k) as *const __m128i);
                v_h = _mm_adds_epi16(v_h, prof);
                let v_e = _mm_loadu_si128(e_arr.add(k * LANES) as *const __m128i);
                v_h = _mm_max_epi16(v_h, v_e);
                v_h = _mm_max_epi16(v_h, v_f);
                v_h = _mm_max_epi16(v_h, v_zero);
                v_best = _mm_max_epi16(v_best, v_h);
                _mm_storeu_si128(h_store.add(k * LANES) as *mut __m128i, v_h);
                let h_open = _mm_subs_epi16(v_h, v_goe);
                let v_e2 = _mm_max_epi16(h_open, _mm_subs_epi16(v_e, v_ext));
                _mm_storeu_si128(e_arr.add(k * LANES) as *mut __m128i, v_e2);
                v_f = _mm_max_epi16(h_open, _mm_subs_epi16(v_f, v_ext));
                v_h = _mm_loadu_si128(h_load.add(k * LANES) as *const __m128i);
            }

            // Lazy-F fixpoint (break condition argued in crate::portable:
            // the carry must be *dominated* everywhere, not merely have
            // produced no H change this pass).
            'lazy: for _ in 0..LANES {
                v_f = _mm_or_si128(_mm_slli_si128::<2>(v_f), v_min_lane0);
                let mut alive = false;
                for k in 0..seg_len {
                    let mut vh = _mm_loadu_si128(h_store.add(k * LANES) as *const __m128i);
                    let gt = _mm_movemask_epi8(_mm_cmpgt_epi16(v_f, vh));
                    if gt != 0 {
                        vh = _mm_max_epi16(vh, v_f);
                        _mm_storeu_si128(h_store.add(k * LANES) as *mut __m128i, vh);
                        let h_open = _mm_subs_epi16(vh, v_goe);
                        let e_old = _mm_loadu_si128(e_arr.add(k * LANES) as *const __m128i);
                        _mm_storeu_si128(
                            e_arr.add(k * LANES) as *mut __m128i,
                            _mm_max_epi16(e_old, h_open),
                        );
                        v_best = _mm_max_epi16(v_best, vh);
                    }
                    let h_open = _mm_subs_epi16(vh, v_goe);
                    if _mm_movemask_epi8(_mm_cmpgt_epi16(v_f, h_open)) != 0 {
                        alive = true;
                    }
                    v_f = _mm_max_epi16(_mm_subs_epi16(v_f, v_ext), h_open);
                }
                if !alive {
                    break 'lazy;
                }
            }

            std::mem::swap(&mut h_load, &mut h_store);
        }

        let mut lanes_out = [0i16; LANES];
        _mm_storeu_si128(lanes_out.as_mut_ptr() as *mut __m128i, v_best);
        let best = lanes_out.iter().copied().max().unwrap().max(0);
        StripedOutcome {
            score: best as i32,
            saturated: best == i16::MAX,
        }
    }

    /// 16 × i8 striped kernel (SSE4.1, for `_mm_max_epi8`).
    ///
    /// # Safety
    /// The caller must ensure the CPU supports SSE4.1.
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn sw_striped_i8_sse41(
        profile: &StripedProfile<i8>,
        subject: &[u8],
        goe: i32,
        ext: i32,
        ws: &mut Workspace<i8>,
    ) -> StripedOutcome {
        const LANES: usize = 16;
        debug_assert_eq!(profile.lanes, LANES);
        let seg_len = profile.seg_len;
        let slots = seg_len * LANES;
        ws.reset(slots);
        // Raw pointers hoisted out of the DP loop: going through the
        // workspace's Vec headers each iteration would force the compiler
        // to re-load the data pointers after every store.
        let mut h_load = ws.h_load.as_mut_ptr();
        let mut h_store = ws.h_store.as_mut_ptr();
        let e_arr = ws.e.as_mut_ptr();

        let v_goe = _mm_set1_epi8(goe.clamp(i8::MIN as i32, i8::MAX as i32) as i8);
        let v_ext = _mm_set1_epi8(ext.clamp(i8::MIN as i32, i8::MAX as i32) as i8);
        let v_zero = _mm_setzero_si128();
        let v_min_lane0 = _mm_insert_epi8(v_zero, i8::MIN as i32, 0);
        let mut v_best = _mm_set1_epi8(i8::MIN);

        for &r in subject {
            let mut v_f = _mm_set1_epi8(i8::MIN);
            let mut v_h = _mm_slli_si128::<1>(_mm_loadu_si128(
                h_load.add((seg_len - 1) * LANES) as *const __m128i
            ));

            for k in 0..seg_len {
                let prof = _mm_loadu_si128(profile.vector_ptr(r, k) as *const __m128i);
                v_h = _mm_adds_epi8(v_h, prof);
                let v_e = _mm_loadu_si128(e_arr.add(k * LANES) as *const __m128i);
                v_h = _mm_max_epi8(v_h, v_e);
                v_h = _mm_max_epi8(v_h, v_f);
                v_h = _mm_max_epi8(v_h, v_zero);
                v_best = _mm_max_epi8(v_best, v_h);
                _mm_storeu_si128(h_store.add(k * LANES) as *mut __m128i, v_h);
                let h_open = _mm_subs_epi8(v_h, v_goe);
                let v_e2 = _mm_max_epi8(h_open, _mm_subs_epi8(v_e, v_ext));
                _mm_storeu_si128(e_arr.add(k * LANES) as *mut __m128i, v_e2);
                v_f = _mm_max_epi8(h_open, _mm_subs_epi8(v_f, v_ext));
                v_h = _mm_loadu_si128(h_load.add(k * LANES) as *const __m128i);
            }

            'lazy: for _ in 0..LANES {
                v_f = _mm_or_si128(_mm_slli_si128::<1>(v_f), v_min_lane0);
                let mut alive = false;
                for k in 0..seg_len {
                    let mut vh = _mm_loadu_si128(h_store.add(k * LANES) as *const __m128i);
                    let gt = _mm_movemask_epi8(_mm_cmpgt_epi8(v_f, vh));
                    if gt != 0 {
                        vh = _mm_max_epi8(vh, v_f);
                        _mm_storeu_si128(h_store.add(k * LANES) as *mut __m128i, vh);
                        let h_open = _mm_subs_epi8(vh, v_goe);
                        let e_old = _mm_loadu_si128(e_arr.add(k * LANES) as *const __m128i);
                        _mm_storeu_si128(
                            e_arr.add(k * LANES) as *mut __m128i,
                            _mm_max_epi8(e_old, h_open),
                        );
                        v_best = _mm_max_epi8(v_best, vh);
                    }
                    let h_open = _mm_subs_epi8(vh, v_goe);
                    if _mm_movemask_epi8(_mm_cmpgt_epi8(v_f, h_open)) != 0 {
                        alive = true;
                    }
                    v_f = _mm_max_epi8(_mm_subs_epi8(v_f, v_ext), h_open);
                }
                if !alive {
                    break 'lazy;
                }
            }

            std::mem::swap(&mut h_load, &mut h_store);
        }

        let mut lanes_out = [0i8; LANES];
        _mm_storeu_si128(lanes_out.as_mut_ptr() as *mut __m128i, v_best);
        let best = lanes_out.iter().copied().max().unwrap().max(0);
        StripedOutcome {
            score: best as i32,
            saturated: best == i8::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::Lane;
    use crate::portable::{sw_striped_portable, Workspace};
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::SubstMatrix;

    #[allow(clippy::type_complexity)]
    fn check_against_portable<T: Lane>(
        run_sse: impl Fn(
            &StripedProfile<T>,
            &[u8],
            i32,
            i32,
            &mut Workspace<T>,
        ) -> Option<StripedOutcome>,
        seed: u64,
        max_len: usize,
    ) {
        let matrix = SubstMatrix::blosum62();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut ws = Workspace::<T>::new();
        let mut sse_ws = Workspace::<T>::new();
        let mut ran = false;
        for round in 0..50 {
            let ql = rng.random_range(1..max_len);
            let tl = rng.random_range(1..max_len);
            let q: Vec<u8> = (0..ql).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let profile = StripedProfile::<T>::build(&q, &matrix);
            let Some(sse) = run_sse(&profile, &t, 12, 2, &mut sse_ws) else {
                return; // CPU lacks the feature; nothing to compare.
            };
            ran = true;
            let portable = sw_striped_portable(&profile, &t, 12, 2, &mut ws);
            assert_eq!(sse, portable, "round {round}: ql={ql} tl={tl}");
        }
        assert!(ran);
    }

    #[test]
    fn i16_sse2_matches_portable() {
        check_against_portable::<i16>(sw_striped_i16, 101, 150);
    }

    #[test]
    fn i8_sse41_matches_portable() {
        check_against_portable::<i8>(sw_striped_i8, 103, 150);
    }

    #[test]
    fn i8_sse41_saturation_agrees_with_portable() {
        let matrix = SubstMatrix::blosum62();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(107);
        let q: Vec<u8> = (0..300).map(|_| rng.random_range(0..20u8)).collect();
        let profile = StripedProfile::<i8>::build(&q, &matrix);
        let Some(sse) = sw_striped_i8(&profile, &q, 12, 2, &mut Workspace::new()) else {
            return;
        };
        assert!(sse.saturated);
        let mut ws = Workspace::<i8>::new();
        let portable = sw_striped_portable(&profile, &q, 12, 2, &mut ws);
        assert_eq!(sse, portable);
    }

    #[test]
    fn empty_subject_scores_zero() {
        let matrix = SubstMatrix::blosum62();
        let q = swhybrid_seq::Alphabet::Protein.encode(b"MKVLAW").unwrap();
        let p16 = StripedProfile::<i16>::build(&q, &matrix);
        if let Some(out) = sw_striped_i16(&p16, &[], 12, 2, &mut Workspace::new()) {
            assert_eq!(out.score, 0);
        }
    }
}
