//! Portable striped Smith-Waterman kernel.
//!
//! Implements Farrar's striped recurrence with the paper's signed-integer
//! adaptation over plain arrays, one "vector" being `T::SIMD_LANES`
//! consecutive elements. It is architecture-independent, auto-vectorisable,
//! and — most importantly — the executable specification the intrinsics
//! kernels in [`crate::sse`] are compared against lane-for-lane.
//!
//! ## Recurrence (per database residue, column `j`)
//!
//! ```text
//! H[q][j] = max(0, H[q-1][j-1] + sub(q, t_j), E[q][j], F[q][j])
//! E[q][j] = max(H[q][j-1] - Goe, E[q][j-1] - ext)   (gap along the subject)
//! F[q][j] = max(H[q-1][j] - Goe, F[q-1][j] - ext)   (gap along the query)
//! ```
//!
//! `F`'s vertical dependency crosses lanes; the main pass under-approximates
//! it and a *lazy-F* fixpoint loop repairs the rare columns where the carry
//! actually matters (Farrar 2007; the repair here also refreshes the stored
//! `E`, closing the corner case SWPS3 reported in Farrar's original code).

use crate::lanes::Lane;
use crate::profile::StripedProfile;

/// Outcome of one striped kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedOutcome {
    /// The computed local alignment score (widened to i32).
    pub score: i32,
    /// Whether the lane type saturated — the score is then a lower bound
    /// and the caller must recompute at a wider width.
    pub saturated: bool,
}

/// Reusable DP rows for the striped kernels (this portable one and the
/// intrinsics kernels in [`crate::sse`] / [`crate::avx2`]); allocate once
/// per worker — typically as part of [`crate::scratch::KernelScratch`] —
/// and reuse across subjects and chunks. Rows grow high-water: `reset`
/// only changes lengths, so steady-state reuse never reallocates.
#[derive(Debug, Default)]
pub struct Workspace<T: Lane> {
    pub(crate) h_load: Vec<T>,
    pub(crate) h_store: Vec<T>,
    pub(crate) e: Vec<T>,
    /// The wrap-around H vector of the current column (portable path only;
    /// the intrinsics kernels keep it in a register).
    pub(crate) vh: Vec<T>,
    /// The F carry vector (portable path only).
    pub(crate) vf: Vec<T>,
}

impl<T: Lane> Workspace<T> {
    /// Fresh (empty) workspace; rows are sized lazily per profile.
    pub fn new() -> Self {
        Workspace {
            h_load: Vec::new(),
            h_store: Vec::new(),
            e: Vec::new(),
            vh: Vec::new(),
            vf: Vec::new(),
        }
    }

    pub(crate) fn reset(&mut self, slots: usize) {
        self.h_load.clear();
        self.h_load.resize(slots, T::ZERO);
        self.h_store.clear();
        self.h_store.resize(slots, T::ZERO);
        self.e.clear();
        self.e.resize(slots, T::MIN);
    }
}

/// Score `subject` (encoded codes) against the striped `profile` with affine
/// gaps: opening a gap costs `goe = open + extend`, extending costs `ext`.
pub fn sw_striped_portable<T: Lane>(
    profile: &StripedProfile<T>,
    subject: &[u8],
    goe: i32,
    ext: i32,
    ws: &mut Workspace<T>,
) -> StripedOutcome {
    let lanes = profile.lanes;
    let seg_len = profile.seg_len;
    let slots = seg_len * lanes;
    ws.reset(slots);
    let goe = T::from_i32_sat(goe);
    let ext = T::from_i32_sat(ext);
    let mut best = T::ZERO;
    ws.vh.clear();
    ws.vh.resize(lanes, T::ZERO);
    ws.vf.clear();
    ws.vf.resize(lanes, T::MIN);
    let Workspace {
        h_load,
        h_store,
        e,
        vh: v_h,
        vf: v_f,
    } = ws;

    for &r in subject {
        debug_assert!((r as usize) < profile.alphabet_size);
        // vH := H[last vector] of previous column, shifted one lane up
        // (lane 0 receives the zero boundary).
        let last = &h_load[(seg_len - 1) * lanes..seg_len * lanes];
        v_h[0] = T::ZERO;
        v_h[1..lanes].copy_from_slice(&last[..lanes - 1]);
        for f in v_f.iter_mut() {
            *f = T::MIN;
        }

        for k in 0..seg_len {
            let prof = profile.vector(r, k);
            let e_row = &mut e[k * lanes..(k + 1) * lanes];
            let h_row = &mut h_store[k * lanes..(k + 1) * lanes];
            let h_prev = &h_load[k * lanes..(k + 1) * lanes];
            for l in 0..lanes {
                let mut h = v_h[l].sat_add(prof[l]);
                let e = e_row[l];
                if e > h {
                    h = e;
                }
                if v_f[l] > h {
                    h = v_f[l];
                }
                if h < T::ZERO {
                    h = T::ZERO;
                }
                if h > best {
                    best = h;
                }
                h_row[l] = h;
                let h_open = h.sat_sub(goe);
                e_row[l] = max(h_open, e.sat_sub(ext));
                v_f[l] = max(h_open, v_f[l].sat_sub(ext));
                v_h[l] = h_prev[l];
            }
        }

        // Lazy-F fixpoint: carry F across stripes. Each pass shifts the
        // carry one stripe; `lanes` passes bound the longest cross-stripe
        // gap run. The pass may legally stop only once the carry is
        // *dominated* everywhere (≤ H − goe): a carry below every local
        // gap-open source can never influence any downstream cell, whereas
        // merely "no H changed this pass" is not sufficient — a still-live
        // carry can overtake a smaller H one stripe later.
        'lazy: for _ in 0..lanes {
            for l in (1..lanes).rev() {
                v_f[l] = v_f[l - 1];
            }
            v_f[0] = T::MIN;
            let mut alive = false;
            for k in 0..seg_len {
                let e_row = &mut e[k * lanes..(k + 1) * lanes];
                let h_row = &mut h_store[k * lanes..(k + 1) * lanes];
                for l in 0..lanes {
                    if v_f[l] > h_row[l] {
                        h_row[l] = v_f[l];
                        let h_open = v_f[l].sat_sub(goe);
                        if h_open > e_row[l] {
                            e_row[l] = h_open;
                        }
                        if v_f[l] > best {
                            best = v_f[l];
                        }
                    }
                    if v_f[l] > h_row[l].sat_sub(goe) {
                        alive = true;
                    }
                    v_f[l] = max(v_f[l].sat_sub(ext), h_row[l].sat_sub(goe));
                }
            }
            if !alive {
                break 'lazy;
            }
        }

        std::mem::swap(h_load, h_store);
    }

    StripedOutcome {
        score: best.to_i32(),
        saturated: best == T::MAX,
    }
}

#[inline(always)]
fn max<T: Ord>(a: T, b: T) -> T {
    if a > b {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::score_only::sw_score_affine;
    use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn striped_score<T: Lane>(q: &[u8], t: &[u8], s: &Scoring) -> StripedOutcome {
        let (open, ext) = swhybrid_align::gotoh::gap_params(s.gap);
        let profile = StripedProfile::<T>::build(q, &s.matrix);
        let mut ws = Workspace::new();
        sw_striped_portable(&profile, t, open + ext, ext, &mut ws)
    }

    #[test]
    fn matches_scalar_reference_i16_random() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
        let s = scoring();
        for round in 0..60 {
            let ql = rng.random_range(1..120);
            let tl = rng.random_range(1..120);
            let q: Vec<u8> = (0..ql).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let out = striped_score::<i16>(&q, &t, &s);
            let expect = sw_score_affine(&q, &t, &s).score;
            assert_eq!(out.score, expect, "round {round}: ql={ql} tl={tl}");
            assert!(!out.saturated);
        }
    }

    #[test]
    fn matches_scalar_reference_i8_random() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(73);
        let s = scoring();
        for round in 0..60 {
            let ql = rng.random_range(1..80);
            let tl = rng.random_range(1..80);
            let q: Vec<u8> = (0..ql).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let out = striped_score::<i8>(&q, &t, &s);
            let expect = sw_score_affine(&q, &t, &s).score;
            if out.saturated {
                assert!(expect >= i8::MAX as i32, "spurious saturation");
            } else {
                assert_eq!(out.score, expect, "round {round}");
            }
        }
    }

    #[test]
    fn long_gap_runs_exercise_lazy_f() {
        // A query that aligns with one very long deletion forces F to carry
        // across many stripes.
        let s = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine { open: 2, extend: 1 },
        };
        let motif = b"MKVLAWCDEFGHIKLMNPQRSTVWYA";
        let mut q_ascii = Vec::new();
        q_ascii.extend_from_slice(motif);
        q_ascii.extend_from_slice(&[b'G'; 70]); // long insert in the query
        q_ascii.extend_from_slice(motif);
        let q = Alphabet::Protein.encode(&q_ascii).unwrap();
        let mut t_ascii = Vec::new();
        t_ascii.extend_from_slice(motif);
        t_ascii.extend_from_slice(motif);
        let t = Alphabet::Protein.encode(&t_ascii).unwrap();
        let out = striped_score::<i16>(&q, &t, &s);
        assert_eq!(out.score, sw_score_affine(&q, &t, &s).score);
    }

    #[test]
    fn i8_saturation_detected_on_high_scores() {
        // Identical 200-residue sequences: self-score far exceeds 127.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(79);
        let q: Vec<u8> = (0..200).map(|_| rng.random_range(0..20u8)).collect();
        let out = striped_score::<i8>(&q, &q, &scoring());
        assert!(out.saturated);
        assert_eq!(out.score, i8::MAX as i32);
        // i16 handles it.
        let out16 = striped_score::<i16>(&q, &q, &scoring());
        assert!(!out16.saturated);
        assert_eq!(out16.score, sw_score_affine(&q, &q, &scoring()).score);
    }

    #[test]
    fn empty_subject_scores_zero() {
        let q = Alphabet::Protein.encode(b"MKVLAW").unwrap();
        let out = striped_score::<i16>(&q, &[], &scoring());
        assert_eq!(out.score, 0);
        assert!(!out.saturated);
    }

    #[test]
    fn single_residue_pair() {
        let q = Alphabet::Protein.encode(b"W").unwrap();
        let t = Alphabet::Protein.encode(b"W").unwrap();
        let out = striped_score::<i8>(&q, &t, &scoring());
        assert_eq!(out.score, 11); // W-W under BLOSUM62
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let s = scoring();
        let q1 = Alphabet::Protein.encode(b"MKVLAWMKVLAWMKVLAW").unwrap();
        let q2 = Alphabet::Protein.encode(b"CCCCC").unwrap();
        let t = Alphabet::Protein.encode(b"MKVLAW").unwrap();
        let (open, ext) = swhybrid_align::gotoh::gap_params(s.gap);
        let mut ws = Workspace::<i16>::new();
        let p1 = StripedProfile::<i16>::build(&q1, &s.matrix);
        let p2 = StripedProfile::<i16>::build(&q2, &s.matrix);
        let a = sw_striped_portable(&p1, &t, open + ext, ext, &mut ws);
        let b = sw_striped_portable(&p2, &t, open + ext, ext, &mut ws);
        let c = sw_striped_portable(&p1, &t, open + ext, ext, &mut ws);
        assert_eq!(a.score, c.score, "workspace reuse must not leak state");
        assert_eq!(b.score, sw_score_affine(&q2, &t, &s).score);
    }

    #[test]
    fn linear_gap_model_via_zero_open() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(83);
        let s = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Linear { penalty: 3 },
        };
        for _ in 0..20 {
            let q: Vec<u8> = (0..50).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..50).map(|_| rng.random_range(0..20u8)).collect();
            let out = striped_score::<i16>(&q, &t, &s);
            assert_eq!(out.score, swhybrid_align::sw::sw_score(&q, &t, &s));
        }
    }
}
