//! Inter-sequence (SWIPE-style) Smith-Waterman — the Rognes [17] baseline.
//!
//! The paper's related-work table credits Rognes' inter-sequence SIMD
//! parallelisation with the best multicore GCUPS. Where Farrar's *striped*
//! kernel vectorises **within** one query × subject comparison, the
//! inter-sequence kernel scores `LANES` *different database sequences*
//! simultaneously, one per lane, against the same query. Lanes refill from
//! the database queue as their sequences finish, so utilisation stays high
//! regardless of length skew.
//!
//! This implementation is the portable reference (contiguous lane-major
//! arrays, auto-vectorisable inner loops); a hand-scheduled intrinsics
//! version is future work — the scheduling experiments only need the
//! baseline's behaviour, which is identical.
//!
//! Saturation: lanes run in `i16`; a lane whose score reaches `i16::MAX`
//! is rescored with the exact scalar kernel, mirroring the striped engine's
//! fallback chain.

use swhybrid_align::gotoh::gap_params;
use swhybrid_align::score_only::sw_score_affine;
use swhybrid_align::scoring::Scoring;
use swhybrid_seq::sequence::EncodedSequence;

/// Number of simultaneous subject lanes (8 × i16 in a 128-bit register).
pub const LANES: usize = 8;

const NEG_INF: i16 = i16::MIN;

/// Per-lane execution state.
#[derive(Debug, Clone, Copy)]
struct LaneState {
    /// Index into `subjects` of the sequence this lane is scoring, or
    /// `usize::MAX` when idle.
    subject: usize,
    /// Next residue position within that subject.
    pos: usize,
}

/// Scores every subject against `query`, `LANES` subjects at a time.
///
/// Returns one score per subject, in input order.
#[allow(clippy::needless_range_loop)] // lanes[] and best[] are co-indexed state arrays
pub fn scores_inter_sequence(
    query: &[u8],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
) -> Vec<i32> {
    assert!(!query.is_empty(), "query must not be empty");
    let m = query.len();
    let (open, extend) = gap_params(scoring.gap);
    let goe = (open + extend).min(i16::MAX as i32) as i16;
    let ext = extend.min(i16::MAX as i32) as i16;

    let mut results = vec![0i32; subjects.len()];
    let mut saturated: Vec<usize> = Vec::new();
    let mut next_subject = 0usize;

    // Lane-major DP state: index `j * LANES + lane` holds the value for
    // query prefix j in that lane's comparison.
    let mut h = vec![0i16; (m + 1) * LANES];
    let mut e = vec![NEG_INF; (m + 1) * LANES];
    let mut best = [0i16; LANES];
    let mut lanes = [LaneState {
        subject: usize::MAX,
        pos: 0,
    }; LANES];
    // Per-step score column: sub(query[j-1], current residue of lane).
    let mut score_col = vec![0i16; (m + 1) * LANES];
    let mut active = 0usize;

    // Seed the lanes.
    for lane in 0..LANES {
        if next_subject < subjects.len() {
            lanes[lane] = LaneState {
                subject: next_subject,
                pos: 0,
            };
            next_subject += 1;
            active += 1;
        }
    }

    while active > 0 {
        // Retire lanes whose subject is exhausted (or empty) and refill.
        for lane in 0..LANES {
            let st = lanes[lane];
            if st.subject == usize::MAX {
                continue;
            }
            if st.pos >= subjects[st.subject].len() {
                let score = best[lane];
                if score == i16::MAX {
                    saturated.push(st.subject);
                } else {
                    results[st.subject] = score as i32;
                }
                // Reset the lane's DP column for the next subject.
                for j in 0..=m {
                    h[j * LANES + lane] = 0;
                    e[j * LANES + lane] = NEG_INF;
                }
                best[lane] = 0;
                if next_subject < subjects.len() {
                    lanes[lane] = LaneState {
                        subject: next_subject,
                        pos: 0,
                    };
                    next_subject += 1;
                } else {
                    lanes[lane].subject = usize::MAX;
                    active -= 1;
                }
            }
        }
        if active == 0 {
            break;
        }

        // Gather this step's substitution scores: one residue per lane.
        // (The intrinsics version would build SWIPE's dprofile here.)
        let mut lane_live = [false; LANES];
        for lane in 0..LANES {
            let st = lanes[lane];
            if st.subject == usize::MAX || st.pos >= subjects[st.subject].len() {
                continue;
            }
            lane_live[lane] = true;
            let c = subjects[st.subject].codes[st.pos];
            let row = scoring.matrix.row(c);
            for (j, &q) in query.iter().enumerate() {
                score_col[(j + 1) * LANES + lane] = row[q as usize] as i16;
            }
        }

        // One DP column per live lane, all lanes advanced in lock-step.
        // diag[lane] carries H[j-1] of the *previous* column.
        let mut diag = [0i16; LANES];
        let mut f = [NEG_INF; LANES];
        for j in 1..=m {
            let base = j * LANES;
            for lane in 0..LANES {
                if !lane_live[lane] {
                    continue;
                }
                let old_h = h[base + lane];
                let mut v = diag[lane].saturating_add(score_col[base + lane]);
                let ej =
                    (h[base + lane].saturating_sub(goe)).max(e[base + lane].saturating_sub(ext));
                // E for this column j uses H[j][previous column] — which is
                // still in h[] since we overwrite below.
                if ej > v {
                    v = ej;
                }
                if f[lane] > v {
                    v = f[lane];
                }
                if v < 0 {
                    v = 0;
                }
                e[base + lane] = ej;
                f[lane] = (v.saturating_sub(goe)).max(f[lane].saturating_sub(ext));
                diag[lane] = old_h;
                h[base + lane] = v;
                if v > best[lane] {
                    best[lane] = v;
                }
            }
        }

        // Advance lane positions.
        for (lane, live) in lane_live.iter().enumerate() {
            if *live {
                lanes[lane].pos += 1;
            }
        }
    }

    // Exact rescore for saturated lanes.
    for idx in saturated {
        results[idx] = sw_score_affine(query, &subjects[idx].codes, scoring).score;
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_subjects(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| EncodedSequence {
                id: format!("s{i}"),
                codes: (0..rng.random_range(1..max_len))
                    .map(|_| rng.random_range(0..20u8))
                    .collect(),
                alphabet: Alphabet::Protein,
            })
            .collect()
    }

    #[test]
    fn matches_scalar_on_random_database() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(211);
        let query: Vec<u8> = (0..70).map(|_| rng.random_range(0..20u8)).collect();
        let subjects = random_subjects(212, 50, 140);
        let s = scoring();
        let got = scores_inter_sequence(&query, &subjects, &s);
        for (i, subject) in subjects.iter().enumerate() {
            let expect = sw_score_affine(&query, &subject.codes, &s).score;
            assert_eq!(got[i], expect, "subject {i}");
        }
    }

    #[test]
    fn length_skew_is_handled_by_lane_refill() {
        // One very long subject among many short ones: lanes refill while
        // the long lane keeps going.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(213);
        let query: Vec<u8> = (0..40).map(|_| rng.random_range(0..20u8)).collect();
        let mut subjects = random_subjects(214, 30, 25);
        subjects.insert(
            7,
            EncodedSequence {
                id: "long".into(),
                codes: (0..900).map(|_| rng.random_range(0..20u8)).collect(),
                alphabet: Alphabet::Protein,
            },
        );
        let s = scoring();
        let got = scores_inter_sequence(&query, &subjects, &s);
        for (i, subject) in subjects.iter().enumerate() {
            assert_eq!(
                got[i],
                sw_score_affine(&query, &subject.codes, &s).score,
                "subject {i}"
            );
        }
    }

    #[test]
    fn fewer_subjects_than_lanes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(215);
        let query: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
        let subjects = random_subjects(216, 3, 50);
        let s = scoring();
        let got = scores_inter_sequence(&query, &subjects, &s);
        assert_eq!(got.len(), 3);
        for (i, subject) in subjects.iter().enumerate() {
            assert_eq!(got[i], sw_score_affine(&query, &subject.codes, &s).score);
        }
    }

    #[test]
    fn empty_database() {
        let query = vec![0u8, 1, 2];
        assert!(scores_inter_sequence(&query, &[], &scoring()).is_empty());
    }

    #[test]
    fn empty_subject_scores_zero() {
        let query = vec![0u8, 1, 2];
        let subjects = vec![EncodedSequence {
            id: "empty".into(),
            codes: vec![],
            alphabet: Alphabet::Protein,
        }];
        assert_eq!(
            scores_inter_sequence(&query, &subjects, &scoring()),
            vec![0]
        );
    }

    #[test]
    fn saturating_subject_falls_back_to_scalar() {
        // Self-comparison of 3,100 tryptophans exceeds i16 range
        // (3,100 × 11 = 34,100 under BLOSUM62).
        let long: Vec<u8> = vec![17u8; 3100];
        let subjects = vec![EncodedSequence {
            id: "self".into(),
            codes: long.clone(),
            alphabet: Alphabet::Protein,
        }];
        let s = scoring();
        let got = scores_inter_sequence(&long, &subjects, &s);
        let expect = sw_score_affine(&long, &long, &s).score;
        assert!(expect > i16::MAX as i32, "premise: must exceed i16");
        assert_eq!(got[0], expect);
    }

    #[test]
    #[should_panic(expected = "query must not be empty")]
    fn empty_query_rejected() {
        scores_inter_sequence(&[], &[], &scoring());
    }
}
