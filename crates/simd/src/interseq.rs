//! Inter-sequence (SWIPE-style) Smith-Waterman — the Rognes [17] kernel
//! family.
//!
//! The paper's related-work table credits Rognes' inter-sequence SIMD
//! parallelisation with the best multicore GCUPS. Where Farrar's *striped*
//! kernel vectorises **within** one query × subject comparison, the
//! inter-sequence kernel scores `LANES` *different database sequences*
//! simultaneously, one per lane, against the same query. Lanes refill from
//! the database queue as their sequences finish, so utilisation stays high
//! regardless of length skew — and, unlike the striped kernel, there is no
//! lazy-F fixpoint loop and no per-subject setup: the DP state lives across
//! subjects and a finished lane costs one column reset.
//!
//! Three implementations share one contract (`Some(score)` exact, `None`
//! saturated — recompute wider):
//!
//! * the **portable** generic pass in this module (lane-major arrays over
//!   any [`Lane`] width; the cross-architecture reference),
//! * [`crate::interseq_sse`] — 16 × i8 and 8 × i16 per 128-bit register,
//! * [`crate::interseq_avx2`] — 32 × i8 and 16 × i16 per 256-bit register.
//!
//! [`scores_arena`] is the dispatch driver used by the database scan: run
//! the widest available 8-bit pass over a [`DbArena`] range, collect the
//! lanes that saturated, rerun them at 16 bits, and finish stragglers with
//! the exact scalar kernel — the same fallback chain as the striped engine,
//! but batched per pass instead of per subject.

use std::ops::Range;

use crate::engine::{EnginePreference, KernelStats, PreparedQuery};
use crate::lanes::Lane;
use crate::scratch::{InterSeqScratch, KernelScratch, WidthBuf};
use swhybrid_align::gotoh::gap_params;
use swhybrid_align::score_only::sw_score_affine;
use swhybrid_align::scoring::Scoring;
use swhybrid_seq::arena::DbArena;
use swhybrid_seq::sequence::EncodedSequence;

/// Lane count of the historical portable reference (8 × i16 in a 128-bit
/// register). The generic pass uses [`Lane::SIMD_LANES`] per width.
pub const LANES: usize = 8;

/// Sentinel for an idle lane.
const IDLE: usize = usize::MAX;

/// How many subjects the 8-bit inter-sequence kernel scores per vector on
/// this machine under `preference` (the lane count the Auto dispatcher
/// reasons about).
pub fn interseq_lanes(preference: EnginePreference) -> usize {
    if preference != EnginePreference::Portable && crate::avx2::avx2_available() {
        crate::avx2::LANES_I8
    } else {
        <i8 as Lane>::SIMD_LANES
    }
}

/// Scores every subject against `query`, [`LANES`] subjects at a time, with
/// the portable 16-bit pass (saturated subjects are rescored by the exact
/// scalar kernel). Returns one score per subject, in input order.
///
/// This is the historical portable reference API; the database scan goes
/// through [`scores_arena`], which adds the 8-bit pass and the vectorized
/// kernels.
pub fn scores_inter_sequence(
    query: &[u8],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
) -> Vec<i32> {
    assert!(!query.is_empty(), "query must not be empty");
    let arena = DbArena::from_encoded(subjects);
    let jobs: Vec<usize> = (0..arena.len()).collect();
    pass_portable::<i16>(query, scoring, &arena, &jobs)
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Some(score) => score,
            None => sw_score_affine(query, &subjects[i].codes, scoring).score,
        })
        .collect()
}

/// Score the scan positions `range` of `arena` with the inter-sequence
/// kernel chain (widest available i8 pass → i16 pass over saturated lanes →
/// exact scalar), returning one exact score per position, in range order.
///
/// Counters and computed cells are accumulated into `stats`
/// (`interseq_i8`/`interseq_i16`/`interseq_scalar`, `cells_computed`).
pub fn scores_arena(
    prepared: &PreparedQuery,
    arena: &DbArena,
    range: Range<usize>,
    stats: &mut KernelStats,
) -> Vec<i32> {
    let mut scratch = KernelScratch::new();
    scores_arena_with(prepared, arena, range, stats, &mut scratch, false).to_vec()
}

/// Hot-path variant of [`scores_arena`]: every buffer the chain needs lives
/// in `scratch` (reused across chunks — zero steady-state allocations) and
/// the returned slice borrows `scratch.scores`. `prefetch` turns on the
/// advisory next-subject prefetch at lane refill; it never changes scores
/// or `stats`.
pub fn scores_arena_with<'s>(
    prepared: &PreparedQuery,
    arena: &DbArena,
    range: Range<usize>,
    stats: &mut KernelStats,
    scratch: &'s mut KernelScratch,
    prefetch: bool,
) -> &'s [i32] {
    assert!(!prepared.query().is_empty(), "query must not be empty");
    let KernelScratch {
        interseq, scores, ..
    } = scratch;
    interseq.jobs.clear();
    interseq.jobs.extend(range);
    scores_jobs_into(prepared, arena, interseq, prefetch, stats, scores);
    scores
}

/// Run the full i8 → i16 → scalar chain over the pre-filled
/// `interseq.jobs`, writing one exact score per job into `out`.
fn scores_jobs_into(
    prepared: &PreparedQuery,
    arena: &DbArena,
    interseq: &mut InterSeqScratch,
    prefetch: bool,
    stats: &mut KernelStats,
    out: &mut Vec<i32>,
) {
    let InterSeqScratch {
        jobs,
        sat,
        jobs16,
        w8,
        w16,
    } = interseq;
    let m = prepared.query_len() as u64;
    stats.cells_computed += m * jobs.iter().map(|&p| arena.seq_len(p) as u64).sum::<u64>();
    run_pass_buf::<i8>(prepared, arena, jobs, prefetch, w8);
    finish_after_i8_into(
        prepared,
        arena,
        jobs,
        &w8.results,
        sat,
        jobs16,
        w16,
        prefetch,
        stats,
        out,
    );
}

/// Resolve one query's i8 pass results into exact scores: keep the exact
/// i8 lanes, rerun the saturated subjects at 16 bits, and finish stragglers
/// with the exact scalar kernel — accumulating the width counters and the
/// rerun cells into `stats`. Shared by the solo and fused chains, which is
/// what keeps the fused chain's per-query output and accounting
/// byte-identical to the solo chain's. `sat`/`jobs16`/`w16` are scratch
/// (reused across chunks); `out` receives one score per job.
#[allow(clippy::too_many_arguments)]
fn finish_after_i8_into(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
    r8: &[Option<i32>],
    sat: &mut Vec<usize>,
    jobs16: &mut Vec<usize>,
    w16: &mut WidthBuf<i16>,
    prefetch: bool,
    stats: &mut KernelStats,
    out: &mut Vec<i32>,
) {
    let query = prepared.query();
    let m = query.len() as u64;
    let scoring = prepared.scoring();

    out.clear();
    out.resize(jobs.len(), 0);
    sat.clear(); // indices into `jobs`
    for (k, r) in r8.iter().enumerate() {
        match *r {
            Some(score) => {
                out[k] = score;
                stats.interseq_i8 += 1;
            }
            None => sat.push(k),
        }
    }

    if !sat.is_empty() {
        jobs16.clear();
        jobs16.extend(sat.iter().map(|&k| jobs[k]));
        stats.cells_computed += m * jobs16.iter().map(|&p| arena.seq_len(p) as u64).sum::<u64>();
        run_pass_buf::<i16>(prepared, arena, jobs16, prefetch, w16);
        for (i, &k) in sat.iter().enumerate() {
            match w16.results[i] {
                Some(score) => {
                    out[k] = score;
                    stats.interseq_i16 += 1;
                }
                None => {
                    let subject = arena.residues(jobs[k]);
                    stats.cells_computed += m * subject.len() as u64;
                    out[k] = sw_score_affine(query, subject, scoring).score;
                    stats.interseq_scalar += 1;
                }
            }
        }
    }
}

/// Fused variant of [`scores_arena`]: score every query in `batch` against
/// the same scan range in ONE shared 8-bit pass. The per-column score
/// gather (matrix-row loads plus the byte transpose) depends only on the
/// database lanes, so the fused pass builds it once per column and runs
/// each query's DP loop over the already-filled lane buffer; each query's
/// saturated subjects then finish through its own i16 → scalar rerun,
/// exactly like the solo chain.
///
/// Returns one score vector per batch entry. Scores and the per-query
/// `stats` accounting are byte-identical to calling [`scores_arena`] once
/// per query — fusion changes wall-clock, never results. When the batch
/// cannot fuse (a single query, mixed scorings, a portable preference, or
/// no vectorized multi-query pass on this CPU) it falls back to exactly
/// that solo loop.
pub fn scores_arena_multi(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    range: Range<usize>,
    stats: &mut [KernelStats],
) -> Vec<Vec<i32>> {
    let mut scratch = KernelScratch::new();
    scores_arena_multi_with(batch, arena, range, stats, &mut scratch, false).to_vec()
}

/// Hot-path variant of [`scores_arena_multi`]: all buffers live in
/// `scratch` and the returned slice borrows `scratch.multi_scores` (one
/// score vector per batch entry). Scores and per-query `stats` stay
/// byte-identical to the solo chain's regardless of `prefetch` or scratch
/// reuse.
pub fn scores_arena_multi_with<'s>(
    batch: &[&PreparedQuery],
    arena: &DbArena,
    range: Range<usize>,
    stats: &mut [KernelStats],
    scratch: &'s mut KernelScratch,
    prefetch: bool,
) -> &'s [Vec<i32>] {
    assert_eq!(batch.len(), stats.len(), "one stats slot per query");
    assert!(
        batch.iter().all(|p| !p.query().is_empty()),
        "query must not be empty"
    );
    let KernelScratch {
        interseq,
        multi_scores,
        ..
    } = scratch;
    multi_scores.resize_with(batch.len(), Vec::new);
    interseq.jobs.clear();
    interseq.jobs.extend(range);

    let fused = batch.len() >= 2
        && batch
            .iter()
            .all(|p| p.preference() != EnginePreference::Portable)
        && {
            let InterSeqScratch { jobs, w8, .. } = &mut *interseq;
            crate::interseq_avx2::multi_pass_i8_buf(batch, arena, jobs, prefetch, w8)
                || crate::interseq_sse::multi_pass_i8_buf(batch, arena, jobs, prefetch, w8)
        };
    if fused {
        let total: u64 = interseq.jobs.iter().map(|&p| arena.seq_len(p) as u64).sum();
        let InterSeqScratch {
            jobs,
            sat,
            jobs16,
            w8,
            w16,
        } = interseq;
        for (q, (prepared, stats)) in batch.iter().zip(stats.iter_mut()).enumerate() {
            stats.cells_computed += prepared.query_len() as u64 * total;
            finish_after_i8_into(
                prepared,
                arena,
                jobs,
                &w8.mresults[q],
                sat,
                jobs16,
                w16,
                prefetch,
                stats,
                &mut multi_scores[q],
            );
        }
    } else {
        // Fall back to exactly the solo chain, one query at a time over the
        // same job list.
        for ((prepared, stats), out) in batch
            .iter()
            .zip(stats.iter_mut())
            .zip(multi_scores.iter_mut())
        {
            scores_jobs_into(prepared, arena, interseq, prefetch, stats, out);
        }
    }
    multi_scores
}

/// Validate that `batch` can share one fused pass and unpack the kernel
/// inputs: every query must carry the same padded score table and gap
/// penalties (the serve path guarantees one scoring per fused task; mixed
/// batches simply refuse to fuse). Returns the shared matrix and penalties
/// — allocation-free, because the fused kernels read the queries straight
/// from the batch.
#[cfg(target_arch = "x86_64")]
pub(crate) fn fusable_batch<'a>(batch: &[&'a PreparedQuery]) -> Option<(&'a [i8], i32, i32)> {
    let first = batch.first()?;
    let matrix32 = first.interseq_matrix.as_deref()?;
    let (goe, ext) = first.gap_penalties();
    for p in &batch[1..] {
        if p.interseq_matrix.as_deref() != Some(matrix32) || p.gap_penalties() != (goe, ext) {
            return None;
        }
    }
    Some((matrix32, goe, ext))
}

/// One pass at width `T` into `buf.results`: vectorized when the
/// preference and CPU allow it, portable otherwise. `Some(score)` is exact;
/// `None` saturated `T::MAX`.
fn run_pass_buf<T: Lane + InterSeqWidth>(
    prepared: &PreparedQuery,
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<T>,
) {
    if prepared.preference() != EnginePreference::Portable
        && T::pass_simd_buf(prepared, arena, jobs, prefetch, buf)
    {
        return;
    }
    pass_portable_buf::<T>(
        prepared.query(),
        prepared.scoring(),
        arena,
        jobs,
        prefetch,
        buf,
    );
}

/// Width-specific hook into the hand-vectorized kernels.
pub(crate) trait InterSeqWidth: Lane {
    /// Run the vectorized pass for this width into `buf.results`, or return
    /// `false` when the CPU / alphabet cannot (caller falls back to the
    /// portable pass).
    fn pass_simd_buf(
        prepared: &PreparedQuery,
        arena: &DbArena,
        jobs: &[usize],
        prefetch: bool,
        buf: &mut WidthBuf<Self>,
    ) -> bool;
}

impl InterSeqWidth for i8 {
    fn pass_simd_buf(
        prepared: &PreparedQuery,
        arena: &DbArena,
        jobs: &[usize],
        prefetch: bool,
        buf: &mut WidthBuf<i8>,
    ) -> bool {
        crate::interseq_avx2::pass_i8_buf(prepared, arena, jobs, prefetch, buf)
            || crate::interseq_sse::pass_i8_buf(prepared, arena, jobs, prefetch, buf)
    }
}

impl InterSeqWidth for i16 {
    fn pass_simd_buf(
        prepared: &PreparedQuery,
        arena: &DbArena,
        jobs: &[usize],
        prefetch: bool,
        buf: &mut WidthBuf<i16>,
    ) -> bool {
        crate::interseq_avx2::pass_i16_buf(prepared, arena, jobs, prefetch, buf)
            || crate::interseq_sse::pass_i16_buf(prepared, arena, jobs, prefetch, buf)
    }
}

/// The portable inter-sequence pass over `jobs` (scan positions into
/// `arena`), generic in the lane width. `Some(score)` is exact; `None`
/// means the lane reached `T::MAX` and the subject must be rescored wider.
///
/// Gap penalties are clamped into `T` exactly like the vectorized kernels
/// clamp theirs, so both paths saturate identically.
pub(crate) fn pass_portable<T: Lane>(
    query: &[u8],
    scoring: &Scoring,
    arena: &DbArena,
    jobs: &[usize],
) -> Vec<Option<i32>> {
    let mut buf = WidthBuf::new();
    pass_portable_buf::<T>(query, scoring, arena, jobs, false, &mut buf);
    buf.results
}

/// Hot-path variant of [`pass_portable`]: all lane state lives in `buf`
/// (reused across chunks) and results land in `buf.results`.
#[allow(clippy::needless_range_loop)] // lane-state arrays are co-indexed
pub(crate) fn pass_portable_buf<T: Lane>(
    query: &[u8],
    scoring: &Scoring,
    arena: &DbArena,
    jobs: &[usize],
    prefetch: bool,
    buf: &mut WidthBuf<T>,
) {
    let lanes = T::SIMD_LANES;
    let m = query.len();
    let (open, extend) = gap_params(scoring.gap);
    let goe = T::from_i32_sat(open + extend);
    let ext = T::from_i32_sat(extend);

    let WidthBuf {
        results,
        h,
        e,
        colprof,
        score_col,
        best,
        lane_job,
        lane_pos,
        live,
        diag,
        f,
        ..
    } = buf;

    // Query-major score columns: colprof[c * m + j] = score(query[j], c),
    // the portable analogue of the vectorized kernels' transposed gather.
    let dim = scoring.matrix.dim();
    colprof.clear();
    colprof.resize(dim * m, T::ZERO);
    for c in 0..dim {
        for (j, &q) in query.iter().enumerate() {
            colprof[c * m + j] = T::from_i32_sat(scoring.matrix.score(q, c as u8));
        }
    }

    results.clear();
    results.resize(jobs.len(), None);
    // Lane-major DP state: index `j * lanes + lane` holds the value for
    // query prefix j in that lane's comparison.
    h.clear();
    h.resize((m + 1) * lanes, T::ZERO);
    e.clear();
    e.resize((m + 1) * lanes, T::MIN);
    score_col.clear();
    score_col.resize((m + 1) * lanes, T::ZERO);
    best.clear();
    best.resize(lanes, T::ZERO);
    lane_job.clear();
    lane_job.resize(lanes, IDLE); // index into `jobs`, or IDLE
    lane_pos.clear();
    lane_pos.resize(lanes, 0usize);
    live.clear();
    live.resize(lanes, false);
    diag.clear();
    diag.resize(lanes, T::ZERO);
    f.clear();
    f.resize(lanes, T::MIN);
    let mut next = 0usize;
    let mut active = 0usize;

    for lane in 0..lanes {
        if next < jobs.len() {
            lane_job[lane] = next;
            lane_pos[lane] = 0;
            next += 1;
            active += 1;
            if prefetch && next < jobs.len() {
                crate::scratch::prefetch_read(arena.residues(jobs[next]));
            }
        }
    }

    while active > 0 {
        // Retire lanes whose subject is exhausted (several in a row when
        // subjects are empty) and refill from the job queue.
        for lane in 0..lanes {
            loop {
                let job = lane_job[lane];
                if job == IDLE || lane_pos[lane] < arena.seq_len(jobs[job]) {
                    break;
                }
                let b = best[lane];
                results[job] = (b != T::MAX).then(|| b.to_i32());
                for j in 0..=m {
                    h[j * lanes + lane] = T::ZERO;
                    e[j * lanes + lane] = T::MIN;
                }
                best[lane] = T::ZERO;
                if next < jobs.len() {
                    lane_job[lane] = next;
                    lane_pos[lane] = 0;
                    next += 1;
                    // Hide the NEXT refill's residue fetch behind the
                    // columns about to run.
                    if prefetch && next < jobs.len() {
                        crate::scratch::prefetch_read(arena.residues(jobs[next]));
                    }
                } else {
                    lane_job[lane] = IDLE;
                    active -= 1;
                }
            }
        }
        if active == 0 {
            break;
        }

        // Gather this step's score columns: one residue per live lane.
        for lane in 0..lanes {
            let job = lane_job[lane];
            if job == IDLE {
                live[lane] = false;
                continue;
            }
            live[lane] = true;
            let c = arena.residues(jobs[job])[lane_pos[lane]] as usize;
            let row = &colprof[c * m..(c + 1) * m];
            for j in 0..m {
                score_col[(j + 1) * lanes + lane] = row[j];
            }
        }

        // One DP column per live lane, all lanes advanced in lock-step.
        // diag[lane] carries H[j-1] of the *previous* column; both carries
        // restart every column (same values a fresh vec would hold).
        diag.fill(T::ZERO);
        f.fill(T::MIN);
        for j in 1..=m {
            let base = j * lanes;
            for lane in 0..lanes {
                if !live[lane] {
                    continue;
                }
                let old_h = h[base + lane];
                let ej = (old_h.sat_sub(goe)).max(e[base + lane].sat_sub(ext));
                let mut v = diag[lane].sat_add(score_col[base + lane]);
                if ej > v {
                    v = ej;
                }
                if f[lane] > v {
                    v = f[lane];
                }
                if v < T::ZERO {
                    v = T::ZERO;
                }
                e[base + lane] = ej;
                f[lane] = (v.sat_sub(goe)).max(f[lane].sat_sub(ext));
                diag[lane] = old_h;
                h[base + lane] = v;
                if v > best[lane] {
                    best[lane] = v;
                }
            }
        }

        for lane in 0..lanes {
            if live[lane] {
                lane_pos[lane] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_subjects(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| EncodedSequence {
                id: format!("s{i}"),
                codes: (0..rng.random_range(1..max_len))
                    .map(|_| rng.random_range(0..20u8))
                    .collect(),
                alphabet: Alphabet::Protein,
            })
            .collect()
    }

    #[test]
    fn matches_scalar_on_random_database() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(211);
        let query: Vec<u8> = (0..70).map(|_| rng.random_range(0..20u8)).collect();
        let subjects = random_subjects(212, 50, 140);
        let s = scoring();
        let got = scores_inter_sequence(&query, &subjects, &s);
        for (i, subject) in subjects.iter().enumerate() {
            let expect = sw_score_affine(&query, &subject.codes, &s).score;
            assert_eq!(got[i], expect, "subject {i}");
        }
    }

    #[test]
    fn length_skew_is_handled_by_lane_refill() {
        // One very long subject among many short ones: lanes refill while
        // the long lane keeps going.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(213);
        let query: Vec<u8> = (0..40).map(|_| rng.random_range(0..20u8)).collect();
        let mut subjects = random_subjects(214, 30, 25);
        subjects.insert(
            7,
            EncodedSequence {
                id: "long".into(),
                codes: (0..900).map(|_| rng.random_range(0..20u8)).collect(),
                alphabet: Alphabet::Protein,
            },
        );
        let s = scoring();
        let got = scores_inter_sequence(&query, &subjects, &s);
        for (i, subject) in subjects.iter().enumerate() {
            assert_eq!(
                got[i],
                sw_score_affine(&query, &subject.codes, &s).score,
                "subject {i}"
            );
        }
    }

    #[test]
    fn fewer_subjects_than_lanes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(215);
        let query: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
        let subjects = random_subjects(216, 3, 50);
        let s = scoring();
        let got = scores_inter_sequence(&query, &subjects, &s);
        assert_eq!(got.len(), 3);
        for (i, subject) in subjects.iter().enumerate() {
            assert_eq!(got[i], sw_score_affine(&query, &subject.codes, &s).score);
        }
    }

    #[test]
    fn empty_database() {
        let query = vec![0u8, 1, 2];
        assert!(scores_inter_sequence(&query, &[], &scoring()).is_empty());
    }

    #[test]
    fn empty_subject_scores_zero() {
        let query = vec![0u8, 1, 2];
        let subjects = vec![EncodedSequence {
            id: "empty".into(),
            codes: vec![],
            alphabet: Alphabet::Protein,
        }];
        assert_eq!(
            scores_inter_sequence(&query, &subjects, &scoring()),
            vec![0]
        );
    }

    #[test]
    fn saturating_subject_falls_back_to_scalar() {
        // Self-comparison of 3,100 tryptophans exceeds i16 range
        // (3,100 × 11 = 34,100 under BLOSUM62).
        let long: Vec<u8> = vec![17u8; 3100];
        let subjects = vec![EncodedSequence {
            id: "self".into(),
            codes: long.clone(),
            alphabet: Alphabet::Protein,
        }];
        let s = scoring();
        let got = scores_inter_sequence(&long, &subjects, &s);
        let expect = sw_score_affine(&long, &long, &s).score;
        assert!(expect > i16::MAX as i32, "premise: must exceed i16");
        assert_eq!(got[0], expect);
    }

    #[test]
    #[should_panic(expected = "query must not be empty")]
    fn empty_query_rejected() {
        scores_inter_sequence(&[], &[], &scoring());
    }

    #[test]
    fn i8_portable_pass_flags_saturation() {
        // A 30-residue self-match scores well over 127 → every lane result
        // must come back None at 8 bits, Some at 16.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(217);
        let query: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        let subjects = vec![EncodedSequence {
            id: "self".into(),
            codes: query.clone(),
            alphabet: Alphabet::Protein,
        }];
        let s = scoring();
        let expect = sw_score_affine(&query, &query, &s).score;
        assert!(expect > 127, "premise: must exceed i8");
        let arena = DbArena::from_encoded(&subjects);
        let r8 = pass_portable::<i8>(&query, &s, &arena, &[0]);
        assert_eq!(r8, vec![None]);
        let r16 = pass_portable::<i16>(&query, &s, &arena, &[0]);
        assert_eq!(r16, vec![Some(expect)]);
    }

    #[test]
    fn scores_arena_runs_the_width_chain() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(219);
        let query: Vec<u8> = (0..80).map(|_| rng.random_range(0..20u8)).collect();
        let mut subjects = random_subjects(220, 40, 60);
        // Plant an i8-saturating subject and an i16-saturating one.
        subjects[5] = EncodedSequence {
            id: "sat8".into(),
            codes: query.clone(),
            alphabet: Alphabet::Protein,
        };
        for pref in [
            EnginePreference::Auto,
            EnginePreference::Portable,
            EnginePreference::Simd,
        ] {
            let prepared = PreparedQuery::new(&query, &scoring(), pref);
            let arena = DbArena::from_encoded(&subjects);
            let mut stats = KernelStats::default();
            let got = scores_arena(&prepared, &arena, 0..arena.len(), &mut stats);
            for (i, subject) in subjects.iter().enumerate() {
                let expect = sw_score_affine(&query, &subject.codes, &scoring()).score;
                assert_eq!(got[i], expect, "pref {pref:?} subject {i}");
            }
            assert_eq!(stats.interseq_total(), subjects.len() as u64, "{pref:?}");
            assert!(stats.interseq_i16 >= 1, "planted subject saturates i8");
            assert!(stats.cells_computed > 0);
        }
    }

    #[test]
    fn scores_arena_multi_is_byte_identical_to_solo_chains() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(231);
        // Different lengths, one query with a planted i8-saturating
        // self-match: the fused chain must reproduce each solo chain's
        // scores AND its width/cell accounting exactly.
        let queries: Vec<Vec<u8>> = [20usize, 55, 20, 90]
            .iter()
            .map(|&m| (0..m).map(|_| rng.random_range(0..20u8)).collect())
            .collect();
        let mut subjects = random_subjects(232, 70, 60);
        subjects[13] = EncodedSequence {
            id: "self".into(),
            codes: queries[1].clone(),
            alphabet: Alphabet::Protein,
        };
        for pref in [
            EnginePreference::Auto,
            EnginePreference::Portable,
            EnginePreference::Simd,
        ] {
            let prepared: Vec<PreparedQuery> = queries
                .iter()
                .map(|q| PreparedQuery::new(q, &scoring(), pref))
                .collect();
            let batch: Vec<&PreparedQuery> = prepared.iter().collect();
            let arena = DbArena::from_encoded(&subjects);
            let mut multi_stats = vec![KernelStats::default(); batch.len()];
            let fused = scores_arena_multi(&batch, &arena, 0..arena.len(), &mut multi_stats);
            assert_eq!(fused.len(), batch.len());
            for (q, prepared) in batch.iter().enumerate() {
                let mut solo_stats = KernelStats::default();
                let solo = scores_arena(prepared, &arena, 0..arena.len(), &mut solo_stats);
                assert_eq!(fused[q], solo, "pref {pref:?} query {q}");
                assert_eq!(multi_stats[q], solo_stats, "pref {pref:?} query {q} stats");
            }
        }
    }

    #[test]
    fn scores_arena_multi_falls_back_on_mixed_scorings() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(233);
        let query: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
        let cheap = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine { open: 4, extend: 1 },
        };
        let a = PreparedQuery::new(&query, &scoring(), EnginePreference::Auto);
        let b = PreparedQuery::new(&query, &cheap, EnginePreference::Auto);
        let subjects = random_subjects(234, 40, 50);
        let arena = DbArena::from_encoded(&subjects);
        let mut stats = vec![KernelStats::default(); 2];
        let got = scores_arena_multi(&[&a, &b], &arena, 0..arena.len(), &mut stats);
        for (prepared, scores) in [&a, &b].into_iter().zip(&got) {
            for (k, subject) in subjects.iter().enumerate() {
                let expect = sw_score_affine(&query, &subject.codes, prepared.scoring()).score;
                assert_eq!(scores[k], expect);
            }
        }
    }

    #[test]
    fn scores_arena_on_a_subrange_of_a_sorted_arena() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(221);
        let query: Vec<u8> = (0..50).map(|_| rng.random_range(0..20u8)).collect();
        let subjects = random_subjects(222, 25, 120);
        let prepared = PreparedQuery::new(&query, &scoring(), EnginePreference::Auto);
        let arena = DbArena::length_sorted(&subjects);
        let mut stats = KernelStats::default();
        let got = scores_arena(&prepared, &arena, 5..20, &mut stats);
        for (k, pos) in (5..20).enumerate() {
            let expect =
                sw_score_affine(&query, &subjects[arena.db_index(pos)].codes, &scoring()).score;
            assert_eq!(got[k], expect, "pos {pos}");
        }
        assert_eq!(stats.interseq_total(), 15);
    }
}
