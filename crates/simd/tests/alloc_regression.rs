//! Steady-state allocation regression: after the first (warming) chunk, a
//! scan worker's hot path must perform **zero** heap allocations per chunk,
//! for every kernel family — striped, solo inter-sequence, and the fused
//! multi-query chain. The [`KernelScratch`] buffers are sized high-water on
//! the first chunk and only `clear()`/`resize()`d afterwards; this test is
//! the enforcement for that contract (see `crates/simd/src/scratch.rs`).
//!
//! The counting allocator wraps the system allocator and counts every
//! `alloc`/`realloc`/`alloc_zeroed` call process-wide, so every probe runs
//! inside one `#[test]` (the default harness would interleave counts from
//! concurrent tests).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::{Alphabet, DbArena};
use swhybrid_simd::engine::{EnginePreference, KernelStats, PreparedQuery, StripedEngine};
use swhybrid_simd::interseq::{scores_arena_multi_with, scores_arena_with};
use swhybrid_simd::KernelScratch;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator plus a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count across `f`, measured on this thread only in the sense
/// that nothing else runs concurrently (single `#[test]`).
fn allocations_during<R>(mut f: impl FnMut() -> R) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let r = f();
    std::hint::black_box(r);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

/// Deterministic pseudo-random residues (no rand dependency in this test:
/// the allocator hook must observe only the kernels).
fn residues(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 20) as u8
        })
        .collect()
}

fn arena(n: usize, max_len: usize) -> DbArena {
    let db: Vec<EncodedSequence> = (0..n)
        .map(|i| EncodedSequence {
            id: format!("s{i}"),
            codes: residues(i as u64 + 1, 40 + (i * 17) % max_len),
            alphabet: Alphabet::Protein,
        })
        .collect();
    DbArena::from_encoded(&db)
}

#[test]
fn warm_scan_paths_allocate_nothing_per_chunk() {
    let scoring = scoring();
    let arena = arena(96, 160);
    let chunk = 32usize;
    let chunks: Vec<std::ops::Range<usize>> = (0..arena.len())
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(arena.len()))
        .collect();
    assert!(
        chunks.len() >= 3,
        "need several chunks to measure steady state"
    );

    for pref in [EnginePreference::Auto, EnginePreference::Portable] {
        let query = residues(99, 120);
        let prepared = PreparedQuery::new(&query, &scoring, pref);

        // Solo inter-sequence chain: chunk 0 warms the scratch high-water;
        // every later chunk must be allocation-free.
        let mut scratch = KernelScratch::new();
        let mut stats = KernelStats::default();
        scores_arena_with(
            &prepared,
            &arena,
            chunks[0].clone(),
            &mut stats,
            &mut scratch,
            true,
        );
        for c in &chunks[1..] {
            let n = allocations_during(|| {
                scores_arena_with(&prepared, &arena, c.clone(), &mut stats, &mut scratch, true);
            });
            assert_eq!(
                n, 0,
                "interseq chunk {c:?} allocated {n} times after warmup ({pref:?})"
            );
        }

        // Striped engine: one warming call sizes both width workspaces.
        let mut scratch = KernelScratch::new();
        let mut engine = StripedEngine::new(&query, &scoring, pref);
        engine.score(arena.residues(0), &mut scratch);
        let n = allocations_during(|| {
            for pos in 0..arena.len() {
                engine.score(arena.residues(pos), &mut scratch);
            }
        });
        assert_eq!(
            n, 0,
            "striped scan allocated {n} times after warmup ({pref:?})"
        );
    }

    // Fused multi-query chain: the batch and per-query outputs are part of
    // the scratch too.
    let q0 = residues(7, 90);
    let q1 = residues(8, 110);
    let q2 = residues(9, 70);
    let batch: Vec<PreparedQuery> = [&q0, &q1, &q2]
        .iter()
        .map(|q| PreparedQuery::new(q, &scoring, EnginePreference::Auto))
        .collect();
    let refs: Vec<&PreparedQuery> = batch.iter().collect();
    let mut scratch = KernelScratch::new();
    let mut stats = vec![KernelStats::default(); refs.len()];
    scores_arena_multi_with(
        &refs,
        &arena,
        chunks[0].clone(),
        &mut stats,
        &mut scratch,
        true,
    );
    for c in &chunks[1..] {
        let n = allocations_during(|| {
            scores_arena_multi_with(&refs, &arena, c.clone(), &mut stats, &mut scratch, true);
        });
        assert_eq!(n, 0, "fused chunk {c:?} allocated {n} times after warmup");
    }

    // Chunk-count independence: the steady-state cost does not depend on
    // how many chunks have already been scanned — 40 extra chunks (with
    // prefetch off, covering both traversal modes) still cost zero.
    let query = residues(3, 100);
    let prepared = PreparedQuery::new(&query, &scoring, EnginePreference::Auto);
    let mut scratch = KernelScratch::new();
    let mut stats = KernelStats::default();
    scores_arena_with(&prepared, &arena, 0..32, &mut stats, &mut scratch, false);
    let n = allocations_during(|| {
        for _ in 0..20 {
            scores_arena_with(&prepared, &arena, 16..48, &mut stats, &mut scratch, false);
            scores_arena_with(&prepared, &arena, 32..64, &mut stats, &mut scratch, false);
        }
    });
    assert_eq!(n, 0, "40 warm chunks allocated {n} times");
}
