//! Microbenchmarks of the SW kernels (real compute, not simulation).
//!
//! These validate the substrate the platform model is calibrated on: the
//! adapted-Farrar striped kernels must beat the scalar DP by a wide margin,
//! and the SSE intrinsics path must beat the portable path. Throughput is
//! reported in DP cells (multiply by elements/second to read GCUPS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{RngExt, SeedableRng};
use swhybrid_align::gotoh::{gap_params, gotoh_score};
use swhybrid_align::score_only::{sw_score_affine, sw_score_linear};
use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_align::sw::sw_score;
use swhybrid_simd::engine::{EnginePreference, StripedEngine};
use swhybrid_simd::portable::{sw_striped_portable, Workspace};
use swhybrid_simd::profile::StripedProfile;
use swhybrid_simd::sse;

fn random_seq(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..20u8)).collect()
}

fn affine() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

fn linear() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Linear { penalty: 3 },
    }
}

fn bench_kernels(c: &mut Criterion) {
    let subject = random_seq(1, 400);
    let aff = affine();
    let lin = linear();
    let (open, ext) = gap_params(aff.gap);
    let goe = open + ext;

    let mut group = c.benchmark_group("sw_kernels");
    for qlen in [128usize, 512, 2048] {
        let query = random_seq(qlen as u64, qlen);
        let cells = (qlen * subject.len()) as u64;
        group.throughput(Throughput::Elements(cells));

        group.bench_with_input(
            BenchmarkId::new("scalar_linear_full", qlen),
            &qlen,
            |b, _| b.iter(|| sw_score(&query, &subject, &lin)),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_linear_row", qlen),
            &qlen,
            |b, _| b.iter(|| sw_score_linear(&query, &subject, &lin)),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_gotoh_full", qlen),
            &qlen,
            |b, _| b.iter(|| gotoh_score(&query, &subject, &aff)),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_affine_row", qlen),
            &qlen,
            |b, _| b.iter(|| sw_score_affine(&query, &subject, &aff)),
        );

        let p8 = StripedProfile::<i8>::build(&query, &aff.matrix);
        let p16 = StripedProfile::<i16>::build(&query, &aff.matrix);
        group.bench_with_input(
            BenchmarkId::new("striped_portable_i8", qlen),
            &qlen,
            |b, _| {
                let mut ws = Workspace::<i8>::new();
                b.iter(|| sw_striped_portable(&p8, &subject, goe, ext, &mut ws))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("striped_portable_i16", qlen),
            &qlen,
            |b, _| {
                let mut ws = Workspace::<i16>::new();
                b.iter(|| sw_striped_portable(&p16, &subject, goe, ext, &mut ws))
            },
        );
        if sse::sse41_available() {
            group.bench_with_input(BenchmarkId::new("striped_sse_i8", qlen), &qlen, |b, _| {
                let mut ws = Workspace::<i8>::new();
                b.iter(|| sse::sw_striped_i8(&p8, &subject, goe, ext, &mut ws).unwrap())
            });
        }
        if sse::sse2_available() {
            group.bench_with_input(BenchmarkId::new("striped_sse_i16", qlen), &qlen, |b, _| {
                let mut ws = Workspace::<i16>::new();
                b.iter(|| sse::sw_striped_i16(&p16, &subject, goe, ext, &mut ws).unwrap())
            });
        }
        group.bench_with_input(
            BenchmarkId::new("engine_fallback_chain", qlen),
            &qlen,
            |b, _| {
                let mut engine = StripedEngine::new(&query, &aff, EnginePreference::Auto);
                let mut scratch = swhybrid_simd::KernelScratch::new();
                b.iter(|| engine.score(&subject, &mut scratch))
            },
        );
    }
    group.finish();
}

fn bench_interseq(c: &mut Criterion) {
    use std::sync::Arc;
    use swhybrid_seq::sequence::EncodedSequence;
    use swhybrid_seq::DbArena;
    use swhybrid_simd::engine::{KernelStats, PreparedQuery};
    use swhybrid_simd::interseq::{scores_arena, scores_inter_sequence};
    use swhybrid_simd::search::{DatabaseSearch, SearchConfig};

    let aff = affine();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let subjects: Vec<EncodedSequence> = (0..64)
        .map(|i| EncodedSequence {
            id: format!("s{i}"),
            codes: random_seq(100 + i as u64, 100 + (i * 13) % 500),
            alphabet: swhybrid_seq::Alphabet::Protein,
        })
        .collect();
    let arena = DbArena::from_encoded(&subjects);
    let total: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    let _ = &mut rng;

    let mut group = c.benchmark_group("interseq_vs_striped");
    group.sample_size(20);
    for qlen in [200usize, 1000] {
        let query = random_seq(qlen as u64 + 1, qlen);
        group.throughput(Throughput::Elements(qlen as u64 * total));
        group.bench_with_input(
            BenchmarkId::new("inter_sequence_portable", qlen),
            &qlen,
            |b, _| b.iter(|| scores_inter_sequence(&query, &subjects, &aff)),
        );
        group.bench_with_input(
            BenchmarkId::new("inter_sequence_simd", qlen),
            &qlen,
            |b, _| {
                let prepared = Arc::new(PreparedQuery::new(&query, &aff, EnginePreference::Auto));
                b.iter(|| {
                    let mut stats = KernelStats::default();
                    scores_arena(&prepared, &arena, 0..arena.len(), &mut stats)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("striped_scan", qlen), &qlen, |b, _| {
            let search = DatabaseSearch::new(
                &query,
                &aff,
                SearchConfig {
                    top_n: subjects.len(),
                    ..Default::default()
                },
            );
            b.iter(|| search.run(&subjects))
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    // One-core CI-friendly sampling; raise for precision work.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs_f64(1.5))
        .warm_up_time(std::time::Duration::from_secs_f64(0.5))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_kernels, bench_interseq
}
criterion_main!(benches);
