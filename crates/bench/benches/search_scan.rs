//! Whole-database scan throughput (real kernels, scaled-down Ensembl Dog).
//!
//! Measures what one "SSE core" PE actually sustains on this machine —
//! i.e. the real-world counterpart of the calibrated 2.7 GCUPS model.
//! Throughput is in DP cells: elements/second / 1e9 = GCUPS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::synth::paper_database;
use swhybrid_simd::engine::EnginePreference;
use swhybrid_simd::search::{DatabaseSearch, KernelChoice, SearchConfig};

fn bench_scan(c: &mut Criterion) {
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let dog = paper_database("dog").expect("preset exists");
    let db = dog.generate_scaled(7, 0.01); // ~250 sequences
    let subjects = db.encode_all().expect("synthetic residues are valid");
    let total: u64 = subjects.iter().map(|s| s.len() as u64).sum();

    let mut group = c.benchmark_group("db_scan");
    group.sample_size(10);
    for qlen in [250usize, 1000] {
        let mut rng = swhybrid_seq::synth::rng(qlen as u64);
        let query_ascii = swhybrid_seq::synth::random_protein(&mut rng, qlen);
        let query = swhybrid_seq::Alphabet::Protein
            .encode(&query_ascii)
            .expect("valid synthetic residues");
        group.throughput(Throughput::Elements(qlen as u64 * total));
        for (label, pref) in [
            ("simd", EnginePreference::Simd),
            ("portable", EnginePreference::Portable),
        ] {
            group.bench_with_input(BenchmarkId::new(label, qlen), &qlen, |b, _| {
                let search = DatabaseSearch::new(
                    &query,
                    &scoring,
                    SearchConfig {
                        threads: 1,
                        top_n: 10,
                        chunk_size: 64,
                        preference: pref,
                        ..Default::default()
                    },
                );
                b.iter(|| search.run(&subjects))
            });
        }
    }
    group.finish();
}

/// A deliberately length-skewed database: a large body of short subjects
/// plus a handful of long outliers — the shape that starves the striped
/// kernel on per-subject setup and favours the inter-sequence kernel.
fn skewed_db(seed: u64, n: usize) -> Vec<EncodedSequence> {
    let mut rng = swhybrid_seq::synth::rng(seed);
    (0..n)
        .map(|i| {
            let len = if i % 97 == 0 {
                400 + (i % 7) * 100
            } else {
                20 + i % 61
            };
            let ascii = swhybrid_seq::synth::random_protein(&mut rng, len);
            let codes = swhybrid_seq::Alphabet::Protein
                .encode(&ascii)
                .expect("valid synthetic residues");
            EncodedSequence {
                id: format!("s{i}"),
                codes,
                alphabet: swhybrid_seq::Alphabet::Protein,
            }
        })
        .collect()
}

/// Striped vs inter-sequence vs adaptive dispatch over the skewed database,
/// with and without length-sorted scan order. Throughput is nominal cells
/// (query × residues), so the kernels are directly comparable.
fn bench_kernel_dispatch(c: &mut Criterion) {
    let scoring = Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    };
    let subjects = skewed_db(11, 2000);
    let total: u64 = subjects.iter().map(|s| s.len() as u64).sum();

    let mut group = c.benchmark_group("kernel_dispatch");
    group.sample_size(10);
    for qlen in [128usize, 512] {
        let mut rng = swhybrid_seq::synth::rng(qlen as u64);
        let query_ascii = swhybrid_seq::synth::random_protein(&mut rng, qlen);
        let query = swhybrid_seq::Alphabet::Protein
            .encode(&query_ascii)
            .expect("valid synthetic residues");
        group.throughput(Throughput::Elements(qlen as u64 * total));
        for (label, kernel, sort_by_length) in [
            ("striped", KernelChoice::Striped, false),
            ("interseq", KernelChoice::InterSeq, false),
            ("interseq_sorted", KernelChoice::InterSeq, true),
            ("auto", KernelChoice::Auto, false),
        ] {
            group.bench_with_input(BenchmarkId::new(label, qlen), &qlen, |b, _| {
                let search = DatabaseSearch::new(
                    &query,
                    &scoring,
                    SearchConfig {
                        threads: 1,
                        top_n: 10,
                        chunk_size: 64,
                        preference: EnginePreference::Auto,
                        kernel,
                        sort_by_length,
                        prefetch: true,
                    },
                );
                b.iter(|| search.run(&subjects))
            });
        }
    }
    group.finish();
}

fn fast_config() -> Criterion {
    // One-core CI-friendly sampling; raise for precision work.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs_f64(1.5))
        .warm_up_time(std::time::Duration::from_secs_f64(0.5))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_scan, bench_kernel_dispatch
}
criterion_main!(benches);
