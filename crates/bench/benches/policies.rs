//! Discrete-event-engine throughput under each allocation policy, and the
//! scheduling cost of the adjustment mechanism itself (events processed per
//! simulated run as platform size grows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swhybrid_bench::{databases, workload};
use swhybrid_core::platform::PlatformBuilder;
use swhybrid_core::policy::Policy;
use swhybrid_seq::synth::QueryOrder;

fn bench_policies(c: &mut Criterion) {
    let sw = databases().into_iter().last().expect("five databases");
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(20);
    for (label, policy) in [
        ("ss", Policy::SelfScheduling),
        ("pss", Policy::pss_default()),
        ("fixed", Policy::Fixed),
        ("wfixed", Policy::WFixed),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", label), &policy, |b, &p| {
            b.iter(|| {
                PlatformBuilder::new()
                    .gpus(4)
                    .sse_cores(4)
                    .policy(p)
                    .run(workload(&sw, QueryOrder::Ascending))
            })
        });
    }
    for pes in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("platform_size", pes), &pes, |b, &n| {
            b.iter(|| {
                PlatformBuilder::new()
                    .gpus(n / 2)
                    .sse_cores(n / 2)
                    .run(workload(&sw, QueryOrder::Ascending))
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    // One-core CI-friendly sampling; raise for precision work.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs_f64(1.5))
        .warm_up_time(std::time::Duration::from_secs_f64(0.5))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_policies
}
criterion_main!(benches);
