//! One Criterion bench per paper table/figure: each runs the deterministic
//! platform simulation that regenerates that artefact (the printable rows
//! come from the same functions via `cargo run --bin run_all`). Bench time
//! here measures the discrete-event engine, and regressions in it flag
//! scheduling-logic changes.

use criterion::{criterion_group, criterion_main, Criterion};
use swhybrid_bench::experiments;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_artifacts");
    group.sample_size(10);
    group.bench_function("table2_databases", |b| b.iter(experiments::table2));
    group.bench_function("table3_sse", |b| b.iter(experiments::table3));
    group.bench_function("table4_gpu", |b| b.iter(experiments::table4));
    group.bench_function("table5_hybrid", |b| b.iter(experiments::table5));
    group.bench_function("fig5_worked_example", |b| b.iter(experiments::fig5));
    group.bench_function("fig6_adjustment", |b| b.iter(experiments::fig6));
    group.bench_function("fig7_fig8_nondedicated", |b| b.iter(experiments::fig7_fig8));
    group.finish();

    let mut ext = c.benchmark_group("ablations_extensions");
    ext.sample_size(10);
    ext.bench_function("ablation_order", |b| b.iter(experiments::ablation_order));
    ext.bench_function("ablation_policies", |b| {
        b.iter(experiments::ablation_policies)
    });
    ext.bench_function("ablation_omega", |b| b.iter(experiments::ablation_omega));
    ext.bench_function("ablation_gpu_startup", |b| {
        b.iter(experiments::ablation_gpu_startup)
    });
    ext.bench_function("ext_fpga", |b| b.iter(experiments::ext_fpga));
    ext.bench_function("ext_membership", |b| b.iter(experiments::ext_membership));
    ext.finish();
}

fn fast_config() -> Criterion {
    // One-core CI-friendly sampling; raise for precision work.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs_f64(1.5))
        .warm_up_time(std::time::Duration::from_secs_f64(0.5))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_tables
}
criterion_main!(benches);
