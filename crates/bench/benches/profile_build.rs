//! Striped-profile construction cost (per query, amortised over a whole
//! database scan — this is the SSE device model's short-query ramp).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{RngExt, SeedableRng};
use swhybrid_align::scoring::SubstMatrix;
use swhybrid_simd::profile::StripedProfile;

fn bench_profile(c: &mut Criterion) {
    let matrix = SubstMatrix::blosum62();
    let mut group = c.benchmark_group("profile_build");
    for qlen in [100usize, 500, 2500, 5000] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(qlen as u64);
        let query: Vec<u8> = (0..qlen).map(|_| rng.random_range(0..20u8)).collect();
        group.throughput(Throughput::Elements(qlen as u64));
        group.bench_with_input(BenchmarkId::new("i8", qlen), &qlen, |b, _| {
            b.iter(|| StripedProfile::<i8>::build(&query, &matrix))
        });
        group.bench_with_input(BenchmarkId::new("i16", qlen), &qlen, |b, _| {
            b.iter(|| StripedProfile::<i16>::build(&query, &matrix))
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    // One-core CI-friendly sampling; raise for precision work.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs_f64(1.5))
        .warm_up_time(std::time::Duration::from_secs_f64(0.5))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_profile
}
criterion_main!(benches);
