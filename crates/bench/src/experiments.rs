//! One function per paper table/figure (and per ablation/extension).
//!
//! Each function is deterministic and returns a [`Table`] ready to print —
//! the thin binaries in `src/bin/` and the `run_all` driver both call these,
//! and the integration tests assert the headline shapes on the same code.

use std::sync::Arc;

use crate::{databases, fmt_cell, fmt_gcups, fmt_secs, run_config, workload, Config, Table};
use swhybrid_core::membership::Membership;
use swhybrid_core::platform::PlatformBuilder;
use swhybrid_core::policy::Policy;
use swhybrid_core::sim::SimPe;
use swhybrid_device::cpu::CpuSseDevice;
use swhybrid_device::gpu::GpuDevice;
use swhybrid_device::load::LoadSchedule;
use swhybrid_device::perfmodel::PerfModel;
use swhybrid_device::task::{DeviceModel, TaskSpec};
use swhybrid_seq::synth::QueryOrder;

/// Default order of the evaluation (see `DESIGN.md` §2).
pub const ORDER: QueryOrder = QueryOrder::Ascending;

/// Table II — the five genomic databases.
pub fn table2() -> Table {
    let mut t = Table::new(
        "table2",
        "Table II: genomic databases (synthetic stand-ins, full scale)",
        vec![
            "Database".into(),
            "Sequences".into(),
            "Residues".into(),
            "Mean len".into(),
            "Min".into(),
            "Max".into(),
        ],
    );
    for db in databases() {
        t.row(
            db.name.clone(),
            vec![
                db.num_sequences.to_string(),
                db.total_residues.to_string(),
                format!("{:.0}", db.mean_len()),
                db.min_len.to_string(),
                db.max_len.to_string(),
            ],
        );
    }
    t
}

/// Table III — SSE cores only: 1, 2, 4, 8 cores across the five databases.
pub fn table3() -> Table {
    let core_counts = [1usize, 2, 4, 8];
    let mut t = Table::new(
        "table3",
        "Table III: results for the SSE cores (time s / GCUPS)",
        std::iter::once("Database".to_string())
            .chain(core_counts.iter().map(|c| format!("{c} SSE")))
            .collect(),
    );
    for db in databases() {
        let cells: Vec<String> = core_counts
            .iter()
            .map(|&c| {
                let out = run_config(
                    Config {
                        gpus: 0,
                        sse_cores: c,
                    },
                    &db,
                    Policy::pss_default(),
                    true,
                    ORDER,
                );
                fmt_cell(&out)
            })
            .collect();
        t.row(db.name.clone(), cells);
    }
    t
}

/// Table IV — GPUs only: 1, 2, 4 GPUs across the five databases.
pub fn table4() -> Table {
    let gpu_counts = [1usize, 2, 4];
    let mut t = Table::new(
        "table4",
        "Table IV: results for the GPUs (time s / GCUPS)",
        std::iter::once("Database".to_string())
            .chain(gpu_counts.iter().map(|g| format!("{g} GPU")))
            .collect(),
    );
    for db in databases() {
        let cells: Vec<String> = gpu_counts
            .iter()
            .map(|&g| {
                let out = run_config(
                    Config {
                        gpus: g,
                        sse_cores: 0,
                    },
                    &db,
                    Policy::pss_default(),
                    true,
                    ORDER,
                );
                fmt_cell(&out)
            })
            .collect();
        t.row(db.name.clone(), cells);
    }
    t
}

/// Table V — hybrid configurations across the five databases.
pub fn table5() -> Table {
    let configs = [
        Config {
            gpus: 1,
            sse_cores: 1,
        },
        Config {
            gpus: 1,
            sse_cores: 2,
        },
        Config {
            gpus: 1,
            sse_cores: 4,
        },
        Config {
            gpus: 2,
            sse_cores: 4,
        },
        Config {
            gpus: 4,
            sse_cores: 4,
        },
    ];
    let mut t = Table::new(
        "table5",
        "Table V: results for the GPUs and SSEs (time s / GCUPS)",
        std::iter::once("Database".to_string())
            .chain(configs.iter().map(|c| c.label()))
            .collect(),
    );
    for db in databases() {
        let cells: Vec<String> = configs
            .iter()
            .map(|&c| fmt_cell(&run_config(c, &db, Policy::pss_default(), true, ORDER)))
            .collect();
        t.row(db.name.clone(), cells);
    }
    t
}

/// The Fig. 5 worked-example platform: one GPU exactly 6× faster than three
/// SSE cores, 20 tasks of 1 s GPU time each.
pub fn fig5_platform(adjustment: bool) -> PlatformBuilder {
    let flat = |name: &str, gcups: f64| -> Arc<dyn DeviceModel> {
        let model = PerfModel {
            peak_gcups: gcups,
            startup_seconds: 0.0,
            transfer_bytes_per_sec: None,
            query_ramp: 0.0,
            db_fill: 0.0,
        };
        if gcups > 1.0 {
            Arc::new(GpuDevice::with_model(name, model))
        } else {
            Arc::new(CpuSseDevice::with_model(name, model))
        }
    };
    PlatformBuilder::new()
        .pe(SimPe::new("GPU1", flat("GPU1", 6.0)))
        .pe(SimPe::new("SSE1", flat("SSE1", 1.0)))
        .pe(SimPe::new("SSE2", flat("SSE2", 1.0)))
        .pe(SimPe::new("SSE3", flat("SSE3", 1.0)))
        .policy(Policy::pss_default())
        .adjustment(adjustment)
        .comm_latency(0.0)
}

/// The Fig. 5 workload: 20 identical tasks of 6 Gcells (1 s on the GPU).
pub fn fig5_workload() -> Vec<TaskSpec> {
    (0..20)
        .map(|id| TaskSpec {
            id,
            query_len: 1000,
            queries: 1,
            db_residues: 6_000_000,
            db_sequences: 1_000,
        })
        .collect()
}

/// Fig. 5 — the worked example, with and without the adjustment mechanism.
/// Returns the summary table plus the two ASCII Gantt charts.
pub fn fig5() -> (Table, String) {
    let mut t = Table::new(
        "fig5",
        "Fig. 5: worked example (1 GPU 6x faster than 3 SSEs, 20 tasks)",
        vec![
            "Mechanism".into(),
            "Makespan (s)".into(),
            "Paper (s)".into(),
        ],
    );
    let mut gantts = String::new();
    for (label, adj, paper) in [
        ("with adjustment", true, 14.0),
        ("without adjustment", false, 18.0),
    ] {
        let out = fig5_platform(adj).run(fig5_workload());
        t.row(label, vec![fmt_secs(out.seconds()), fmt_secs(paper)]);
        gantts.push_str(&format!("--- {label} ---\n"));
        gantts.push_str(&out.report.trace.render_gantt(&out.pe_names, 72));
        gantts.push('\n');
    }
    (t, gantts)
}

/// Fig. 6 — GCUPS with/without the adjustment mechanism, SwissProt.
pub fn fig6() -> Table {
    let configs = [
        Config {
            gpus: 1,
            sse_cores: 0,
        },
        Config {
            gpus: 1,
            sse_cores: 4,
        },
        Config {
            gpus: 2,
            sse_cores: 0,
        },
        Config {
            gpus: 2,
            sse_cores: 4,
        },
        Config {
            gpus: 4,
            sse_cores: 0,
        },
        Config {
            gpus: 4,
            sse_cores: 4,
        },
    ];
    let sw = databases().into_iter().last().expect("five databases");
    let mut t = Table::new(
        "fig6",
        "Fig. 6: GCUPS on UniProtKB/SwissProt with/without workload adjustment",
        vec![
            "Configuration".into(),
            "Without (GCUPS)".into(),
            "With (GCUPS)".into(),
            "Gain %".into(),
        ],
    );
    for c in configs {
        let with = run_config(c, &sw, Policy::pss_default(), true, ORDER);
        let without = run_config(c, &sw, Policy::pss_default(), false, ORDER);
        let gain = (with.gcups() / without.gcups() - 1.0) * 100.0;
        t.row(
            c.label(),
            vec![
                fmt_gcups(without.gcups()),
                fmt_gcups(with.gcups()),
                format!("{gain:+.1}"),
            ],
        );
    }
    t
}

/// Shared platform for Figs. 7/8: 4 SSE cores on the Ensembl Dog workload.
fn fig78_run(load_on_core0: Option<LoadSchedule>) -> swhybrid_core::platform::SimOutcome {
    let dog = databases().into_iter().next().expect("five databases");
    let mut b = PlatformBuilder::new()
        .sse_cores(4)
        .policy(Policy::pss_default())
        .adjustment(true)
        .notify_interval(5.0);
    if let Some(load) = load_on_core0 {
        b = b.load_on(0, load);
    }
    b.run(workload(&dog, ORDER))
}

/// Figs. 7 & 8 — per-core GCUPS series, dedicated vs. local load on core 0
/// after 60 s. Returns `(series table, summary table)`.
pub fn fig7_fig8() -> (Table, Table) {
    let dedicated = fig78_run(None);
    let loaded = fig78_run(Some(LoadSchedule::step_at(60.0, 0.45)));

    let mut series = Table::new(
        "fig7_fig8_series",
        "Figs. 7/8: per-core GCUPS notifications (dedicated | loaded core 0 @60s)",
        vec![
            "t (s)".into(),
            "ded c0".into(),
            "ded c1".into(),
            "ded c2".into(),
            "ded c3".into(),
            "load c0".into(),
            "load c1".into(),
            "load c2".into(),
            "load c3".into(),
        ],
    );
    let horizon = dedicated.seconds().max(loaded.seconds());
    let mut t = 5.0;
    while t <= horizon {
        let mut row = Vec::with_capacity(8);
        for out in [&dedicated, &loaded] {
            for core in 0..4 {
                let v = out
                    .report
                    .trace
                    .pe_notifications(core)
                    .iter()
                    .filter(|&&(time, _)| (time - t).abs() < 2.5)
                    .map(|&(_, g)| g)
                    .next_back();
                row.push(match v {
                    Some(g) => fmt_gcups(g),
                    None => "-".into(),
                });
            }
        }
        series.row(format!("{t:.0}"), row);
        t += 5.0;
    }

    let mut summary = Table::new(
        "fig8_summary",
        "Fig. 8: wall-clock impact of local load on core 0 (x0.45 after 60 s)",
        vec!["Scenario".into(), "Time (s)".into(), "GCUPS".into()],
    );
    summary.row(
        "dedicated (Fig. 7)",
        vec![fmt_secs(dedicated.seconds()), fmt_gcups(dedicated.gcups())],
    );
    summary.row(
        "core 0 loaded (Fig. 8)",
        vec![fmt_secs(loaded.seconds()), fmt_gcups(loaded.gcups())],
    );
    let inc = (loaded.seconds() / dedicated.seconds() - 1.0) * 100.0;
    summary.row(
        "increase (paper: +12.1%)",
        vec![format!("{inc:+.1}%"), "-".into()],
    );
    (series, summary)
}

/// Ablation — sensitivity of the Fig. 6 result to the query file order.
pub fn ablation_order() -> Table {
    let sw = databases().into_iter().last().expect("five databases");
    let mut t = Table::new(
        "ablation_order",
        "Ablation: query order vs adjustment gain (4 GPUs + 4 SSEs, SwissProt)",
        vec![
            "Order".into(),
            "Without (GCUPS)".into(),
            "With (GCUPS)".into(),
            "Gain %".into(),
        ],
    );
    let c = Config {
        gpus: 4,
        sse_cores: 4,
    };
    for (label, order) in [
        ("ascending", QueryOrder::Ascending),
        ("shuffled", QueryOrder::Shuffled),
        ("descending", QueryOrder::Descending),
    ] {
        let with = run_config(c, &sw, Policy::pss_default(), true, order);
        let without = run_config(c, &sw, Policy::pss_default(), false, order);
        let gain = (with.gcups() / without.gcups() - 1.0) * 100.0;
        t.row(
            label,
            vec![
                fmt_gcups(without.gcups()),
                fmt_gcups(with.gcups()),
                format!("{gain:+.1}"),
            ],
        );
    }
    t
}

/// Ablation — the four allocation policies on the hybrid platform.
pub fn ablation_policies() -> Table {
    let sw = databases().into_iter().last().expect("five databases");
    let mut t = Table::new(
        "ablation_policies",
        "Ablation: allocation policies (4 GPUs + 4 SSEs, SwissProt, adjustment on)",
        vec!["Policy".into(), "Time (s)".into(), "GCUPS".into()],
    );
    let c = Config {
        gpus: 4,
        sse_cores: 4,
    };
    for (label, policy) in [
        ("SS", Policy::SelfScheduling),
        ("PSS(5)", Policy::pss_default()),
        ("Fixed", Policy::Fixed),
        ("WFixed", Policy::WFixed),
    ] {
        let out = run_config(c, &sw, policy, true, ORDER);
        t.row(label, vec![fmt_secs(out.seconds()), fmt_gcups(out.gcups())]);
    }
    t
}

/// Ablation — the PSS window Ω under the Fig. 8 non-dedicated load.
pub fn ablation_omega() -> Table {
    let dog = databases().into_iter().next().expect("five databases");
    let mut t = Table::new(
        "ablation_omega",
        "Ablation: PSS window Omega under local load (4 SSEs, Ensembl Dog)",
        vec!["Omega".into(), "Time (s)".into(), "GCUPS".into()],
    );
    for omega in [1usize, 2, 5, 10, 20] {
        let out = PlatformBuilder::new()
            .sse_cores(4)
            .policy(Policy::Pss { omega })
            .adjustment(true)
            .load_on(0, LoadSchedule::step_at(60.0, 0.45))
            .run(workload(&dog, ORDER));
        t.row(
            omega.to_string(),
            vec![fmt_secs(out.seconds()), fmt_gcups(out.gcups())],
        );
    }
    t
}

/// Ablation — GPU per-invocation startup cost vs small-database GCUPS
/// (the mechanism behind Table IV's "SwissProt is ~2× the small databases").
pub fn ablation_gpu_startup() -> Table {
    let dbs = databases();
    let dog = &dbs[0];
    let sw = &dbs[4];
    let mut t = Table::new(
        "ablation_gpu_startup",
        "Ablation: GPU per-task startup vs achieved GCUPS (4 GPUs)",
        vec![
            "Startup (s)".into(),
            "Ensembl Dog GCUPS".into(),
            "SwissProt GCUPS".into(),
            "Ratio".into(),
        ],
    );
    for startup in [0.0, 0.25, 0.85, 2.0, 5.0] {
        let mut model = PerfModel::gtx580_cudasw();
        model.startup_seconds = startup;
        let run_db = |db: &swhybrid_seq::db::DbStats| {
            let mut b = PlatformBuilder::new();
            for i in 0..4 {
                let name = format!("gpu{i}");
                b = b.pe(SimPe::new(
                    name.clone(),
                    Arc::new(GpuDevice::with_model(name, model.clone())),
                ));
            }
            b.policy(Policy::pss_default())
                .adjustment(true)
                .run(workload(db, ORDER))
        };
        let small = run_db(dog);
        let big = run_db(sw);
        t.row(
            format!("{startup:.2}"),
            vec![
                fmt_gcups(small.gcups()),
                fmt_gcups(big.gcups()),
                format!("{:.2}", big.gcups() / small.gcups()),
            ],
        );
    }
    t
}

/// Ablation — the notification interval (the PSS feedback rate).
pub fn ablation_notify() -> Table {
    let dog = databases().into_iter().next().expect("five databases");
    let mut t = Table::new(
        "ablation_notify",
        "Ablation: notification interval under local load (4 SSEs, Ensembl Dog)",
        vec!["Interval (s)".into(), "Time (s)".into(), "GCUPS".into()],
    );
    for interval in [1.0, 2.0, 5.0, 15.0, 60.0] {
        let out = PlatformBuilder::new()
            .sse_cores(4)
            .policy(Policy::pss_default())
            .adjustment(true)
            .notify_interval(interval)
            .load_on(0, LoadSchedule::step_at(60.0, 0.45))
            .run(workload(&dog, ORDER));
        t.row(
            format!("{interval:.0}"),
            vec![fmt_secs(out.seconds()), fmt_gcups(out.gcups())],
        );
    }
    t
}

/// Ablation — master↔slave communication latency: the paper argues it is
/// negligible at very-coarse granularity; this sweep quantifies where that
/// stops being true.
pub fn ablation_latency() -> Table {
    let sw = databases().into_iter().last().expect("five databases");
    let mut t = Table::new(
        "ablation_latency",
        "Ablation: one-way master-slave latency (4 GPUs + 4 SSEs, SwissProt)",
        vec!["Latency".into(), "Time (s)".into(), "GCUPS".into()],
    );
    for (label, latency) in [
        ("0 (shared mem)", 0.0),
        ("0.1 ms (GbE)", 0.0001),
        ("1 ms", 0.001),
        ("50 ms (WAN)", 0.05),
        ("1 s (grid)", 1.0),
    ] {
        let out = PlatformBuilder::new()
            .gpus(4)
            .sse_cores(4)
            .policy(Policy::pss_default())
            .adjustment(true)
            .comm_latency(latency)
            .run(workload(&sw, ORDER));
        t.row(label, vec![fmt_secs(out.seconds()), fmt_gcups(out.gcups())]);
    }
    t
}

/// Ablation — SS vs PSS when local load appears mid-run (the adaptivity
/// claim of §V-C quantified against the non-adaptive baseline).
pub fn ablation_policy_under_load() -> Table {
    let dog = databases().into_iter().next().expect("five databases");
    let mut t = Table::new(
        "ablation_policy_under_load",
        "Ablation: policies under local load on core 0 (4 SSEs, Ensembl Dog)",
        vec![
            "Policy".into(),
            "Dedicated (s)".into(),
            "Loaded (s)".into(),
            "Penalty %".into(),
        ],
    );
    for (label, policy) in [
        ("SS", Policy::SelfScheduling),
        ("PSS(5)", Policy::pss_default()),
        ("Fixed", Policy::Fixed),
        ("WFixed", Policy::WFixed),
    ] {
        let run_with = |load: Option<LoadSchedule>| {
            let mut b = PlatformBuilder::new()
                .sse_cores(4)
                .policy(policy)
                .adjustment(true);
            if let Some(l) = load {
                b = b.load_on(0, l);
            }
            b.run(workload(&dog, ORDER))
        };
        let dedicated = run_with(None);
        let loaded = run_with(Some(LoadSchedule::step_at(60.0, 0.45)));
        let penalty = (loaded.seconds() / dedicated.seconds() - 1.0) * 100.0;
        t.row(
            label,
            vec![
                fmt_secs(dedicated.seconds()),
                fmt_secs(loaded.seconds()),
                format!("{penalty:+.1}"),
            ],
        );
    }
    t
}

/// Ablation — ready-queue dispatch order (extension): the paper's
/// file-order dispatch vs size-aware dispatch (fast PEs take the largest
/// ready tasks), 4 GPUs + 4 SSEs across all databases.
pub fn ablation_dispatch() -> Table {
    use swhybrid_core::master::Dispatch;
    let mut t = Table::new(
        "ablation_dispatch",
        "Ablation: ready-queue dispatch (4 GPUs + 4 SSEs vs 4 GPUs, time s)",
        vec![
            "Database".into(),
            "4 GPUs".into(),
            "hybrid file-order".into(),
            "hybrid size-aware".into(),
        ],
    );
    for db in databases() {
        let w = || workload(&db, ORDER);
        let gpu_only = PlatformBuilder::new().gpus(4).run(w());
        let fifo = PlatformBuilder::new().gpus(4).sse_cores(4).run(w());
        let aware = PlatformBuilder::new()
            .gpus(4)
            .sse_cores(4)
            .dispatch(Dispatch::SizeAware)
            .run(w());
        t.row(
            db.name.clone(),
            vec![
                fmt_secs(gpu_only.seconds()),
                fmt_secs(fifo.seconds()),
                fmt_secs(aware.seconds()),
            ],
        );
    }
    t
}

/// Ablation — inside one CUDASW++ invocation: why the database is sorted
/// (warp-divergence waste) and why small databases get poor GCUPS
/// (occupancy), from the structural simulator.
pub fn ablation_cudasw() -> Table {
    use swhybrid_device::cudasw::CudaswSim;
    use swhybrid_seq::synth::paper_databases;

    let sim = CudaswSim::gtx580();
    let mut t = Table::new(
        "ablation_cudasw",
        "Ablation: one CUDASW++ invocation, structural view (2,550-aa query)",
        vec![
            "Database (sampled)".into(),
            "Warps".into(),
            "Occupancy".into(),
            "Waste sorted".into(),
            "Waste unsorted".into(),
            "GCUPS".into(),
        ],
    );
    for profile in paper_databases().iter().take(4) {
        // Materialise a 6% sample: the length *distribution* is what the
        // kernels react to, and a sample preserves it.
        let lengths: Vec<usize> = profile
            .generate_scaled(5, 0.06)
            .sequences
            .iter()
            .map(|s| s.len())
            .collect();
        let sorted = sim.plan(2550, &lengths, true);
        // Interleaved short/long order as the unsorted strawman.
        let mut asc = lengths.clone();
        asc.sort_unstable();
        let (lo, hi) = asc.split_at(asc.len() / 2);
        let mut interleaved = Vec::with_capacity(asc.len());
        for i in 0..asc.len() / 2 {
            interleaved.push(lo[i]);
            interleaved.push(hi[hi.len() - 1 - i]);
        }
        let unsorted = sim.plan(2550, &interleaved, false);
        t.row(
            format!("{} (6%)", profile.name),
            vec![
                sorted.warps.to_string(),
                format!("{:.0}%", sorted.occupancy * 100.0),
                format!("{:.2}x", sorted.waste_factor()),
                format!("{:.2}x", unsorted.waste_factor()),
                fmt_gcups(sorted.gcups()),
            ],
        );
    }
    t
}

/// Extension — FPGA PEs joining the platform (paper §VI future work).
pub fn ext_fpga() -> Table {
    let sw = databases().into_iter().last().expect("five databases");
    let mut t = Table::new(
        "ext_fpga",
        "Extension: FPGA integration (SwissProt, PSS + adjustment)",
        vec!["Platform".into(), "Time (s)".into(), "GCUPS".into()],
    );
    for (label, g, s, f) in [
        ("4 GPUs", 4, 0, 0),
        ("4G+4S", 4, 4, 0),
        ("1 FPGA", 0, 0, 1),
        ("4G+1F", 4, 0, 1),
        ("4G+4S+2F", 4, 4, 2),
    ] {
        let out = PlatformBuilder::new()
            .gpus(g)
            .sse_cores(s)
            .fpgas(f)
            .policy(Policy::pss_default())
            .adjustment(true)
            .run(workload(&sw, ORDER));
        t.row(label, vec![fmt_secs(out.seconds()), fmt_gcups(out.gcups())]);
    }
    t
}

/// Extension — PEs joining/leaving mid-run (paper §VI future work).
pub fn ext_membership() -> Table {
    let sw = databases().into_iter().last().expect("five databases");
    let mut t = Table::new(
        "ext_membership",
        "Extension: dynamic membership (SwissProt, 2 GPUs + 4 SSEs)",
        vec!["Scenario".into(), "Time (s)".into(), "GCUPS".into()],
    );
    let base = || {
        PlatformBuilder::new()
            .gpus(2)
            .sse_cores(4)
            .policy(Policy::pss_default())
            .adjustment(true)
    };
    let stable = base().run(workload(&sw, ORDER));
    t.row(
        "stable platform",
        vec![fmt_secs(stable.seconds()), fmt_gcups(stable.gcups())],
    );
    // gpu1 leaves at t=100 s: its tasks return to ready.
    let leave = base()
        .membership(1, Membership::leaving_at(100.0))
        .run(workload(&sw, ORDER));
    t.row(
        "gpu1 leaves @100s",
        vec![fmt_secs(leave.seconds()), fmt_gcups(leave.gcups())],
    );
    // a third GPU joins at t=100 s.
    let join = base()
        .gpus(1)
        .membership(6, Membership::joining_at(100.0))
        .run(workload(&sw, ORDER));
    t.row(
        "gpu2 joins @100s",
        vec![fmt_secs(join.seconds()), fmt_gcups(join.gcups())],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matches_paper_exactly() {
        let with = fig5_platform(true).run(fig5_workload());
        let without = fig5_platform(false).run(fig5_workload());
        assert!((with.seconds() - 14.0).abs() < 0.01, "{}", with.seconds());
        assert!(
            (without.seconds() - 18.0).abs() < 0.01,
            "{}",
            without.seconds()
        );
    }

    #[test]
    fn table3_sse_scaling_is_near_linear() {
        // §V-A-1: "speedups close to linear are obtained for all databases".
        let sw = databases().into_iter().last().unwrap();
        let t1 = run_config(
            Config {
                gpus: 0,
                sse_cores: 1,
            },
            &sw,
            Policy::pss_default(),
            true,
            ORDER,
        );
        let t8 = run_config(
            Config {
                gpus: 0,
                sse_cores: 8,
            },
            &sw,
            Policy::pss_default(),
            true,
            ORDER,
        );
        let speedup = t1.seconds() / t8.seconds();
        assert!((6.0..8.5).contains(&speedup), "speedup {speedup}");
        // Headline: ~7,190 s on one SSE core for SwissProt.
        assert!(
            (6500.0..8000.0).contains(&t1.seconds()),
            "1-core SwissProt time {}",
            t1.seconds()
        );
    }

    #[test]
    fn table4_swissprot_gpu_gcups_is_about_double_small_dbs() {
        let dbs = databases();
        let dog = run_config(
            Config {
                gpus: 4,
                sse_cores: 0,
            },
            &dbs[0],
            Policy::pss_default(),
            true,
            ORDER,
        );
        let sw = run_config(
            Config {
                gpus: 4,
                sse_cores: 0,
            },
            &dbs[4],
            Policy::pss_default(),
            true,
            ORDER,
        );
        let ratio = sw.gcups() / dog.gcups();
        assert!((1.4..2.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig8_load_increase_is_modest() {
        let (_, summary) = fig7_fig8();
        // Third row's first value holds the formatted increase.
        let inc: f64 = summary.rows[2].1[0]
            .trim_end_matches('%')
            .parse()
            .expect("formatted number");
        // Paper: +12.1%. Capacity lost is ~14% of the platform from t=60;
        // PSS + adjustment keep the damage in the same band.
        assert!((2.0..30.0).contains(&inc), "increase {inc}%");
    }

    #[test]
    fn membership_scenarios_bracket_the_stable_run() {
        let t = ext_membership();
        let secs: Vec<f64> = t.rows.iter().map(|r| r.1[0].parse().unwrap()).collect();
        let (stable, leave, join) = (secs[0], secs[1], secs[2]);
        assert!(leave > stable, "losing a GPU must cost time");
        assert!(join < stable, "gaining a GPU must save time");
    }
}
