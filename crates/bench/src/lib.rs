//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the paper's evaluation (§V) has a binary in
//! `src/bin/` that builds its workload through this module, runs the
//! platform simulation (or real kernels, for the microbenches), prints the
//! paper-style rows, and dumps machine-readable JSON under
//! `target/experiments/` for `EXPERIMENTS.md`.

use std::io::Write as _;
use std::path::PathBuf;

use swhybrid_json::Json;

use swhybrid_core::platform::{PlatformBuilder, SimOutcome};
use swhybrid_core::policy::Policy;
use swhybrid_device::task::TaskSpec;
use swhybrid_seq::db::DbStats;
use swhybrid_seq::synth::{paper_databases, QueryOrder, QuerySetSpec};

/// Seed used by every deterministic experiment.
pub const WORKLOAD_SEED: u64 = 2013;

/// The five paper databases at full scale, in Table II order.
pub fn databases() -> Vec<DbStats> {
    paper_databases()
        .iter()
        .map(|p| p.full_scale_stats())
        .collect()
}

/// The paper's 40-query set (ascending file order — see `DESIGN.md` §2).
pub fn paper_queries() -> QuerySetSpec {
    QuerySetSpec::paper()
}

/// The workload for one database under the paper query set.
pub fn workload(db: &DbStats, order: QueryOrder) -> Vec<TaskSpec> {
    let mut spec = paper_queries();
    spec.order = order;
    PlatformBuilder::workload(db, &spec, WORKLOAD_SEED)
}

/// A platform configuration of the evaluation: `gpus` GTX 580s plus
/// `sse_cores` i7 SSE cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of GPUs.
    pub gpus: usize,
    /// Number of SSE cores.
    pub sse_cores: usize,
}

impl Config {
    /// Short label like `"4G+4S"` or `"2 GPUs"`.
    pub fn label(&self) -> String {
        match (self.gpus, self.sse_cores) {
            (g, 0) => format!("{g} GPU{}", if g == 1 { "" } else { "s" }),
            (0, s) => format!("{s} SSE{}", if s == 1 { "" } else { "s" }),
            (g, s) => format!("{g}G+{s}S"),
        }
    }
}

/// Run one configuration on one database's paper workload.
pub fn run_config(
    config: Config,
    db: &DbStats,
    policy: Policy,
    adjustment: bool,
    order: QueryOrder,
) -> SimOutcome {
    PlatformBuilder::new()
        .gpus(config.gpus)
        .sse_cores(config.sse_cores)
        .policy(policy)
        .adjustment(adjustment)
        .run(workload(db, order))
}

/// A printable/serialisable experiment result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `"table3"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows: label + one string per remaining header.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Start a table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: Vec<String>) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<String>) {
        let values_len = values.len();
        assert_eq!(
            values_len + 1,
            self.headers.len(),
            "row has {} values for {} headers",
            values_len,
            self.headers.len() - 1
        );
        self.rows.push((label.into(), values));
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for (label, values) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, v) in values.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(v.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_line = |cells: Vec<String>, widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_line(self.headers.clone(), &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for (label, values) in &self.rows {
            let mut cells = vec![label.clone()];
            cells.extend(values.iter().cloned());
            out.push_str(&fmt_line(cells, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and persist JSON under `target/experiments/<id>.json`.
    pub fn emit(&self) {
        println!("{}", self.render());
        if let Err(e) = self.save_json() {
            eprintln!("warning: could not save JSON for {}: {e}", self.id);
        }
    }

    fn save_json(&self) -> std::io::Result<PathBuf> {
        let dir = experiments_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().to_string_pretty().as_bytes())?;
        Ok(path)
    }

    /// The table as a JSON value (same shape serde produced: struct
    /// fields as keys, rows as `[label, [values...]]` pairs).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::str(&self.id)),
            ("title", Json::str(&self.title)),
            (
                "headers",
                Json::Arr(self.headers.iter().map(Json::str).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(label, values)| {
                            Json::Arr(vec![
                                Json::str(label),
                                Json::Arr(values.iter().map(Json::str).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Where experiment JSON dumps land.
pub fn experiments_dir() -> PathBuf {
    // target/ lives next to the workspace root Cargo.toml.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join("target").join("experiments")
}

/// Seconds with one decimal.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.1}")
}

/// Format a GCUPS value.
pub fn fmt_gcups(g: f64) -> String {
    format!("{g:.2}")
}

/// Format a "seconds / GCUPS" cell as the paper's tables do.
pub fn fmt_cell(out: &SimOutcome) -> String {
    format!("{} / {}", fmt_secs(out.seconds()), fmt_gcups(out.gcups()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn databases_are_the_five_paper_ones() {
        let dbs = databases();
        assert_eq!(dbs.len(), 5);
        assert!(dbs[4].name.contains("SwissProt"));
    }

    #[test]
    fn config_labels() {
        assert_eq!(
            Config {
                gpus: 1,
                sse_cores: 0
            }
            .label(),
            "1 GPU"
        );
        assert_eq!(
            Config {
                gpus: 4,
                sse_cores: 4
            }
            .label(),
            "4G+4S"
        );
        assert_eq!(
            Config {
                gpus: 0,
                sse_cores: 8
            }
            .label(),
            "8 SSEs"
        );
    }

    #[test]
    fn table_render_aligns() {
        let mut t = Table::new(
            "test",
            "Test table",
            vec!["db".into(), "a".into(), "b".into()],
        );
        t.row("swissprot", vec!["1.0".into(), "2.0".into()]);
        let s = t.render();
        assert!(s.contains("swissprot"));
        assert!(s.contains("Test table"));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("x", "x", vec!["a".into(), "b".into()]);
        t.row("r", vec![]);
    }

    #[test]
    fn workload_is_deterministic() {
        let dbs = databases();
        let a = workload(&dbs[0], QueryOrder::Shuffled);
        let b = workload(&dbs[0], QueryOrder::Shuffled);
        assert_eq!(a.len(), 40);
        assert_eq!(
            a.iter().map(|t| t.query_len).collect::<Vec<_>>(),
            b.iter().map(|t| t.query_len).collect::<Vec<_>>()
        );
    }
}

pub mod experiments;
