//! Regenerates the ablation_policy_under_load experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_policy_under_load().emit();
}
