//! Regenerates the paper's ablation_order experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_order().emit();
}
