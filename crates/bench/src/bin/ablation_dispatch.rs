//! Regenerates the ablation_dispatch experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_dispatch().emit();
}
