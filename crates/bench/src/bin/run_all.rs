//! Runs every paper experiment in order, printing all tables and saving
//! their JSON dumps under target/experiments/.
use swhybrid_bench::experiments as e;

fn main() {
    e::table2().emit();
    e::table3().emit();
    e::table4().emit();
    e::table5().emit();
    let (fig5, gantts) = e::fig5();
    fig5.emit();
    println!("{gantts}");
    e::fig6().emit();
    let (series, summary) = e::fig7_fig8();
    series.emit();
    summary.emit();
    e::ablation_order().emit();
    e::ablation_policies().emit();
    e::ablation_omega().emit();
    e::ablation_gpu_startup().emit();
    e::ablation_notify().emit();
    e::ablation_latency().emit();
    e::ablation_policy_under_load().emit();
    e::ablation_cudasw().emit();
    e::ablation_dispatch().emit();
    e::ext_fpga().emit();
    e::ext_membership().emit();
}
