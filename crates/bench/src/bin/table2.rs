//! Regenerates the paper's table2 experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::table2().emit();
}
