//! Regenerates the ablation_latency experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_latency().emit();
}
