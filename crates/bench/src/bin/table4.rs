//! Regenerates the paper's table4 experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::table4().emit();
}
