//! Regenerates the ablation_notify experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_notify().emit();
}
