//! Regenerates the paper's fig6 experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::fig6().emit();
}
