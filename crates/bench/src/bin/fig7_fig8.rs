//! Regenerates Figs. 7/8: dedicated vs non-dedicated 4-core execution.
fn main() {
    let (series, summary) = swhybrid_bench::experiments::fig7_fig8();
    series.emit();
    summary.emit();
}
