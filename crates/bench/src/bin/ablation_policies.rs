//! Regenerates the paper's ablation_policies experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_policies().emit();
}
