//! Regenerates the paper's ablation_omega experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_omega().emit();
}
