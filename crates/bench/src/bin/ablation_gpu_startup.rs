//! Regenerates the paper's ablation_gpu_startup experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_gpu_startup().emit();
}
