//! Regenerates the paper's Fig. 5 worked example (14 s vs 18 s) with Gantt charts.
fn main() {
    let (table, gantts) = swhybrid_bench::experiments::fig5();
    table.emit();
    println!("{gantts}");
}
