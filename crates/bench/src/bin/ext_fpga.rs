//! Regenerates the paper's ext_fpga experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ext_fpga().emit();
}
