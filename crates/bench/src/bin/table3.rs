//! Regenerates the paper's table3 experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::table3().emit();
}
