//! Regenerates the paper's table5 experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::table5().emit();
}
