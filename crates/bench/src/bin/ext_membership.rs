//! Regenerates the paper's ext_membership experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ext_membership().emit();
}
