//! Regenerates the ablation_cudasw experiment. See swhybrid_bench::experiments.
fn main() {
    swhybrid_bench::experiments::ablation_cudasw().emit();
}
