//! Dependency-free JSON for swhybrid.
//!
//! One value type ([`Json`]), a recursive-descent parser ([`Json::parse`]),
//! and a compact writer (`Display` / [`Json::to_string_pretty`]). Used by
//! the `core::net` newline-delimited wire protocol, the `core::trace`
//! event export, and the bench table dumps — everywhere the workspace
//! previously reached for `serde_json`, which is unavailable in offline
//! builds.
//!
//! Scope notes: numbers are `f64` (integers up to 2^53 round-trip
//! exactly, which covers cell counts and indices here); non-finite
//! numbers serialize as `null`; object keys keep insertion order.

use std::fmt;

/// A parsed or under-construction JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: a message and the byte offset it refers to.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Convenience constructor for object values.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(n) => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object field lookup (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    /// Compact single-line serialization (the wire format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut out = String::new();
                write_string(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut out = String::new();
                    write_string(&mut out, key);
                    f.write_str(&out)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped on ASCII
                // delimiters, so this slice is valid UTF-8 too.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require the low half.
                                self.pos += 1; // past last hex digit of first
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Reads 4 hex digits; on success `pos` is on the LAST digit (the
    /// caller's shared `self.pos += 1` advances past it).
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for i in 0..4 {
            let b = self
                .bytes
                .get(self.pos + i)
                .copied()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        self.pos += 3;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let doc = r#"{"type":"finished","task":3,"gcups":1.25,"hits":[{"db_index":0,"id":"q","score":-7,"ok":true,"note":null}]}"#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.to_string(), doc);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true, "e": -9}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("e").and_then(Json::as_i64), Some(-9));
        assert_eq!(v.get("e").and_then(Json::as_u64), None);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::str("line1\nline2\t\"quoted\" back\\slash \u{1}");
        let reparsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé🦀""#).unwrap(), Json::str("Aé🦀"));
        assert!(Json::parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        let big = 9.007199254740992e15; // 2^53: printed in float form, reparses equal
        assert_eq!(
            Json::parse(&Json::Num(big).to_string()).unwrap(),
            Json::Num(big)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "{'a': 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v = Json::obj([
            ("rows", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj([("k", Json::str("v"))])),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }
}
