//! Scheduling and cross-query fusion: draining the admission queue into
//! fused shard-task groups, and the fusion-window flusher that stops a
//! straggler from waiting forever for companions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use swhybrid_core::master::Master;
use swhybrid_device::task::TaskSpec;

use super::{FusedTask, Inner, Phase, ServeOwner, ACCEPT_QUANTUM};

/// The fusion-window flusher: a mostly-idle thread that schedules a held
/// undersized group once its window elapses. Under steady concurrent
/// load the batch fills before the deadline and this thread never pumps;
/// it exists so a straggler's query cannot wait forever for companions
/// that never come.
pub(super) fn spawn_window_flusher(
    inner: Arc<Inner>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let window = inner.cfg.fusion_window_ms / 1000.0;
    std::thread::Builder::new()
        .name("swhybrid-serve-fuser".to_string())
        .spawn(move || loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let mut g = inner.pool.lock();
            let now = inner.pool.now();
            match g.owner.window_open_since {
                Some(t0) if now - t0 >= window => {
                    g.owner.window_open_since = None;
                    let core = &mut *g;
                    pump(&mut core.master, &mut core.owner, now, true);
                    drop(g);
                    inner.pool.notify_all();
                }
                Some(t0) => {
                    // Sleep out the remainder; a submit that fills the
                    // batch pumps on its own thread, so oversleeping here
                    // only ever delays a straggler, never a full group.
                    let left = (window - (now - t0)).max(0.0005);
                    let _g = inner.pool.wait_timeout(g, Duration::from_secs_f64(left));
                }
                None => {
                    let _g = inner.pool.wait_timeout(g, ACCEPT_QUANTUM);
                }
            }
        })
        .expect("spawn fusion-window flusher")
}

/// Admit queued jobs into the task pool up to the active-group bound,
/// fusing co-queued same-generation queries into shared shard tasks (up
/// to [`super::ServiceConfig::fusion`] queries per group).
pub(super) fn pump(master: &mut Master, o: &mut ServeOwner, now: f64, flush: bool) {
    // A popped job whose snapshot generation differs from the group being
    // formed starts the next group instead (it cannot be pushed back into
    // the admission queue). In the rare swap-db race this can transiently
    // overshoot `max_active` by the carried group; it never loses a job.
    let mut carry: Option<u64> = None;
    while carry.is_some() || o.active_groups < o.cfg.max_active {
        // Fusion window: an undersized backlog (carried jobs excepted —
        // they are already popped) holds briefly for companions instead
        // of scheduling a lonely pass. The flusher thread re-pumps with
        // `flush` once the window elapses; draining flushes immediately.
        if carry.is_none()
            && !flush
            && !o.draining
            && o.cfg.fusion > 1
            && o.cfg.fusion_window_ms > 0.0
            && o.queue.depth() > 0
            && o.queue.depth() < o.cfg.fusion
        {
            if o.window_open_since.is_none() {
                o.window_open_since = Some(now);
            }
            return;
        }
        let mut group: Vec<u64> = carry.take().into_iter().collect();
        while group.len() < o.cfg.fusion {
            let Some(job_id) = o.queue.pop_next() else {
                break;
            };
            if o.jobs.get(&job_id).is_none_or(|j| j.cancelled) {
                continue;
            }
            if group
                .first()
                .is_some_and(|head| o.jobs[head].generation != o.jobs[&job_id].generation)
            {
                carry = Some(job_id);
                break;
            }
            group.push(job_id);
        }
        if group.is_empty() {
            o.window_open_since = None;
            break;
        }
        o.window_open_since = None;
        schedule_group(master, o, &group);
    }
}

/// Submit one fused group (1..=fusion jobs sharing a database snapshot
/// generation) as a set of shard tasks, one task per shard scoring the
/// whole batch.
fn schedule_group(master: &mut Master, o: &mut ServeOwner, group: &[u64]) {
    let Some(&head) = group.first() else {
        return;
    };
    let (shards, specs) = {
        let first = &o.jobs[&head];
        let shards = first.db.shard_ranges(o.cfg.shards);
        // A fused task computes every member's matrix against the shard,
        // so its spec charges the batch's summed query length — PSS cell
        // accounting then counts K× cells per task automatically.
        let qlen: usize = group
            .iter()
            .map(|id| {
                o.jobs[id]
                    .prepared
                    .as_ref()
                    .expect("queued jobs carry profiles")
                    .query_len()
            })
            .sum();
        let specs: Vec<TaskSpec> = shards
            .iter()
            .map(|&(s, e)| TaskSpec {
                id: 0, // rewritten by the pool
                query_len: qlen,
                queries: group.len(),
                db_residues: first.db.range_residues(s..e),
                db_sequences: e - s,
            })
            .collect();
        (shards, specs)
    };
    let tasks = master.submit_tasks(specs);
    o.metrics.fused_tasks += tasks.len() as u64;
    o.metrics.fused_queries += (tasks.len() * group.len()) as u64;
    for (shard_idx, &t) in tasks.iter().enumerate() {
        o.task_map.insert(
            t,
            FusedTask {
                jobs: group.to_vec(),
                shard_idx,
                group_tasks: tasks.clone(),
            },
        );
    }
    let n = shards.len();
    for id in group {
        let job = o.jobs.get_mut(id).expect("grouped jobs are live");
        job.shards = shards.clone();
        job.phase = Phase::Running {
            pending: n,
            shard_hits: vec![None; n],
            cells: 0,
            kernels: Default::default(),
        };
        o.active_jobs += 1;
    }
    o.active_groups += 1;
}
