//! Lifecycle transitions: hot database reloads, draining, and shutdown.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::DbSnapshot;

use super::QueryService;

impl QueryService {
    /// Replace the database from owned sequences (re-encodes and
    /// re-hashes — the FASTA reload path). See
    /// [`QueryService::swap_snapshot`] for the semantics.
    pub fn swap_db(&self, subjects: Vec<EncodedSequence>) {
        self.swap_snapshot(DbSnapshot::from_encoded("", &subjects));
    }

    /// Atomically swap the daemon onto a new database snapshot (a hot
    /// reload). Running jobs keep scanning their own snapshot
    /// (`Arc`-shared), so no query ever observes a mixed-generation
    /// database; new submissions see the new content under a bumped
    /// generation, which makes every cached result of the old database
    /// unreachable (the cache is also cleared outright to release the
    /// memory). Remote slaves are disconnected — their database copy is
    /// now stale — and their in-flight shards requeue to the local
    /// workers; a slave holding the new database can immediately rejoin
    /// under its digest. Returns the new generation.
    pub fn swap_snapshot(&self, snapshot: DbSnapshot) -> u64 {
        let (generation, remote) = {
            let mut g = self.inner.pool.lock();
            let o = &mut g.owner;
            o.db = Arc::new(snapshot);
            o.db_generation += 1;
            o.cache.clear();
            let generation = o.db_generation;
            (generation, g.remote_members())
        };
        for pe in remote {
            self.inner.pool.disconnect(pe, false);
        }
        generation
    }

    /// The current generation number and database snapshot.
    pub fn db(&self) -> (u64, Arc<DbSnapshot>) {
        let g = self.inner.pool.lock();
        (g.owner.db_generation, Arc::clone(&g.owner.db))
    }

    /// Stop admitting new queries; queued and running ones still complete.
    pub fn begin_drain(&self) {
        self.inner.pool.lock().owner.draining = true;
        self.inner.pool.notify_all();
    }

    /// Graceful shutdown: reject new admissions, wait for every queued and
    /// running job to deliver its reply, then stop the workers (and any
    /// slave listeners) and join them.
    pub fn shutdown(mut self) {
        self.begin_drain();
        loop {
            let mut g = self.inner.pool.lock();
            if g.owner.active_jobs == 0 && g.owner.queue.depth() == 0 {
                g.master.set_keep_alive(false);
                break;
            }
            let _g = self.inner.pool.wait_timeout(g, Duration::from_millis(50));
        }
        self.inner.pool.notify_all();
        self.stop_everything();
    }

    /// Stop listeners, disconnect remote slaves, join workers.
    fn stop_everything(&mut self) {
        self.stop_listeners.store(true, Ordering::Relaxed);
        let listeners: Vec<_> = self
            .listeners
            .lock()
            .expect("listener registry")
            .drain(..)
            .collect();
        for h in listeners {
            h.join().expect("slave listener panicked");
        }
        // Remote sessions see `Done` on their next request; disconnect the
        // rest proactively so their reader threads exit within a quantum.
        // The member list must be snapshotted BEFORE the loop: a `for` over
        // `pool.lock().remote_members()` keeps the guard alive for the whole
        // loop body, and `disconnect` locks the pool again — self-deadlock.
        let remote = self.inner.pool.lock().remote_members();
        for pe in remote {
            self.inner.pool.disconnect(pe, false);
        }
        for h in self.workers.drain(..) {
            h.join().expect("PE worker panicked");
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown() already joined
        }
        {
            let mut g = self.inner.pool.lock();
            g.owner.draining = true;
            g.master.set_keep_alive(false);
        }
        self.inner.pool.notify_all();
        self.stop_everything();
    }
}
