//! Observability: the `stats` reply body (folding pending runtime events
//! into the per-PE series first) and the scoring-scheme digest.

use swhybrid_align::scoring::{GapModel, Scoring};
use swhybrid_core::net::kernels_to_json;
use swhybrid_json::Json;
use swhybrid_seq::digest::Fnv1a;

use super::admit::sweep_retired;
use super::QueryService;

/// Stable digest of a scoring scheme (matrix identity + gap model), the
/// scoring component of [`crate::cache::CacheKey`].
pub fn scoring_digest(scoring: &Scoring) -> u64 {
    let mut h = Fnv1a::new();
    h.update_framed(scoring.matrix.name.as_bytes());
    h.update_framed(format!("{:?}", scoring.matrix.alphabet).as_bytes());
    match scoring.gap {
        GapModel::Linear { penalty } => {
            h.update(&[0]);
            h.update(&penalty.to_le_bytes());
        }
        GapModel::Affine { open, extend } => {
            h.update(&[1]);
            h.update(&open.to_le_bytes());
            h.update(&extend.to_le_bytes());
        }
    }
    h.finish()
}

impl QueryService {
    /// Snapshot the daemon's metrics as the `stats` reply body. Folds any
    /// pending runtime events into the per-PE series first.
    pub fn stats(&self) -> Json {
        let inner = &self.inner;
        let mut g = inner.pool.lock();
        let now = inner.pool.now();
        let o = &mut g.owner;
        while let Ok(e) = o.events_rx.try_recv() {
            o.metrics.apply_event(&e);
        }
        // Age-based eviction must not depend on traffic: an idle daemon's
        // registry drains on the next stats poll.
        sweep_retired(o, now);
        let m = &o.metrics;
        let cs = o.cache.stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("type", Json::str("stats")),
            ("uptime_s", Json::Num(inner.pool.now())),
            ("draining", Json::Bool(o.draining)),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::Num(o.queue.depth() as f64)),
                    ("limit", Json::Num(o.queue.depth_limit() as f64)),
                    ("max_depth", Json::Num(o.queue.max_depth as f64)),
                    (
                        "per_client_limit",
                        Json::Num(o.queue.per_client_limit() as f64),
                    ),
                ]),
            ),
            (
                "jobs",
                Json::obj(vec![
                    ("active", Json::Num(o.active_jobs as f64)),
                    ("admitted", Json::Num(m.admitted as f64)),
                    ("completed", Json::Num(m.completed as f64)),
                    ("cancelled", Json::Num(m.cancelled as f64)),
                    (
                        "rejected_queue_full",
                        Json::Num(m.rejected_queue_full as f64),
                    ),
                    (
                        "rejected_client_limit",
                        Json::Num(m.rejected_client_limit as f64),
                    ),
                    ("rejected_draining", Json::Num(m.rejected_draining as f64)),
                    ("expired", Json::Num(m.jobs_expired as f64)),
                    ("registry", Json::Num(o.jobs.len() as f64)),
                ]),
            ),
            (
                "fusion",
                Json::obj(vec![
                    ("max", Json::Num(inner.cfg.fusion as f64)),
                    ("tasks", Json::Num(m.fused_tasks as f64)),
                    ("queries", Json::Num(m.fused_queries as f64)),
                    (
                        "factor",
                        Json::Num(if m.fused_tasks == 0 {
                            0.0
                        } else {
                            m.fused_queries as f64 / m.fused_tasks as f64
                        }),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Num(cs.hits as f64)),
                    ("misses", Json::Num(cs.misses as f64)),
                    ("collisions", Json::Num(cs.collisions as f64)),
                    ("hit_rate", Json::Num(cs.hit_rate())),
                    ("insertions", Json::Num(cs.insertions as f64)),
                    ("evictions", Json::Num(cs.evictions as f64)),
                    ("size", Json::Num(o.cache.len() as f64)),
                    ("capacity", Json::Num(o.cache.capacity() as f64)),
                    ("served_from_cache", Json::Num(m.served_from_cache as f64)),
                ]),
            ),
            ("prepared_cache", {
                let pc = inner.prepared.lock().unwrap();
                let ps = pc.stats();
                Json::obj(vec![
                    ("hits", Json::Num(ps.hits as f64)),
                    ("misses", Json::Num(ps.misses as f64)),
                    ("collisions", Json::Num(ps.collisions as f64)),
                    ("hit_rate", Json::Num(ps.hit_rate())),
                    ("insertions", Json::Num(ps.insertions as f64)),
                    ("evictions", Json::Num(ps.evictions as f64)),
                    ("size", Json::Num(pc.len() as f64)),
                    ("capacity", Json::Num(pc.capacity() as f64)),
                ])
            }),
            ("latency_ms", m.latency.to_json()),
            ("kernel", Json::str(inner.cfg.kernel.name())),
            ("kernels", kernels_to_json(&m.kernels)),
            (
                "pes",
                Json::Arr(
                    m.pes
                        .iter()
                        .enumerate()
                        .map(|(pe, p)| {
                            Json::obj(vec![
                                ("pe", Json::Num(pe as f64)),
                                ("name", Json::str(&p.name)),
                                ("tasks_finished", Json::Num(p.tasks_finished as f64)),
                                ("mean_gcups", Json::Num(p.mean_gcups())),
                                ("last_gcups", Json::Num(p.last_gcups)),
                                // Folded from `task_kernels` runtime events,
                                // which every transport now emits — local PE
                                // threads and remote slaves alike — so this
                                // breakdown agrees with `--events` streams.
                                ("kernels", kernels_to_json(&p.kernels)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "db",
                Json::obj(vec![
                    ("name", Json::str(o.db.name())),
                    ("sequences", Json::Num(o.db.len() as f64)),
                    ("residues", Json::Num(o.db.total_residues() as f64)),
                    ("generation", Json::Num(o.db_generation as f64)),
                    ("digest", Json::str(format!("{:016x}", o.db.digest()))),
                    ("mapped", Json::Bool(o.db.arena().is_shared())),
                ]),
            ),
        ])
    }
}
