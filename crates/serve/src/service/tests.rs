use super::*;
use rand::{RngExt, SeedableRng};
use swhybrid_align::scoring::{GapModel, SubstMatrix};
use swhybrid_seq::Alphabet;
use swhybrid_simd::search::DatabaseSearch;

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

fn random_db(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.random_range(1..max_len);
            EncodedSequence {
                id: format!("s{i}"),
                codes: (0..len).map(|_| rng.random_range(0..20u8)).collect(),
                alphabet: Alphabet::Protein,
            }
        })
        .collect()
}

fn random_query(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..20u8)).collect()
}

fn small_service(db: &[EncodedSequence]) -> QueryService {
    QueryService::new(
        db.to_vec(),
        scoring(),
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    )
}

#[test]
fn shard_ranges_cover_and_balance() {
    let db = random_db(11, 57, 120);
    let snap = DbSnapshot::from_encoded("", &db);
    for n in [1, 2, 3, 7, 57, 100] {
        let shards = snap.shard_ranges(n);
        assert_eq!(shards.first().unwrap().0, 0);
        assert_eq!(shards.last().unwrap().1, db.len());
        for w in shards.windows(2) {
            assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
        }
        assert!(shards.iter().all(|&(s, e)| e > s), "no empty shards");
        assert!(shards.len() <= n.min(db.len()));
    }
    let empty = DbSnapshot::from_encoded("", &[]);
    assert_eq!(empty.shard_ranges(4), vec![(0, 0)]);
}

#[test]
fn served_result_matches_cold_scan() {
    let db = random_db(23, 80, 100);
    let query = random_query(29, 60);
    let svc = small_service(&db);
    let reply = svc.search_blocking(query.clone(), 12, 1).unwrap();
    let cold = DatabaseSearch::new(
        &query,
        &scoring(),
        swhybrid_simd::search::SearchConfig {
            top_n: 12,
            ..Default::default()
        },
    )
    .run(&db);
    assert_eq!(reply.hits, cold.hits);
    assert!(!reply.cached);
    assert_eq!(reply.cells, cold.cells);
    svc.shutdown();
}

/// The executor-unification law at service level: with a single shard the
/// daemon's scan walks the exact chunk sequence a one-shot scan walks, so
/// the per-query kernel counters in the reply — not just the hits — are
/// byte-identical to the cold scan's.
#[test]
fn served_kernel_stats_match_cold_scan_with_one_shard() {
    let db = random_db(27, 90, 100);
    let query = random_query(33, 55);
    let svc = QueryService::new(
        db.clone(),
        scoring(),
        ServiceConfig {
            workers: 1,
            shards: 1,
            ..Default::default()
        },
    );
    let reply = svc.search_blocking(query.clone(), 8, 1).unwrap();
    let cold = DatabaseSearch::new(
        &query,
        &scoring(),
        swhybrid_simd::search::SearchConfig {
            top_n: 8,
            ..Default::default()
        },
    )
    .run(&db);
    assert_eq!(reply.hits, cold.hits);
    assert_eq!(
        reply.kernels, cold.stats,
        "per-query kernel counters drifted"
    );
    // A cache hit never runs a kernel, so its counters are zero.
    let warm = svc.search_blocking(query, 8, 1).unwrap();
    assert!(warm.cached);
    assert_eq!(warm.kernels, KernelStats::default());
    svc.shutdown();
}

/// Satellite of the trace-coverage fix: the local PE path's `task_kernels`
/// events must fold into the per-PE stats series, so `stats` and
/// `--events` agree across transports.
#[test]
fn local_pe_kernels_surface_in_per_pe_stats() {
    let db = random_db(35, 60, 80);
    let svc = QueryService::new(
        db,
        scoring(),
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let reply = svc.search_blocking(random_query(39, 45), 6, 1).unwrap();
    assert!(!reply.hits.is_empty());
    let stats = svc.stats();
    let pes = stats.get("pes").unwrap().as_array().unwrap();
    assert!(!pes.is_empty());
    let kernels = pes[0].get("kernels").unwrap();
    let count = |key: &str| kernels.get(key).unwrap().as_u64().unwrap();
    assert!(
        count("cells_computed") > 0,
        "local PE task_kernels events never reached the metrics"
    );
    let resolved = count("striped_i8")
        + count("striped_i16")
        + count("striped_scalar")
        + count("interseq_i8")
        + count("interseq_i16")
        + count("interseq_scalar");
    assert!(resolved >= 60, "one resolution per scanned subject");
    svc.shutdown();
}

/// A hybrid `--fleet` daemon: a modeled GPU and a real SIMD core share the
/// pool. Replies stay byte-identical to a cold scan (modeled speed never
/// touches scores) and `stats` names both backend kinds.
#[test]
fn hybrid_fleet_service_matches_cold_scan_and_names_both_kinds() {
    let db = random_db(41, 70, 90);
    let query = random_query(43, 50);
    let svc = QueryService::new(
        db.clone(),
        scoring(),
        ServiceConfig {
            fleet: Some(FleetSpec::parse("gpu:1+sse:1").unwrap()),
            ..Default::default()
        },
    );
    let reply = svc.search_blocking(query.clone(), 10, 1).unwrap();
    let cold = DatabaseSearch::new(
        &query,
        &scoring(),
        swhybrid_simd::search::SearchConfig {
            top_n: 10,
            ..Default::default()
        },
    )
    .run(&db);
    assert_eq!(
        reply.hits, cold.hits,
        "hybrid fleet must score bit-identically"
    );
    let stats = svc.stats();
    let pes = stats.get("pes").unwrap().as_array().unwrap();
    let names: Vec<&str> = pes
        .iter()
        .map(|p| p.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(
        names.contains(&"gpu0"),
        "stats must name the modeled PE: {names:?}"
    );
    assert!(
        names.contains(&"sse0"),
        "stats must name the real PE: {names:?}"
    );
    svc.shutdown();
}

#[test]
fn repeat_query_hits_cache_with_zero_cells() {
    let db = random_db(31, 40, 80);
    let query = random_query(37, 50);
    let svc = small_service(&db);
    let cold = svc.search_blocking(query.clone(), 10, 1).unwrap();
    let warm = svc.search_blocking(query, 10, 1).unwrap();
    assert!(!cold.cached && warm.cached);
    assert_eq!(warm.cells, 0);
    assert_eq!(warm.hits, cold.hits);
    let stats = svc.stats();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64().unwrap(), 1);
    // The kernel counters cover the cold scan's subjects (the warm
    // query never ran a kernel) and name the configured dispatch.
    assert_eq!(stats.get("kernel").unwrap().as_str(), Some("auto"));
    let kernels = stats.get("kernels").unwrap();
    let count = |key: &str| kernels.get(key).unwrap().as_u64().unwrap();
    let resolved = count("striped_i8")
        + count("striped_i16")
        + count("striped_scalar")
        + count("interseq_i8")
        + count("interseq_i16")
        + count("interseq_scalar");
    // ≥: a replicated shard's losing scan also counts (real work).
    assert!(resolved >= 40, "one resolution per scanned subject");
    assert!(count("cells_computed") > 0);
    assert_eq!(
        stats
            .get("jobs")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_u64()
            .unwrap(),
        2
    );
    svc.shutdown();
}

#[test]
fn swap_db_invalidates_cache_and_changes_results() {
    let db_a = random_db(41, 30, 80);
    let db_b = random_db(43, 30, 80);
    let query = random_query(47, 40);
    let svc = small_service(&db_a);
    let a = svc.search_blocking(query.clone(), 5, 1).unwrap();
    svc.swap_db(db_b.clone());
    let b = svc.search_blocking(query.clone(), 5, 1).unwrap();
    assert!(!b.cached, "generation bump must bypass the cache");
    let cold_b = DatabaseSearch::new(
        &query,
        &scoring(),
        swhybrid_simd::search::SearchConfig {
            top_n: 5,
            ..Default::default()
        },
    )
    .run(&db_b);
    assert_eq!(b.hits, cold_b.hits);
    // Old-generation result is still byte-identical to its own scan.
    assert_ne!(a.hits, b.hits);
    svc.shutdown();
}

#[test]
fn cancel_queued_job_never_scans() {
    let db = random_db(53, 30, 60);
    let svc = QueryService::new(
        db.clone(),
        scoring(),
        ServiceConfig {
            workers: 1,
            max_active: 1,
            ..Default::default()
        },
    );
    // Fill the single active slot with a real query, then queue one
    // more and cancel it before it can dispatch.
    let (tx, rx) = std::sync::mpsc::channel();
    let tx2 = tx.clone();
    svc.submit(
        random_query(59, 400),
        5,
        None,
        None,
        1,
        Box::new(move |r| tx.send(r).unwrap()),
    )
    .unwrap();
    let victim = svc
        .submit(
            random_query(61, 40),
            5,
            None,
            None,
            2,
            Box::new(move |r| tx2.send(r).unwrap()),
        )
        .unwrap();
    let outcome = svc.cancel(victim);
    // Either we caught it queued, or it had already dispatched; both
    // must deliver a reply for every submission.
    assert_ne!(outcome, CancelOutcome::Unknown);
    let mut replies = [rx.recv().unwrap(), rx.recv().unwrap()];
    replies.sort_by_key(|r| r.job);
    if outcome == CancelOutcome::Cancelled {
        let r = replies.iter().find(|r| r.job == victim).unwrap();
        assert!(r.cancelled);
        assert!(r.hits.is_empty());
    }
    assert_eq!(svc.cancel(9999), CancelOutcome::Unknown);
    svc.shutdown();
}

#[test]
fn drain_rejects_new_but_finishes_queued() {
    let db = random_db(67, 25, 60);
    let svc = small_service(&db);
    let (tx, rx) = std::sync::mpsc::channel();
    svc.submit(
        random_query(71, 80),
        5,
        None,
        None,
        1,
        Box::new(move |r| tx.send(r).unwrap()),
    )
    .unwrap();
    svc.begin_drain();
    let err = svc.search_blocking(random_query(73, 30), 5, 2).unwrap_err();
    assert_eq!(err, SubmitError::Draining);
    let reply = rx.recv().unwrap();
    assert!(!reply.cancelled);
    svc.shutdown();
}

/// Regression (unbounded job registry): the daemon used to keep every
/// terminal job's record forever, so weeks of queries grew `jobs`
/// without bound. Terminal jobs must be evicted after the retention
/// window, evicted ids must answer `Expired` (not `Unknown`), and the
/// registry must stay bounded over 10k queries.
#[test]
fn job_registry_stays_bounded_over_ten_thousand_queries() {
    let db = random_db(83, 20, 50);
    let query = random_query(89, 30);
    let svc = QueryService::new(
        db,
        scoring(),
        ServiceConfig {
            workers: 1,
            retained_jobs: 32,
            retention_secs: 1e9, // count bound only; age is tested below
            ..Default::default()
        },
    );
    for _ in 0..10_000 {
        let reply = svc.search_blocking(query.clone(), 5, 1).unwrap();
        assert!(!reply.cancelled);
    }
    let stats = svc.stats();
    let jobs = stats.get("jobs").unwrap();
    let registry = jobs.get("registry").unwrap().as_u64().unwrap();
    assert!(
        registry <= 32 + 2,
        "registry grew unbounded: {registry} records after 10k queries"
    );
    let expired = jobs.get("expired").unwrap().as_u64().unwrap();
    assert!(expired >= 10_000 - 34, "evictions not accounted: {expired}");
    // The evicted id is a well-formed answer, not an unknown one.
    assert_eq!(svc.status(0), JobStatus::Expired);
    assert_eq!(svc.cancel(0), CancelOutcome::AlreadyDone);
    // An id never issued stays unknown.
    assert_eq!(svc.status(99_999_999), JobStatus::Unknown);
    assert_eq!(svc.cancel(99_999_999), CancelOutcome::Unknown);
    svc.shutdown();
}

/// Terminal records also age out without traffic: the age bound must
/// drain an idle daemon's registry (swept on the stats poll).
#[test]
fn retention_age_drains_an_idle_registry() {
    let db = random_db(91, 15, 40);
    let svc = QueryService::new(
        db,
        scoring(),
        ServiceConfig {
            workers: 1,
            retained_jobs: 1024,
            retention_secs: 0.02,
            ..Default::default()
        },
    );
    let job = svc.search_blocking(random_query(93, 25), 5, 1).unwrap().job;
    assert!(matches!(svc.status(job), JobStatus::Done { .. }));
    std::thread::sleep(Duration::from_millis(60));
    let _ = svc.stats(); // the idle sweep
    assert_eq!(svc.status(job), JobStatus::Expired);
    svc.shutdown();
}

/// The tentpole's law at service level: queries that queue behind a
/// running group are fused into shared shard tasks, and every fused
/// reply is byte-identical to that query's solo cold scan.
#[test]
fn fused_queries_match_cold_scans_and_share_tasks() {
    let db = random_db(97, 50, 70);
    let svc = QueryService::new(
        db.clone(),
        scoring(),
        ServiceConfig {
            workers: 1,
            max_active: 1,
            fusion: 4,
            cache_capacity: 0,
            per_client_inflight: 16,
            ..Default::default()
        },
    );
    // A slow head query occupies the single group slot; the four short
    // queries behind it queue and must dispatch as one fused group.
    let (tx, rx) = std::sync::mpsc::channel();
    let head = random_query(101, 700);
    let tx0 = tx.clone();
    svc.submit(
        head.clone(),
        5,
        None,
        None,
        1,
        Box::new(move |r| tx0.send(r).unwrap()),
    )
    .unwrap();
    let queries: Vec<(Vec<u8>, usize)> = (0..4u64)
        .map(|i| (random_query(103 + i, 25 + 5 * i as usize), 4 + i as usize))
        .collect();
    for (q, top_n) in &queries {
        let tx = tx.clone();
        svc.submit(
            q.clone(),
            *top_n,
            None,
            None,
            1,
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .unwrap();
    }
    let replies: Vec<SearchReply> = (0..5).map(|_| rx.recv().unwrap()).collect();
    let oracle = |q: &[u8], top_n: usize| {
        DatabaseSearch::new(
            q,
            &scoring(),
            swhybrid_simd::search::SearchConfig {
                top_n,
                ..Default::default()
            },
        )
        .run(&db)
    };
    for reply in &replies {
        let (q, top_n) = if reply.job == 0 {
            (&head, 5usize)
        } else {
            let (q, n) = &queries[reply.job as usize - 1];
            (q, *n)
        };
        let cold = oracle(q, top_n);
        assert_eq!(
            reply.hits, cold.hits,
            "job {} differs from cold scan",
            reply.job
        );
        assert_eq!(
            reply.cells, cold.cells,
            "job {} cell count drifted",
            reply.job
        );
    }
    let stats = svc.stats();
    let fusion = stats.get("fusion").unwrap();
    let factor = fusion.get("factor").unwrap().as_f64().unwrap();
    assert!(
        factor > 1.0,
        "the queued queries never fused (factor {factor})"
    );
    svc.shutdown();
}

#[test]
fn scoring_digest_separates_schemes() {
    let a = scoring_digest(&scoring());
    let b = scoring_digest(&Scoring {
        matrix: SubstMatrix::blosum50(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    });
    let c = scoring_digest(&Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 12,
            extend: 2,
        },
    });
    assert_ne!(a, b);
    assert_ne!(a, c);
    assert_eq!(a, scoring_digest(&scoring()));
}

/// An explicit undersized chunk must be rejected at construction, not
/// silently normalised into the PR 5 degradation bug.
#[test]
#[should_panic(expected = "chunk_size")]
fn undersized_chunk_size_is_rejected() {
    let db = random_db(95, 5, 30);
    let _ = QueryService::new(
        db,
        scoring(),
        ServiceConfig {
            workers: 1,
            chunk_size: 16,
            ..Default::default()
        },
    );
}
