//! Admission glue: query submission (with the cache fast path), blocking
//! convenience, status lookup, cancellation, and terminal-job retention.

use std::sync::Arc;

use swhybrid_seq::digest::query_digest;
use swhybrid_simd::engine::KernelStats;

use super::fusion::pump;
use super::{
    CancelOutcome, Completion, Job, JobStatus, Phase, QueryService, SearchReply, ServeOwner,
    SubmitError,
};
use crate::admission::AdmitError;
use crate::cache::CacheKey;

/// Mark a terminal job for eviction and sweep the retention window.
pub(super) fn retire(o: &mut ServeOwner, job: u64, now: f64) {
    o.retired.push_back((job, now));
    sweep_retired(o, now);
}

/// Evict retired jobs beyond the count bound or older than the retention
/// window. Status on an evicted id answers [`JobStatus::Expired`].
pub(super) fn sweep_retired(o: &mut ServeOwner, now: f64) {
    while let Some(&(job, at)) = o.retired.front() {
        if o.retired.len() > o.cfg.retained_jobs || now - at > o.cfg.retention_secs {
            o.retired.pop_front();
            o.jobs.remove(&job);
            o.metrics.jobs_expired += 1;
        } else {
            break;
        }
    }
}

impl QueryService {
    /// Submit a query. On a cache hit the completion fires before this
    /// returns (with `cached: true` and zero cells); otherwise the query
    /// is admitted (or rejected with backpressure) and the completion
    /// fires when the scan finishes. Returns the job id.
    pub fn submit(
        &self,
        codes: Vec<u8>,
        top_n: usize,
        deadline_ms: Option<u64>,
        tag: Option<String>,
        client: u64,
        completion: Completion,
    ) -> Result<u64, SubmitError> {
        let inner = &self.inner;
        let pool = &inner.pool;
        let top_n = top_n.max(1);
        let qdigest = query_digest(&codes);

        // Fast path: serve from cache without building profiles.
        {
            let mut g = pool.lock();
            let o = &mut g.owner;
            if o.draining {
                o.metrics.rejected_draining += 1;
                return Err(SubmitError::Draining);
            }
            let key = CacheKey {
                query_digest: qdigest,
                db_generation: o.db_generation,
                db_digest: o.db.digest(),
                scoring_digest: inner.scoring_digest,
                top_n,
            };
            if let Some(hits) = o.cache.get(&key, &codes) {
                let now = pool.now();
                let job_id = o.next_job_id;
                o.next_job_id += 1;
                let db = Arc::clone(&o.db);
                let generation = o.db_generation;
                o.jobs.insert(
                    job_id,
                    Job {
                        client,
                        tag: tag.clone(),
                        codes,
                        prepared: None,
                        db,
                        generation,
                        top_n,
                        key,
                        submitted_at: now,
                        shards: Vec::new(),
                        phase: Phase::Done,
                        cancelled: false,
                        cached: true,
                        completion: None,
                    },
                );
                retire(o, job_id, now);
                o.metrics.completed += 1;
                o.metrics.served_from_cache += 1;
                let elapsed_ms = (pool.now() - now) * 1000.0;
                o.metrics.latency.observe(elapsed_ms);
                drop(g);
                completion(SearchReply {
                    job: job_id,
                    tag,
                    cached: true,
                    cancelled: false,
                    generation,
                    cells: 0,
                    elapsed_ms,
                    kernels: KernelStats::default(),
                    hits,
                });
                return Ok(job_id);
            }
        }

        // Cold path: fetch (or build, off the lock) the shared profiles,
        // then admit.
        let prepared = inner.prepared_query(&codes, qdigest);
        let mut g = pool.lock();
        let core = &mut *g;
        let o = &mut core.owner;
        if o.draining {
            o.metrics.rejected_draining += 1;
            return Err(SubmitError::Draining);
        }
        let now = pool.now();
        let job_id = o.next_job_id;
        let deadline = deadline_ms
            .map(|ms| now + ms as f64 / 1000.0)
            .unwrap_or(f64::INFINITY);
        if let Err(e) = o.queue.admit(job_id, client, deadline) {
            match &e {
                AdmitError::QueueFull { .. } => o.metrics.rejected_queue_full += 1,
                AdmitError::ClientLimit { .. } => o.metrics.rejected_client_limit += 1,
                AdmitError::Draining => o.metrics.rejected_draining += 1,
            }
            return Err(e);
        }
        o.next_job_id += 1;
        let key = CacheKey {
            query_digest: qdigest,
            db_generation: o.db_generation,
            db_digest: o.db.digest(),
            scoring_digest: inner.scoring_digest,
            top_n,
        };
        let db = Arc::clone(&o.db);
        let generation = o.db_generation;
        o.jobs.insert(
            job_id,
            Job {
                client,
                tag,
                codes,
                prepared: Some(prepared),
                db,
                generation,
                top_n,
                key,
                submitted_at: now,
                shards: Vec::new(),
                phase: Phase::Queued,
                cancelled: false,
                cached: false,
                completion: Some(completion),
            },
        );
        o.metrics.admitted += 1;
        pump(&mut core.master, o, now, false);
        drop(g);
        pool.notify_all();
        Ok(job_id)
    }

    /// Submit and block until the reply arrives (in-process convenience).
    pub fn search_blocking(
        &self,
        codes: Vec<u8>,
        top_n: usize,
        client: u64,
    ) -> Result<SearchReply, SubmitError> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(
            codes,
            top_n,
            None,
            None,
            client,
            Box::new(move |reply| {
                let _ = tx.send(reply);
            }),
        )?;
        Ok(rx.recv().expect("service dropped before replying"))
    }

    /// Where a job currently is. An id that was issued but whose terminal
    /// record has been evicted answers [`JobStatus::Expired`]; an id never
    /// issued answers [`JobStatus::Unknown`].
    pub fn status(&self, job: u64) -> JobStatus {
        let g = self.inner.pool.lock();
        let o = &g.owner;
        let Some(j) = o.jobs.get(&job) else {
            return if job < o.next_job_id {
                JobStatus::Expired
            } else {
                JobStatus::Unknown
            };
        };
        match &j.phase {
            Phase::Queued => JobStatus::Queued {
                position: o.queue.position(job).unwrap_or(0),
            },
            Phase::Running {
                pending,
                shard_hits,
                ..
            } => JobStatus::Running {
                shards_done: shard_hits.len() - pending,
                shards_total: shard_hits.len(),
            },
            Phase::Done => JobStatus::Done {
                cancelled: j.cancelled,
                cached: j.cached,
            },
        }
    }

    /// Cancel a job. Queued jobs are withdrawn before any kernel runs;
    /// running jobs finish their in-flight shards but their hits are
    /// discarded and never cached. Either way the submitter's completion
    /// fires promptly with `cancelled: true`.
    pub fn cancel(&self, job: u64) -> CancelOutcome {
        let pool = &self.inner.pool;
        let mut g = pool.lock();
        let now = pool.now();
        let o = &mut g.owner;
        let Some(j) = o.jobs.get_mut(&job) else {
            // An evicted job necessarily already completed.
            return if job < o.next_job_id {
                CancelOutcome::AlreadyDone
            } else {
                CancelOutcome::Unknown
            };
        };
        if j.cancelled || matches!(j.phase, Phase::Done) {
            return CancelOutcome::AlreadyDone;
        }
        j.cancelled = true;
        let was_queued = matches!(j.phase, Phase::Queued);
        if was_queued {
            j.phase = Phase::Done;
        }
        let client = j.client;
        let tag = j.tag.clone();
        let generation = j.generation;
        let elapsed_ms = (now - j.submitted_at) * 1000.0;
        let completion = j.completion.take();
        if was_queued {
            o.queue.remove(job);
            o.queue.release(client);
            retire(o, job, now);
        }
        o.metrics.cancelled += 1;
        drop(g);
        if let Some(cb) = completion {
            cb(SearchReply {
                job,
                tag,
                cached: false,
                cancelled: true,
                generation,
                cells: 0,
                elapsed_ms,
                kernels: KernelStats::default(),
                hits: Vec::new(),
            });
        }
        CancelOutcome::Cancelled
    }
}
