//! The execution path: the pool-owner callbacks (result demux, payload
//! assembly) and the local PE worker's shard scan, which drives the ONE
//! shared shard executor ([`ShardExecutor`]) — the same chunk loop, kernel
//! dispatch, and top-N demux the one-shot `search` workers and the remote
//! serve-mode slave use, so served hit tables and kernel counters are
//! byte-identical to theirs by construction.

use std::sync::Arc;
use std::time::Instant;

use swhybrid_core::master::Master;
use swhybrid_core::pool::{
    Deferred, FusedQueryResult, PoolOwner, QueryPayload, TaskPayload, TaskResult,
};
use swhybrid_core::stats::observed_gcups;
use swhybrid_core::task::{PeId, TaskId};
use swhybrid_device::task::DeviceModel;
use swhybrid_simd::engine::{KernelStats, PreparedQuery};
use swhybrid_simd::search::{merge_top_n, Hit};
use swhybrid_simd::{materialize_hits, ShardExecutor, ShardPlan};

use super::admit::retire;
use super::fusion::pump;
use super::{Completion, Inner, Phase, SearchReply, ServeOwner};

impl PoolOwner for ServeOwner {
    fn on_finished(
        &mut self,
        master: &mut Master,
        _pe: PeId,
        task: TaskId,
        result: TaskResult,
        was_first: bool,
        now: f64,
    ) -> Option<Deferred> {
        // Every shard scan counts, winner or not: the counters report
        // kernel work the platform actually performed (remote slaves
        // report theirs over the wire).
        if let Some(k) = &result.kernels {
            self.metrics.kernels.merge(k);
        }
        if !was_first {
            return None;
        }
        let ft = self.task_map.get(&task)?.clone();
        // Demux the fused result: entry k belongs to batch member k. A
        // result without the fused list (a skipped scan) counts every
        // member's shard as done with nothing to contribute.
        let per_query = result
            .fused
            .unwrap_or_else(|| vec![FusedQueryResult::default(); ft.jobs.len()]);
        debug_assert_eq!(per_query.len(), ft.jobs.len());
        let mut done = Vec::new();
        for (&job_id, fq) in ft.jobs.iter().zip(per_query) {
            if let Some(d) = record_shard(
                self,
                now,
                job_id,
                ft.shard_idx,
                fq.hits,
                fq.cells,
                fq.kernels,
            ) {
                done.push(d);
            }
        }
        // The group finishes atomically (every member shares the same
        // shard set, so the last task completes them all): drop its task
        // entries so the map stays bounded over the daemon's lifetime,
        // free its scheduling slot, and refill from the queue — a freed
        // slot admits up to `fusion` queued queries as the next group.
        if ft.jobs.iter().all(|id| {
            self.jobs
                .get(id)
                .is_none_or(|j| matches!(j.phase, Phase::Done))
        }) {
            for t in &ft.group_tasks {
                self.task_map.remove(t);
            }
            self.active_groups -= 1;
            pump(master, self, now, false);
        }
        if done.is_empty() {
            return None;
        }
        Some(Box::new(move || {
            for (completion, reply) in done {
                if let Some(cb) = completion {
                    cb(reply);
                }
            }
        }))
    }

    fn task_payload(&self, _master: &Master, task: TaskId) -> Option<TaskPayload> {
        let ft = self.task_map.get(&task)?;
        // A remote slave holds the *current* database; never ship it a
        // shard of an older snapshot (possible only transiently, since a
        // swap disconnects remotes — but a task can already be in flight).
        // A wholly cancelled batch is not worth shipping either; a batch
        // with any live member ships complete, cancelled members included,
        // so fused results pair with `FusedTask::jobs` positionally.
        if ft
            .jobs
            .iter()
            .all(|id| self.jobs.get(id).is_none_or(|j| j.cancelled))
        {
            return None;
        }
        let mut queries = Vec::with_capacity(ft.jobs.len());
        let mut shard = None;
        for id in &ft.jobs {
            let job = self.jobs.get(id)?;
            if job.generation != self.db_generation {
                return None;
            }
            shard = Some(*job.shards.get(ft.shard_idx)?);
            queries.push(QueryPayload {
                query: job.codes.clone(),
                top_n: job.top_n,
            });
        }
        Some(TaskPayload {
            queries,
            shard: shard?,
        })
    }

    fn db_digest(&self) -> Option<u64> {
        Some(self.db.digest())
    }
}

/// Execute one fused shard task on a local worker: snapshot the batch
/// under the lock, then drive the shared [`ShardExecutor`] over the shard
/// off it. The pool (via [`swhybrid_core::pool::LocalEndpoint`] and
/// [`ServeOwner::on_finished`]) handles started/finished bookkeeping.
///
/// `model` is the worker's device model when it is a modeled accelerator
/// PE of a hybrid fleet: the completion then attributes the model's GCUPS
/// for the task's spec (so the scheduler's Ω window sees e.g. GTX-580
/// speed) instead of the host thread's wall-clock measurement. The scan —
/// and so the reply — is identical either way.
pub(super) fn execute_task(
    inner: &Inner,
    task: TaskId,
    executor: &mut ShardExecutor,
    model: Option<&dyn DeviceModel>,
) -> TaskResult {
    let (entries, range, db, spec) = {
        let g = inner.pool.lock();
        let o = &g.owner;
        let Some(ft) = o.task_map.get(&task) else {
            // Unknown task (should not happen): report a skip, not a scan.
            return TaskResult::default();
        };
        let spec = model.map(|_| g.master.pool().get(task).spec.clone());
        // Batch members stay positional: a cancelled (or vanished) member
        // keeps its slot as `None` so results pair with `FusedTask::jobs`.
        let mut entries: Vec<Option<(Arc<PreparedQuery>, usize)>> =
            Vec::with_capacity(ft.jobs.len());
        let mut range = None;
        let mut snapshot = None;
        for id in &ft.jobs {
            let entry = o.jobs.get(id).filter(|j| !j.cancelled).map(|job| {
                range = Some(job.shards[ft.shard_idx]);
                snapshot = Some(Arc::clone(&job.db));
                (
                    Arc::clone(job.prepared.as_ref().expect("running jobs carry profiles")),
                    job.top_n,
                )
            });
            entries.push(entry);
        }
        let Some(db) = snapshot else {
            // Every member cancelled mid-run: complete the task without
            // burning kernels and without a speed report (a 0.0 would
            // poison the PSS window).
            return TaskResult {
                fused: Some(vec![FusedQueryResult::default(); entries.len()]),
                ..TaskResult::default()
            };
        };
        (
            entries,
            range.expect("live member sets the range"),
            db,
            spec,
        )
    };
    let (s, e) = range;
    let t0 = Instant::now();
    let live: Vec<(Arc<PreparedQuery>, usize)> = entries.iter().flatten().cloned().collect();
    let plan = ShardPlan {
        range: s..e,
        chunk_size: inner.cfg.chunk_size,
        kernel: inner.cfg.kernel,
        prefetch: inner.cfg.prefetch,
    };
    let outs = executor.execute(&live, db.arena(), &plan);
    // Demux per query, positionally. The arena is in database order, so
    // shard scan positions already are global database indices and the
    // cross-shard merge tie-breaks identically to a whole-db scan.
    // Identifiers are cloned here for the shard's top-N only.
    let mut outs = outs.into_iter();
    let mut fused = Vec::with_capacity(entries.len());
    let mut total_cells = 0u64;
    let mut merged_stats = KernelStats::default();
    for entry in &entries {
        if entry.is_none() {
            fused.push(FusedQueryResult::default());
            continue;
        }
        let out = outs.next().expect("one output per live batch member");
        let hits = materialize_hits(&out.scored, |i| db.id(i).to_string());
        total_cells += out.cells;
        merged_stats.merge(&out.stats);
        fused.push(FusedQueryResult {
            hits,
            cells: out.cells,
            kernels: Some(out.stats),
        });
    }
    let gcups = match (model, &spec) {
        (Some(m), Some(s)) => m.task_gcups(s),
        _ => observed_gcups(total_cells, t0.elapsed().as_secs_f64()),
    };
    TaskResult {
        gcups: Some(gcups),
        hits: Vec::new(),
        cells: total_cells,
        kernels: Some(merged_stats),
        fused: Some(fused),
    }
}

/// Fold a winning shard result into its job; on the last shard, finalize:
/// merge, cache, meter, release the admission slot, pump the queue.
/// Returns the completion to invoke off the lock.
#[allow(clippy::too_many_arguments)]
fn record_shard(
    o: &mut ServeOwner,
    now: f64,
    job_id: u64,
    shard_idx: usize,
    hits: Vec<Hit>,
    cells: u64,
    kernels: Option<KernelStats>,
) -> Option<(Option<Completion>, SearchReply)> {
    {
        let job = o.jobs.get_mut(&job_id)?;
        let Phase::Running {
            pending,
            shard_hits,
            cells: acc,
            kernels: kacc,
        } = &mut job.phase
        else {
            return None;
        };
        if shard_hits[shard_idx].is_some() {
            return None;
        }
        shard_hits[shard_idx] = Some(hits);
        *acc += cells;
        if let Some(k) = &kernels {
            kacc.merge(k);
        }
        *pending -= 1;
        if *pending > 0 {
            return None;
        }
    }
    // Last shard in: finalize.
    let job = o.jobs.get_mut(&job_id)?;
    let Phase::Running {
        shard_hits,
        cells: total_cells,
        kernels: total_kernels,
        ..
    } = std::mem::replace(&mut job.phase, Phase::Done)
    else {
        unreachable!("guarded above");
    };
    let merged = merge_top_n(
        shard_hits
            .into_iter()
            .map(|h| h.expect("all shards recorded")),
        job.top_n,
    );
    let elapsed_ms = (now - job.submitted_at) * 1000.0;
    let cancelled = job.cancelled;
    let completion = job.completion.take();
    let client = job.client;
    let key = job.key;
    let codes = job.codes.clone();
    let reply = SearchReply {
        job: job_id,
        tag: job.tag.clone(),
        cached: false,
        cancelled,
        generation: job.generation,
        cells: total_cells,
        elapsed_ms,
        kernels: total_kernels,
        hits: if cancelled {
            Vec::new()
        } else {
            merged.clone()
        },
    };
    if !cancelled {
        o.cache.insert(key, &codes, merged);
        o.metrics.completed += 1;
        o.metrics.latency.observe(elapsed_ms);
    }
    retire(o, job_id, now);
    o.active_jobs -= 1;
    o.queue.release(client);
    // The scheduling slot is the *group's*; [`ServeOwner::on_finished`]
    // frees it (and pumps the queue) when the whole group is done.
    Some((completion, reply))
}
