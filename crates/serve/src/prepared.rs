//! The LRU prepared-query cache.
//!
//! Building a [`PreparedQuery`] is the per-submission fixed cost of the
//! cold path: striped profiles at both widths, the inter-sequence score
//! matrix reshuffle, the saturation thresholds. For a daemon fielding a
//! repeated-query workload (the same probe against a rotating database, a
//! dashboard re-issuing its panel queries) that cost is pure waste — the
//! profile depends only on the query residues, the scoring scheme, and the
//! kernel preference, none of which change across database reloads.
//!
//! The cache key is exactly that triple. Deliberately *not* in the key:
//! `top_n` (ranking depth never touches the profile), the database digest
//! or generation (profiles are database-independent — a reload keeps every
//! entry warm), and per-request metadata. A hit returns the shared
//! [`Arc`], so concurrent jobs for the same query also share one profile
//! allocation. Hits are byte-identical to a cold build: the profile is a
//! pure function of the key, so rankings and [`KernelStats`] cannot
//! differ (`tests/prepared_cache.rs` proves it).
//!
//! Like [`crate::cache::ResultCache`], the 64-bit query digest is honest
//! about collisions: every hit re-checks the stored query bytes, and a
//! mismatch counts as a collision and misses.
//!
//! [`KernelStats`]: swhybrid_simd::engine::KernelStats

use std::collections::HashMap;
use std::sync::Arc;
use swhybrid_simd::engine::{EnginePreference, PreparedQuery};

use crate::cache::CacheStats;

/// The full identity of a prepared query's inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PreparedKey {
    /// Digest of the query's alphabet codes.
    pub query_digest: u64,
    /// Digest of the scoring scheme (matrix + gap model).
    pub scoring_digest: u64,
    /// Kernel family the profiles were built for.
    pub preference: EnginePreference,
}

struct Entry {
    /// The exact query codes the profile was built from; a digest-colliding
    /// lookup must miss rather than hand another query this profile.
    query: Vec<u8>,
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

/// A bounded least-recently-used map from [`PreparedKey`] to a shared
/// [`PreparedQuery`]. Recency is a logical stamp bumped on every touch;
/// eviction removes the minimum-stamp entry. Capacity 0 disables the
/// cache (every lookup misses, nothing is stored).
pub struct PreparedCache {
    capacity: usize,
    stamp: u64,
    map: HashMap<PreparedKey, Entry>,
    stats: CacheStats,
}

impl PreparedCache {
    /// Create a cache holding at most `capacity` prepared queries.
    pub fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            capacity,
            stamp: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up a prepared query, refreshing its recency on a hit. `query`
    /// is the query's alphabet codes; an entry whose digest matches but
    /// whose stored bytes differ is a collision and must miss.
    pub fn get(&mut self, key: &PreparedKey, query: &[u8]) -> Option<Arc<PreparedQuery>> {
        self.stamp += 1;
        match self.map.get_mut(key) {
            Some(entry) if entry.query == query => {
                entry.last_used = self.stamp;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.prepared))
            }
            Some(_) => {
                self.stats.collisions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store a prepared query, evicting the least recently used entry
    /// when full.
    pub fn insert(&mut self, key: PreparedKey, query: &[u8], prepared: Arc<PreparedQuery>) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.stats.insertions += 1;
        self.map.insert(
            key,
            Entry {
                query: query.to_vec(),
                prepared,
                last_used: self.stamp,
            },
        );
    }

    /// Number of cached prepared queries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn key(q: u64, s: u64) -> PreparedKey {
        PreparedKey {
            query_digest: q,
            scoring_digest: s,
            preference: EnginePreference::Auto,
        }
    }

    fn prepared(codes: &[u8]) -> Arc<PreparedQuery> {
        Arc::new(PreparedQuery::new(
            codes,
            &scoring(),
            EnginePreference::Auto,
        ))
    }

    #[test]
    fn hit_returns_the_same_allocation() {
        let mut c = PreparedCache::new(4);
        let codes = vec![1u8, 2, 3];
        let p = prepared(&codes);
        assert!(c.get(&key(1, 9), &codes).is_none());
        c.insert(key(1, 9), &codes, Arc::clone(&p));
        let got = c.get(&key(1, 9), &codes).unwrap();
        assert!(Arc::ptr_eq(&got, &p), "a hit must share the stored Arc");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn scoring_digest_change_is_a_different_key() {
        let mut c = PreparedCache::new(4);
        let codes = vec![1u8, 2, 3];
        c.insert(key(1, 9), &codes, prepared(&codes));
        assert!(c.get(&key(1, 10), &codes).is_none());
    }

    #[test]
    fn preference_change_is_a_different_key() {
        let mut c = PreparedCache::new(4);
        let codes = vec![1u8, 2, 3];
        c.insert(key(1, 9), &codes, prepared(&codes));
        let other = PreparedKey {
            preference: EnginePreference::Portable,
            ..key(1, 9)
        };
        assert!(c.get(&other, &codes).is_none());
    }

    #[test]
    fn digest_collision_misses() {
        let mut c = PreparedCache::new(4);
        let alice = vec![1u8, 2, 3];
        let bob = vec![4u8, 5, 6]; // same forced digest, different bytes
        c.insert(key(1, 9), &alice, prepared(&alice));
        assert!(c.get(&key(1, 9), &bob).is_none());
        assert_eq!(c.stats().collisions, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = PreparedCache::new(2);
        let a = vec![1u8];
        let b = vec![2u8];
        let d = vec![3u8];
        c.insert(key(1, 9), &a, prepared(&a));
        c.insert(key(2, 9), &b, prepared(&b));
        c.get(&key(1, 9), &a); // key 2 is now coldest
        c.insert(key(3, 9), &d, prepared(&d));
        assert!(c.get(&key(1, 9), &a).is_some());
        assert!(c.get(&key(2, 9), &b).is_none());
        assert!(c.get(&key(3, 9), &d).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = PreparedCache::new(0);
        let codes = vec![1u8];
        c.insert(key(1, 9), &codes, prepared(&codes));
        assert!(c.get(&key(1, 9), &codes).is_none());
        assert!(c.is_empty());
    }
}
