//! The TCP front end: a newline-delimited JSON daemon over one
//! [`QueryService`].
//!
//! One thread accepts connections; each connection gets a reader thread.
//! Replies go through a shared, mutex-guarded write half so completion
//! callbacks (which fire on PE worker threads) and inline replies
//! (status/stats/cancel) never interleave bytes. A `search` result is
//! therefore asynchronous with respect to other verbs on the same
//! connection; `tag`/`job` correlate. Note that a cache-served search
//! completes synchronously inside submission, so with `"ack":true` its
//! result line can precede the ack — clients must dispatch on `type`,
//! not on line order.
//!
//! `shutdown` flips the daemon into drain mode: new admissions are
//! rejected, queued and running queries still deliver their results
//! (sockets stay writable until every completion has fired), then
//! [`ServeDaemon::run`] returns.

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swhybrid_align::scoring::Scoring;
use swhybrid_json::Json;
use swhybrid_seq::fasta::FastaReader;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::DbSnapshot;
use swhybrid_store::{Store, Verify};

use crate::protocol::{error_reply, hits_to_json, parse_request, ReloadRequest, Request};
use crate::service::{
    CancelOutcome, Completion, JobStatus, QueryService, SearchReply, ServiceConfig,
};

/// Shared write half of one connection.
type ConnWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// A bound-but-not-yet-running daemon.
pub struct ServeDaemon {
    listener: TcpListener,
    service: QueryService,
}

impl ServeDaemon {
    /// Bind the listener and start the query service (PE workers spawn
    /// now; the socket accepts after [`ServeDaemon::run`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: Vec<EncodedSequence>,
        scoring: Scoring,
        config: ServiceConfig,
    ) -> io::Result<ServeDaemon> {
        let listener = TcpListener::bind(addr)?;
        Ok(ServeDaemon {
            listener,
            service: QueryService::new(db, scoring, config),
        })
    }

    /// Bind over a pre-assembled database snapshot — the `serve
    /// --db-store` path, where the snapshot borrows a memory-mapped
    /// `.swdb` and the digest comes from its header (no startup re-hash).
    pub fn bind_snapshot(
        addr: impl ToSocketAddrs,
        db: DbSnapshot,
        scoring: Scoring,
        config: ServiceConfig,
    ) -> io::Result<ServeDaemon> {
        let listener = TcpListener::bind(addr)?;
        Ok(ServeDaemon {
            listener,
            service: QueryService::with_snapshot(db, scoring, config),
        })
    }

    /// The bound address (use with port 0 to discover the chosen port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Additionally accept remote TCP slaves on `addr` (the
    /// `--listen-slaves` mode): remote processes join the same scheduling
    /// pool as the local PE workers and serve shard scans until they
    /// disconnect or the daemon shuts down. Returns the bound address.
    pub fn listen_slaves(
        &self,
        addr: impl ToSocketAddrs,
        net: swhybrid_core::net::NetConfig,
    ) -> io::Result<SocketAddr> {
        self.service.listen_slaves(addr, net)
    }

    /// Serve until a client sends `shutdown`, then drain every in-flight
    /// query and return.
    pub fn run(self) -> io::Result<()> {
        let ServeDaemon { listener, service } = self;
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut next_client: u64 = 0;
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let client = next_client;
                        next_client += 1;
                        let service = &service;
                        let stop = &stop;
                        scope.spawn(move || handle_conn(service, stream, client, stop));
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                        ) =>
                    {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    // Transient accept failures (e.g. a connection reset
                    // before we picked it up) must not kill the daemon.
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });
        service.shutdown();
        Ok(())
    }
}

/// One connection: read lines, dispatch verbs, until EOF or shutdown.
fn handle_conn(service: &QueryService, stream: TcpStream, client: u64, stop: &AtomicBool) {
    // Accepted sockets must block with a timeout so the reader notices a
    // shutdown initiated on another connection.
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .is_err()
    {
        return;
    }
    stream.set_nodelay(true).ok();
    let writer: ConnWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(BufWriter::new(w))),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Drain complete lines before reading more.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let rest = pending.split_off(pos + 1);
            let mut line = std::mem::replace(&mut pending, rest);
            line.pop();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if !line.is_empty() && handle_request(service, line, client, &writer, stop) {
                break 'conn;
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
}

/// Dispatch one request line. Returns whether to close the connection.
fn handle_request(
    service: &QueryService,
    line: &str,
    client: u64,
    writer: &ConnWriter,
    stop: &AtomicBool,
) -> bool {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(reason) => {
            write_json(
                writer,
                &error_reply("request", "bad_request", &reason, None),
            );
            return false;
        }
    };
    match req {
        Request::Search(s) => {
            let codes = match service.encode_query(s.query.as_bytes()) {
                Ok(codes) => codes,
                Err(e) => {
                    write_json(
                        writer,
                        &error_reply("search", "bad_query", &e, s.tag.as_deref()),
                    );
                    return false;
                }
            };
            let w = Arc::clone(writer);
            let completion: Completion = Box::new(move |reply| {
                write_json(&w, &result_to_json(&reply));
            });
            match service.submit(
                codes,
                s.top_n,
                s.deadline_ms,
                s.tag.clone(),
                client,
                completion,
            ) {
                Ok(job) => {
                    if s.ack {
                        write_json(
                            writer,
                            &Json::obj(vec![
                                ("ok", Json::Bool(true)),
                                ("type", Json::str("ack")),
                                ("job", Json::Num(job as f64)),
                            ]),
                        );
                    }
                }
                Err(e) => write_json(
                    writer,
                    &error_reply("search", e.code(), &e.reason(), s.tag.as_deref()),
                ),
            }
            false
        }
        Request::Status { job } => {
            let reply = match service.status(job) {
                JobStatus::Unknown => {
                    error_reply("status", "unknown_job", &format!("no job {job}"), None)
                }
                JobStatus::Queued { position } => status_reply(
                    job,
                    "queued",
                    vec![("position", Json::Num(position as f64))],
                ),
                JobStatus::Running {
                    shards_done,
                    shards_total,
                } => status_reply(
                    job,
                    "running",
                    vec![
                        ("shards_done", Json::Num(shards_done as f64)),
                        ("shards_total", Json::Num(shards_total as f64)),
                    ],
                ),
                JobStatus::Done { cancelled, cached } => status_reply(
                    job,
                    "done",
                    vec![
                        ("cancelled", Json::Bool(cancelled)),
                        ("cached", Json::Bool(cached)),
                    ],
                ),
                // The id was issued but its terminal record aged out of the
                // registry: a well-formed answer, not an error.
                JobStatus::Expired => status_reply(job, "expired", Vec::new()),
            };
            write_json(writer, &reply);
            false
        }
        Request::Cancel { job } => {
            let reply = match service.cancel(job) {
                CancelOutcome::Unknown => {
                    error_reply("cancel", "unknown_job", &format!("no job {job}"), None)
                }
                outcome => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("type", Json::str("cancel")),
                    ("job", Json::Num(job as f64)),
                    (
                        "outcome",
                        Json::str(match outcome {
                            CancelOutcome::Cancelled => "cancelled",
                            _ => "already_done",
                        }),
                    ),
                ]),
            };
            write_json(writer, &reply);
            false
        }
        Request::Stats => {
            write_json(writer, &service.stats());
            false
        }
        Request::Reload(r) => {
            // Load and validate the new generation entirely off the pool
            // lock — concurrent queries keep flowing against the old
            // snapshot; the swap itself is one pointer replacement.
            match load_reload_snapshot(&r, service.scoring()) {
                Ok((snapshot, source)) => {
                    let name = snapshot.name().to_string();
                    let sequences = snapshot.len();
                    let residues = snapshot.total_residues();
                    let digest = snapshot.digest();
                    let generation = service.swap_snapshot(snapshot);
                    write_json(
                        writer,
                        &Json::obj(vec![
                            ("ok", Json::Bool(true)),
                            ("type", Json::str("reload")),
                            ("source", Json::str(source)),
                            ("name", Json::str(&name)),
                            ("generation", Json::Num(generation as f64)),
                            ("sequences", Json::Num(sequences as f64)),
                            ("residues", Json::Num(residues as f64)),
                            ("digest", Json::str(format!("{digest:016x}"))),
                        ]),
                    );
                }
                Err((code, reason)) => {
                    write_json(writer, &error_reply("reload", code, &reason, None))
                }
            }
            false
        }
        Request::Shutdown => {
            service.begin_drain();
            write_json(
                writer,
                &Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("type", Json::str("shutdown")),
                    ("draining", Json::Bool(true)),
                ]),
            );
            stop.store(true, Ordering::SeqCst);
            true
        }
    }
}

/// Assemble the new database generation for a `reload` request: map a
/// `.swdb` store (optionally Full-verified) or parse a FASTA under the
/// daemon's scoring alphabet. A failure leaves the daemon exactly as it
/// was — the error names the source, and nothing has been swapped.
fn load_reload_snapshot(
    r: &ReloadRequest,
    scoring: &Scoring,
) -> Result<(DbSnapshot, &'static str), (&'static str, String)> {
    if let Some(path) = &r.store {
        let verify = if r.verify {
            Verify::Full
        } else {
            Verify::Quick
        };
        let store =
            Store::open_with(path, verify).map_err(|e| ("bad_store", format!("{path}: {e}")))?;
        if !store.is_empty() && store.alphabet() != scoring.matrix.alphabet {
            return Err((
                "alphabet_mismatch",
                format!(
                    "store alphabet {:?} does not match the daemon's scoring alphabet {:?}",
                    store.alphabet(),
                    scoring.matrix.alphabet
                ),
            ));
        }
        let snap = store
            .into_snapshot()
            .map_err(|e| ("bad_store", format!("{path}: {e}")))?;
        Ok((snap, "store"))
    } else if let Some(path) = &r.fasta {
        let records = FastaReader::open(path)
            .and_then(|mut f| f.read_all())
            .map_err(|e| ("bad_fasta", format!("{path}: {e}")))?;
        let db: Vec<EncodedSequence> = records
            .iter()
            .map(|rec| EncodedSequence::from_sequence(rec, scoring.matrix.alphabet))
            .collect::<Result<_, _>>()
            .map_err(|e| ("bad_fasta", format!("{path}: {e}")))?;
        let name = Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        Ok((DbSnapshot::from_encoded(name, &db), "fasta"))
    } else {
        // parse_request guarantees one source; belt and braces.
        Err(("bad_request", "reload needs a source".into()))
    }
}

fn status_reply(job: u64, state: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("status")),
        ("job", Json::Num(job as f64)),
        ("state", Json::str(state)),
    ];
    fields.extend(extra);
    Json::obj(fields)
}

/// A [`SearchReply`] as its wire result line.
pub fn result_to_json(reply: &SearchReply) -> Json {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("type".to_string(), Json::str("result")),
        ("job".to_string(), Json::Num(reply.job as f64)),
        ("cached".to_string(), Json::Bool(reply.cached)),
        ("cancelled".to_string(), Json::Bool(reply.cancelled)),
        ("generation".to_string(), Json::Num(reply.generation as f64)),
        ("cells".to_string(), Json::Num(reply.cells as f64)),
        ("elapsed_ms".to_string(), Json::Num(reply.elapsed_ms)),
        (
            "kernels".to_string(),
            swhybrid_core::net::kernels_to_json(&reply.kernels),
        ),
        ("hits".to_string(), hits_to_json(&reply.hits)),
    ];
    if let Some(tag) = &reply.tag {
        fields.push(("tag".to_string(), Json::str(tag)));
    }
    Json::Obj(fields)
}

/// Write one reply line; IO errors are swallowed (a vanished client must
/// not take the daemon down).
fn write_json(writer: &ConnWriter, json: &Json) {
    let mut w = writer.lock().expect("connection writer poisoned");
    let _ = writeln!(w, "{json}");
    let _ = w.flush();
}
