//! The query engine behind the daemon: a persistent master/slave runtime
//! fed multi-batch workloads.
//!
//! One [`QueryService`] owns:
//!
//! * a [`Master`] in keep-alive mode — the same SS/PSS scheduler and
//!   workload-adjustment state machine the batch runtimes use, never
//!   restarted between queries — wrapped in a
//!   [`PePool`](swhybrid_core::pool::PePool),
//! * long-lived PE worker threads, each a
//!   [`LocalEndpoint`](swhybrid_core::pool::LocalEndpoint) run by the
//!   shared [`drive`](swhybrid_core::pool::drive) loop,
//! * optionally, via [`QueryService::listen_slaves`], remote TCP slaves
//!   that join and leave mid-daemon-lifetime — served by the *same* drive
//!   loop through [`serve_connection`](swhybrid_core::net::serve_connection),
//!   so a fleet can mix local SIMD threads and remote processes freely,
//! * the admission queue, result cache, and metrics.
//!
//! Every admitted query is split into contiguous, residue-balanced
//! **database shards**, one task per shard, so a single query exercises
//! the whole platform (and the adjustment mechanism can replicate a
//! straggling shard near the tail). Per-shard top-N lists are rebased to
//! global database indices and merged with `merge_top_n`, which makes the
//! served ranking bit-identical to a cold single-process scan. Remote
//! slaves receive shards as self-describing payloads (query batch + shard
//! bounds) and must prove at registration — by database digest — that they
//! hold the exact database the daemon serves; a [`QueryService::swap_db`]
//! disconnects every remote slave, because their copy is now stale.
//!
//! ## Cross-query fusion
//!
//! When several queries are active at once, the dominant cost of scanning
//! each one separately is *streaming the database again*: the arena is
//! typically far larger than any cache, so K solo scans read it K times.
//! The dispatcher therefore **fuses** co-admitted queries (up to
//! [`ServiceConfig::fusion`], same database generation) into shared shard
//! tasks: one task scores the whole query batch against its shard while
//! the chunk is hot in cache. Per-query work inside a chunk is exactly
//! what a solo scan would do — the fused and solo paths share one
//! implementation, [`ShardExecutor`](swhybrid_simd::ShardExecutor) — so
//! fused replies stay byte-identical to per-query cold scans; the win is
//! wall-clock throughput, not a different answer. A fused task's
//! [`TaskSpec`](swhybrid_device::task::TaskSpec) charges the batch's
//! summed query length, so PSS cell accounting and speed estimates stay
//! calibrated.
//!
//! Replies are delivered through per-job completion callbacks, so the
//! executor never blocks on a slow client: the TCP layer hands in a
//! closure that writes to the connection, in-process callers a channel
//! sender.
//!
//! ## Module layout
//!
//! This file holds the configuration, the reply/job data model, and
//! service construction; each operational concern lives in a submodule:
//! `admit` (submission, cache fast path, status, cancellation), `fusion`
//! (queue pumping and fused-group scheduling), `execution` (the local PE
//! path driving the shared shard executor plus shard-result accounting),
//! `reload` (hot database swaps, drain, shutdown), and `stats` (the
//! `stats` reply body and the scoring digest).

mod admit;
mod execution;
mod fusion;
mod reload;
mod stats;
#[cfg(test)]
mod tests;

pub use stats::scoring_digest;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swhybrid_align::scoring::Scoring;
use swhybrid_core::master::{Master, MasterConfig};
use swhybrid_core::net::{serve_connection, NetConfig};
use swhybrid_core::policy::Policy;
use swhybrid_core::pool::{drive, LocalEndpoint, PePool};
use swhybrid_core::task::{PeId, TaskId};
use swhybrid_core::trace::RuntimeEvent;
use swhybrid_device::task::DeviceModel;
use swhybrid_device::FleetSpec;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::DbSnapshot;
use swhybrid_simd::engine::{EnginePreference, KernelStats, PreparedQuery};
use swhybrid_simd::search::{Hit, KernelChoice};
use swhybrid_simd::ShardExecutor;

use crate::admission::AdmissionQueue;
use crate::cache::{CacheKey, ResultCache};
use crate::metrics::Metrics;
use crate::prepared::{PreparedCache, PreparedKey};

/// Slave-listener accept re-check interval.
const ACCEPT_QUANTUM: Duration = Duration::from_millis(10);

/// How a reply leaves the service: invoked exactly once per submitted
/// query, off the executor's lock.
pub type Completion = Box<dyn FnOnce(SearchReply) + Send + 'static>;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// PE worker threads (each is one scheduler PE).
    pub workers: usize,
    /// Database shards per query (tasks per query); 0 means one per worker.
    pub shards: usize,
    /// Fused query groups scheduled into the pool at once (each group
    /// carries up to [`ServiceConfig::fusion`] queries); further
    /// admissions queue.
    pub max_active: usize,
    /// Admission queue depth bound (excess is rejected with backpressure).
    pub queue_depth: usize,
    /// Per-client in-flight ceiling (queued + running).
    pub per_client_inflight: usize,
    /// Result cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Subjects claimed per cursor step inside a shard scan. `0` means the
    /// validated default ([`swhybrid_simd::chunk_floor`]); any explicit
    /// value is checked against that floor by
    /// [`swhybrid_simd::chunk_size`] — undersized chunks silently degrade
    /// every `Auto` scan to the striped kernel, so they are rejected
    /// rather than normalised.
    pub chunk_size: usize,
    /// Kernel preference for the striped engines.
    pub preference: EnginePreference,
    /// Chunk dispatch: striped, inter-sequence, or adaptive.
    pub kernel: KernelChoice,
    /// Task allocation policy (must be dynamic: SS or PSS).
    pub policy: Policy,
    /// Whether the workload adjustment mechanism is active.
    pub adjustment: bool,
    /// Maximum queries fused into one shard task (1 disables fusion).
    /// Only co-active queries against the same database generation fuse.
    pub fusion: usize,
    /// Fusion window: when a free slot sees fewer than `fusion` queued
    /// queries, it holds this long for companions before scheduling an
    /// undersized group. Under a steady concurrent load the window never
    /// actually elapses — the batch fills first — so only stragglers pay
    /// it. `0.0` schedules immediately (no window).
    pub fusion_window_ms: f64,
    /// Terminal jobs kept answering `status` before eviction (count bound;
    /// see also [`ServiceConfig::retention_secs`]).
    pub retained_jobs: usize,
    /// Terminal jobs older than this are evicted even under the count
    /// bound, so an idle daemon's registry also drains.
    pub retention_secs: f64,
    /// Prepared-query cache capacity (entries); 0 disables it. Hits skip
    /// profile construction entirely; results are byte-identical either
    /// way (the cache stores exactly what the cold path would build).
    pub prepared_capacity: usize,
    /// Software next-subject prefetch inside shard scans. Advisory only —
    /// never changes results.
    pub prefetch: bool,
    /// Hybrid worker fleet (`sse:8+gpu:2`). When set it *replaces* the
    /// homogeneous `workers` pool: each entry becomes one PE thread —
    /// real SIMD PEs measure wall-clock speed, modeled accelerators
    /// register their calibrated prior and attribute their device model's
    /// GCUPS to the scheduler (results stay byte-identical either way —
    /// every kind drives the same shard executor).
    pub fleet: Option<FleetSpec>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            shards: 0,
            max_active: 2,
            queue_depth: 64,
            per_client_inflight: 4,
            cache_capacity: 128,
            chunk_size: swhybrid_simd::chunk_floor(),
            preference: EnginePreference::Auto,
            kernel: KernelChoice::Auto,
            policy: Policy::pss_default(),
            adjustment: true,
            fusion: 4,
            fusion_window_ms: 3.0,
            retained_jobs: 256,
            retention_secs: 300.0,
            prepared_capacity: 128,
            prefetch: true,
            fleet: None,
        }
    }
}

/// The terminal answer to one submitted query.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReply {
    /// The job id the service assigned.
    pub job: u64,
    /// The client's correlation tag, echoed back.
    pub tag: Option<String>,
    /// Whether the result came from the cache (then `cells` is 0).
    pub cached: bool,
    /// Whether the job was cancelled (then `hits` is empty).
    pub cancelled: bool,
    /// The database generation the result was computed against. A client
    /// spanning a hot reload can tell old-snapshot replies from
    /// new-snapshot ones by this number.
    pub generation: u64,
    /// Kernel cells actually computed for this reply. Counts only cells
    /// the daemon's own workers scanned — shards completed by remote
    /// slaves burned their cells elsewhere.
    pub cells: u64,
    /// Admission-to-reply latency.
    pub elapsed_ms: f64,
    /// Per-query kernel counters, merged across this query's winning
    /// shard scans (local or remote — slaves report theirs over the
    /// wire). Zero for cache hits and cancellations: no kernel ran for
    /// this reply. Because every transport drives the same shard
    /// executor, these counters are identical to the one-shot scan's for
    /// the same query, database, and shard decomposition.
    pub kernels: KernelStats,
    /// The ranked hits (global database indices).
    pub hits: Vec<Hit>,
}

/// Why a submission was not accepted (re-exported admission error).
pub use crate::admission::AdmitError as SubmitError;

/// Where a job currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the admission queue at dispatch rank `position`.
    Queued {
        /// 0 = next to dispatch.
        position: usize,
    },
    /// Scanning: `shards_done` of `shards_total` shard tasks finished.
    Running {
        /// Completed shards.
        shards_done: usize,
        /// Total shards.
        shards_total: usize,
    },
    /// Finished (reply delivered).
    Done {
        /// Whether it ended by cancellation.
        cancelled: bool,
        /// Whether it was served from the cache.
        cached: bool,
    },
    /// The job existed, finished, and was evicted after the retention
    /// window — the id is valid but its record is gone.
    Expired,
    /// No such job.
    Unknown,
}

/// What a cancellation achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job will not produce a result (its submitter gets a cancelled
    /// reply; a running scan's hits are discarded on completion).
    Cancelled,
    /// Too late — the job already completed (or was already cancelled).
    AlreadyDone,
    /// No such job.
    Unknown,
}

enum Phase {
    Queued,
    Running {
        pending: usize,
        shard_hits: Vec<Option<Vec<Hit>>>,
        cells: u64,
        kernels: KernelStats,
    },
    Done,
}

struct Job {
    client: u64,
    tag: Option<String>,
    /// The raw encoded query, shipped to remote slaves as the task payload.
    codes: Vec<u8>,
    /// Shared query profiles; `None` only for cache-served jobs.
    prepared: Option<Arc<PreparedQuery>>,
    /// The database snapshot this job scans (survives a concurrent
    /// [`QueryService::swap_snapshot`]): ids plus the database-order
    /// arena, so shard scan positions are global database indices.
    db: Arc<DbSnapshot>,
    /// The database generation the job was admitted under. Remote slaves
    /// only ever see current-generation payloads (a swap disconnects them).
    generation: u64,
    top_n: usize,
    key: CacheKey,
    submitted_at: f64,
    shards: Vec<(usize, usize)>,
    phase: Phase,
    cancelled: bool,
    cached: bool,
    completion: Option<Completion>,
}

/// One scheduled shard task: the job ids whose queries it scores (the
/// fused batch, in batch order — results pair with it positionally) and
/// which shard of their shared database snapshot it scans. `group_tasks`
/// lists every task of the same fused group, so the whole group's map
/// entries can be dropped when its last shard lands.
#[derive(Debug, Clone)]
struct FusedTask {
    jobs: Vec<u64>,
    shard_idx: usize,
    group_tasks: Vec<TaskId>,
}

/// The pool owner: everything the service keeps under the pool's lock
/// besides the master itself. Kernels never run under it — workers
/// snapshot `Arc`s and release before scanning.
struct ServeOwner {
    cfg: ServiceConfig,
    /// Live and recently terminal jobs, by id. Terminal jobs are evicted
    /// after the retention window (`retired`), so the registry stays
    /// bounded however long the daemon runs.
    jobs: HashMap<u64, Job>,
    next_job_id: u64,
    /// Terminal jobs awaiting eviction, oldest first, with the time they
    /// retired.
    retired: VecDeque<(u64, f64)>,
    task_map: HashMap<TaskId, FusedTask>,
    queue: AdmissionQueue,
    cache: ResultCache,
    metrics: Metrics,
    events_rx: Receiver<RuntimeEvent>,
    /// The current database generation: ids, database-order arena, digest.
    /// Replaced wholesale by a reload, never mutated — in-flight jobs hold
    /// their own `Arc` and finish on the snapshot they were admitted under.
    db: Arc<DbSnapshot>,
    db_generation: u64,
    active_jobs: usize,
    /// When an undersized backlog started waiting for companions (the
    /// fusion window). `None` when the queue is empty, full enough, or
    /// already drained into a group. The flusher thread schedules the
    /// partial group once the window elapses.
    window_open_since: Option<f64>,
    /// Fused groups currently in the pool — the unit [`ServiceConfig::
    /// max_active`] bounds. A group frees its slot only when its last
    /// member finishes, so up to `fusion` queued queries can take the
    /// freed slot together (that is what lets fusion bootstrap: slots
    /// freeing one *job* at a time would only ever re-admit singletons).
    active_groups: usize,
    draining: bool,
}

struct Inner {
    pool: PePool<ServeOwner>,
    cfg: ServiceConfig,
    scoring: Scoring,
    scoring_digest: u64,
    /// Prepared-query profiles shared across submissions (and across
    /// database reloads: the key is database-independent). Own lock, not
    /// the pool lock — profile builds happen off the scheduler.
    prepared: Mutex<PreparedCache>,
}

impl Inner {
    /// Fetch the shared profile for `codes`, building (off every lock)
    /// and caching it on a miss. Hits are byte-identical to a cold build:
    /// the profile is a pure function of the cache key.
    fn prepared_query(&self, codes: &[u8], query_digest: u64) -> Arc<PreparedQuery> {
        let key = PreparedKey {
            query_digest,
            scoring_digest: self.scoring_digest,
            preference: self.cfg.preference,
        };
        if let Some(p) = self.prepared.lock().unwrap().get(&key, codes) {
            return p;
        }
        let p = Arc::new(PreparedQuery::new(
            codes,
            &self.scoring,
            self.cfg.preference,
        ));
        self.prepared
            .lock()
            .unwrap()
            .insert(key, codes, Arc::clone(&p));
        p
    }
}

/// The persistent query service. Dropping it shuts the workers down
/// without draining; call [`QueryService::shutdown`] for the graceful
/// One local worker in the roster: its PE name, its static GCUPS prior,
/// and — for modeled fleet kinds — the device model that attributes its
/// speed (None for real SIMD workers, which report wall-clock
/// measurements).
type WorkerSpec = (String, f64, Option<Arc<dyn DeviceModel>>);

/// drain-then-exit path.
pub struct QueryService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Tells slave-listener threads to stop accepting.
    stop_listeners: Arc<AtomicBool>,
    listeners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Start the service over owned encoded sequences (the FASTA load
    /// path): packs a [`DbSnapshot`] — which hashes the database, O(db) —
    /// and delegates to [`QueryService::with_snapshot`].
    pub fn new(db: Vec<EncodedSequence>, scoring: Scoring, config: ServiceConfig) -> QueryService {
        QueryService::with_snapshot(DbSnapshot::from_encoded("", &db), scoring, config)
    }

    /// Start the service over a pre-assembled database snapshot — the
    /// store load path (`serve --db-store`), where the digest comes from
    /// the `.swdb` header, so startup never re-hashes the database.
    /// Spawns `config.workers` PE threads; they idle on the hub until
    /// queries arrive.
    pub fn with_snapshot(db: DbSnapshot, scoring: Scoring, config: ServiceConfig) -> QueryService {
        assert!(
            db.is_empty() || db.alphabet() == scoring.matrix.alphabet,
            "database alphabet {:?} does not match scoring alphabet {:?}",
            db.alphabet(),
            scoring.matrix.alphabet
        );
        let mut cfg = config;
        // A hybrid fleet fixes the worker count: one PE thread per member.
        let fleet_pes = cfg.fleet.as_ref().map(|f| f.build());
        if let Some(pes) = &fleet_pes {
            cfg.workers = pes.len();
        }
        cfg.workers = cfg.workers.max(1);
        if cfg.shards == 0 {
            cfg.shards = cfg.workers;
        }
        cfg.max_active = cfg.max_active.max(1);
        // The one chunk-size decision for every scan path lives in
        // `simd::exec`: 0 means the default, anything else must clear the
        // floor (the PR 5 silent-degradation bug class).
        cfg.chunk_size = swhybrid_simd::chunk_size(match cfg.chunk_size {
            0 => None,
            c => Some(c),
        })
        .expect("invalid ServiceConfig::chunk_size");
        cfg.fusion = cfg.fusion.max(1);
        assert!(
            !cfg.policy.is_static(),
            "the query service needs a dynamic policy (ss or pss): \
             static quotas cannot absorb multi-batch workloads"
        );

        let (events_tx, events_rx): (Sender<RuntimeEvent>, Receiver<RuntimeEvent>) =
            std::sync::mpsc::channel();
        let mut master = Master::new(
            Vec::new(),
            MasterConfig {
                policy: cfg.policy,
                adjustment: cfg.adjustment,
                ..MasterConfig::default()
            },
        );
        master.set_keep_alive(true);
        master.set_event_sink(move |e| {
            let _ = events_tx.send(e.clone());
        });

        let db = Arc::new(db);
        let owner = ServeOwner {
            cfg: cfg.clone(),
            jobs: HashMap::new(),
            next_job_id: 0,
            retired: VecDeque::new(),
            task_map: HashMap::new(),
            queue: AdmissionQueue::new(cfg.queue_depth, cfg.per_client_inflight),
            cache: ResultCache::new(cfg.cache_capacity),
            metrics: Metrics::default(),
            events_rx,
            db,
            db_generation: 0,
            active_jobs: 0,
            window_open_since: None,
            active_groups: 0,
            draining: false,
        };
        let pool = PePool::new(master, owner, cfg.workers);
        let inner = Arc::new(Inner {
            pool,
            scoring_digest: scoring_digest(&scoring),
            prepared: Mutex::new(PreparedCache::new(cfg.prepared_capacity)),
            scoring,
            cfg,
        });
        // The worker roster: a hybrid fleet when configured (names,
        // priors, and — for modeled kinds — the device model that
        // attributes speed), else the historical homogeneous SIMD pool.
        let members: Vec<WorkerSpec> = match fleet_pes {
            Some(pes) => pes
                .into_iter()
                .map(|p| (p.name, p.static_gcups, p.model))
                .collect(),
            None => (0..inner.cfg.workers)
                .map(|w| (format!("serve{w}"), 1.0, None))
                .collect(),
        };
        // Admit the local workers up front (the registration block), then
        // spawn their drive threads.
        let admitted: Vec<(PeId, Option<Arc<dyn DeviceModel>>)> = members
            .into_iter()
            .map(|(name, prior, model)| (inner.pool.admit(&name, prior, false), model))
            .collect();
        let mut workers: Vec<_> = admitted
            .into_iter()
            .map(|(pe, model)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("swhybrid-serve-pe{pe}"))
                    .spawn(move || {
                        // One ShardExecutor (and so one KernelScratch) per
                        // PE thread, living for the daemon's lifetime:
                        // every shard this worker scans reuses the same
                        // warm, high-water-sized buffers.
                        let mut executor = ShardExecutor::new();
                        let mut endpoint = LocalEndpoint::new(|task| {
                            execution::execute_task(&inner, task, &mut executor, model.as_deref())
                        });
                        drive(&inner.pool, pe, &mut endpoint);
                    })
                    .expect("spawn PE worker")
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        if inner.cfg.fusion > 1 && inner.cfg.fusion_window_ms > 0.0 {
            workers.push(fusion::spawn_window_flusher(
                Arc::clone(&inner),
                Arc::clone(&stop),
            ));
        }
        QueryService {
            inner,
            workers,
            stop_listeners: stop,
            listeners: Mutex::new(Vec::new()),
        }
    }

    /// Accept remote TCP slaves on `addr` for the lifetime of the daemon:
    /// the hybrid-fleet mode of `swhybrid serve --listen-slaves`.
    ///
    /// Each accepted connection is a full protocol session
    /// ([`serve_connection`]) feeding the same pool as the local worker
    /// threads: slaves join mid-lifetime (`pe_joins`), receive
    /// self-describing shard payloads, and may disconnect at any time —
    /// their in-flight shards requeue to the remaining fleet. A slave must
    /// register with the digest of the daemon's current database
    /// ([`swhybrid_core::net::run_serve_slave`] does); anything else is
    /// refused at the handshake. Returns the bound address. Fails with
    /// [`io::ErrorKind::InvalidInput`] when `net` is inconsistent.
    pub fn listen_slaves(
        &self,
        addr: impl ToSocketAddrs,
        net: NetConfig,
    ) -> io::Result<std::net::SocketAddr> {
        net.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::clone(&self.inner);
        let stop = Arc::clone(&self.stop_listeners);
        let handle = std::thread::Builder::new()
            .name("swhybrid-serve-slaves".to_string())
            .spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let inner = Arc::clone(&inner);
                        let net = net.clone();
                        std::thread::spawn(move || serve_connection(stream, &inner.pool, &net));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_QUANTUM);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            })?;
        self.listeners
            .lock()
            .expect("listener registry")
            .push(handle);
        Ok(local)
    }

    /// The scoring scheme queries are evaluated under.
    pub fn scoring(&self) -> &Scoring {
        &self.inner.scoring
    }

    /// Encode an ASCII query under the service's alphabet.
    pub fn encode_query(&self, residues: &[u8]) -> Result<Vec<u8>, String> {
        self.inner
            .scoring
            .matrix
            .alphabet
            .encode(residues)
            .map_err(|e| e.to_string())
    }
}
