//! The query engine behind the daemon: a persistent master/slave runtime
//! fed multi-batch workloads.
//!
//! One [`QueryService`] owns:
//!
//! * a [`Master`] in keep-alive mode — the same SS/PSS scheduler and
//!   workload-adjustment state machine the batch runtimes use, never
//!   restarted between queries — wrapped in a
//!   [`PePool`](swhybrid_core::pool::PePool),
//! * long-lived PE worker threads, each a
//!   [`LocalEndpoint`](swhybrid_core::pool::LocalEndpoint) run by the
//!   shared [`drive`](swhybrid_core::pool::drive) loop,
//! * optionally, via [`QueryService::listen_slaves`], remote TCP slaves
//!   that join and leave mid-daemon-lifetime — served by the *same* drive
//!   loop through [`serve_connection`](swhybrid_core::net::serve_connection),
//!   so a fleet can mix local SIMD threads and remote processes freely,
//! * the admission queue, result cache, and metrics.
//!
//! Every admitted query is split into contiguous, residue-balanced
//! **database shards**, one task per shard, so a single query exercises
//! the whole platform (and the adjustment mechanism can replicate a
//! straggling shard near the tail). Per-shard top-N lists are rebased to
//! global database indices and merged with [`merge_top_n`], which makes the
//! served ranking bit-identical to a cold single-process scan. Remote
//! slaves receive shards as self-describing payloads (query batch + shard
//! bounds) and must prove at registration — by database digest — that they
//! hold the exact database the daemon serves; a [`QueryService::swap_db`]
//! disconnects every remote slave, because their copy is now stale.
//!
//! ## Cross-query fusion
//!
//! When several queries are active at once, the dominant cost of scanning
//! each one separately is *streaming the database again*: the arena is
//! typically far larger than any cache, so K solo scans read it K times.
//! The dispatcher therefore **fuses** co-admitted queries (up to
//! [`ServiceConfig::fusion`], same database generation) into shared shard
//! tasks: one task scores the whole query batch against its shard while
//! the chunk is hot in cache ([`search_arena_multi`]). Per-query work
//! inside a chunk is exactly what a solo scan would do, so fused replies
//! stay byte-identical to per-query cold scans — the win is wall-clock
//! throughput, not a different answer. A fused task's
//! [`TaskSpec`] charges the batch's summed query length, so PSS cell
//! accounting and speed estimates stay calibrated.
//!
//! Replies are delivered through per-job completion callbacks, so the
//! executor never blocks on a slow client: the TCP layer hands in a
//! closure that writes to the connection, in-process callers a channel
//! sender.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use swhybrid_align::scoring::{GapModel, Scoring};
use swhybrid_core::master::{Master, MasterConfig};
use swhybrid_core::net::{kernels_to_json, serve_connection, NetConfig};
use swhybrid_core::policy::Policy;
use swhybrid_core::pool::{
    drive, Deferred, FusedQueryResult, LocalEndpoint, PePool, PoolOwner, QueryPayload, TaskPayload,
    TaskResult,
};
use swhybrid_core::stats::observed_gcups;
use swhybrid_core::task::{PeId, TaskId};
use swhybrid_core::trace::RuntimeEvent;
use swhybrid_device::task::TaskSpec;
use swhybrid_json::Json;
use swhybrid_seq::digest::{query_digest, Fnv1a};
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::DbSnapshot;
use swhybrid_simd::engine::{EnginePreference, KernelStats, PreparedQuery};
use swhybrid_simd::search::{
    merge_top_n, search_arena_multi_with_scratch, Hit, KernelChoice, SearchConfig,
};
use swhybrid_simd::KernelScratch;

use crate::admission::{AdmissionQueue, AdmitError};
use crate::cache::{CacheKey, ResultCache};
use crate::metrics::Metrics;
use crate::prepared::{PreparedCache, PreparedKey};

/// Slave-listener accept re-check interval.
const ACCEPT_QUANTUM: Duration = Duration::from_millis(10);

/// How a reply leaves the service: invoked exactly once per submitted
/// query, off the executor's lock.
pub type Completion = Box<dyn FnOnce(SearchReply) + Send + 'static>;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// PE worker threads (each is one scheduler PE).
    pub workers: usize,
    /// Database shards per query (tasks per query); 0 means one per worker.
    pub shards: usize,
    /// Fused query groups scheduled into the pool at once (each group
    /// carries up to [`ServiceConfig::fusion`] queries); further
    /// admissions queue.
    pub max_active: usize,
    /// Admission queue depth bound (excess is rejected with backpressure).
    pub queue_depth: usize,
    /// Per-client in-flight ceiling (queued + running).
    pub per_client_inflight: usize,
    /// Result cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Subjects claimed per cursor step inside a shard scan. Must be at
    /// least twice the inter-sequence lane width for the Auto dispatcher
    /// to ever pick the inter-sequence kernel — undersized chunks
    /// silently degrade every scan to the striped kernel.
    pub chunk_size: usize,
    /// Kernel preference for the striped engines.
    pub preference: EnginePreference,
    /// Chunk dispatch: striped, inter-sequence, or adaptive.
    pub kernel: KernelChoice,
    /// Task allocation policy (must be dynamic: SS or PSS).
    pub policy: Policy,
    /// Whether the workload adjustment mechanism is active.
    pub adjustment: bool,
    /// Maximum queries fused into one shard task (1 disables fusion).
    /// Only co-active queries against the same database generation fuse.
    pub fusion: usize,
    /// Fusion window: when a free slot sees fewer than `fusion` queued
    /// queries, it holds this long for companions before scheduling an
    /// undersized group. Under a steady concurrent load the window never
    /// actually elapses — the batch fills first — so only stragglers pay
    /// it. `0.0` schedules immediately (no window).
    pub fusion_window_ms: f64,
    /// Terminal jobs kept answering `status` before eviction (count bound;
    /// see also [`ServiceConfig::retention_secs`]).
    pub retained_jobs: usize,
    /// Terminal jobs older than this are evicted even under the count
    /// bound, so an idle daemon's registry also drains.
    pub retention_secs: f64,
    /// Prepared-query cache capacity (entries); 0 disables it. Hits skip
    /// profile construction entirely; results are byte-identical either
    /// way (the cache stores exactly what the cold path would build).
    pub prepared_capacity: usize,
    /// Software next-subject prefetch inside shard scans (see
    /// [`SearchConfig::prefetch`]). Advisory only — never changes results.
    pub prefetch: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            shards: 0,
            max_active: 2,
            queue_depth: 64,
            per_client_inflight: 4,
            cache_capacity: 128,
            chunk_size: 64,
            preference: EnginePreference::Auto,
            kernel: KernelChoice::Auto,
            policy: Policy::pss_default(),
            adjustment: true,
            fusion: 4,
            fusion_window_ms: 3.0,
            retained_jobs: 256,
            retention_secs: 300.0,
            prepared_capacity: 128,
            prefetch: true,
        }
    }
}

/// The terminal answer to one submitted query.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReply {
    /// The job id the service assigned.
    pub job: u64,
    /// The client's correlation tag, echoed back.
    pub tag: Option<String>,
    /// Whether the result came from the cache (then `cells` is 0).
    pub cached: bool,
    /// Whether the job was cancelled (then `hits` is empty).
    pub cancelled: bool,
    /// The database generation the result was computed against. A client
    /// spanning a hot reload can tell old-snapshot replies from
    /// new-snapshot ones by this number.
    pub generation: u64,
    /// Kernel cells actually computed for this reply. Counts only cells
    /// the daemon's own workers scanned — shards completed by remote
    /// slaves burned their cells elsewhere.
    pub cells: u64,
    /// Admission-to-reply latency.
    pub elapsed_ms: f64,
    /// The ranked hits (global database indices).
    pub hits: Vec<Hit>,
}

/// Why a submission was not accepted (re-exported admission error).
pub use crate::admission::AdmitError as SubmitError;

/// Where a job currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the admission queue at dispatch rank `position`.
    Queued {
        /// 0 = next to dispatch.
        position: usize,
    },
    /// Scanning: `shards_done` of `shards_total` shard tasks finished.
    Running {
        /// Completed shards.
        shards_done: usize,
        /// Total shards.
        shards_total: usize,
    },
    /// Finished (reply delivered).
    Done {
        /// Whether it ended by cancellation.
        cancelled: bool,
        /// Whether it was served from the cache.
        cached: bool,
    },
    /// The job existed, finished, and was evicted after the retention
    /// window — the id is valid but its record is gone.
    Expired,
    /// No such job.
    Unknown,
}

/// What a cancellation achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job will not produce a result (its submitter gets a cancelled
    /// reply; a running scan's hits are discarded on completion).
    Cancelled,
    /// Too late — the job already completed (or was already cancelled).
    AlreadyDone,
    /// No such job.
    Unknown,
}

enum Phase {
    Queued,
    Running {
        pending: usize,
        shard_hits: Vec<Option<Vec<Hit>>>,
        cells: u64,
    },
    Done,
}

struct Job {
    client: u64,
    tag: Option<String>,
    /// The raw encoded query, shipped to remote slaves as the task payload.
    codes: Vec<u8>,
    /// Shared query profiles; `None` only for cache-served jobs.
    prepared: Option<Arc<PreparedQuery>>,
    /// The database snapshot this job scans (survives a concurrent
    /// [`QueryService::swap_snapshot`]): ids plus the database-order
    /// arena, so shard scan positions are global database indices.
    db: Arc<DbSnapshot>,
    /// The database generation the job was admitted under. Remote slaves
    /// only ever see current-generation payloads (a swap disconnects them).
    generation: u64,
    top_n: usize,
    key: CacheKey,
    submitted_at: f64,
    shards: Vec<(usize, usize)>,
    phase: Phase,
    cancelled: bool,
    cached: bool,
    completion: Option<Completion>,
}

/// One scheduled shard task: the job ids whose queries it scores (the
/// fused batch, in batch order — results pair with it positionally) and
/// which shard of their shared database snapshot it scans. `group_tasks`
/// lists every task of the same fused group, so the whole group's map
/// entries can be dropped when its last shard lands.
#[derive(Debug, Clone)]
struct FusedTask {
    jobs: Vec<u64>,
    shard_idx: usize,
    group_tasks: Vec<TaskId>,
}

/// The pool owner: everything the service keeps under the pool's lock
/// besides the master itself. Kernels never run under it — workers
/// snapshot `Arc`s and release before scanning.
struct ServeOwner {
    cfg: ServiceConfig,
    /// Live and recently terminal jobs, by id. Terminal jobs are evicted
    /// after the retention window (`retired`), so the registry stays
    /// bounded however long the daemon runs.
    jobs: HashMap<u64, Job>,
    next_job_id: u64,
    /// Terminal jobs awaiting eviction, oldest first, with the time they
    /// retired.
    retired: VecDeque<(u64, f64)>,
    task_map: HashMap<TaskId, FusedTask>,
    queue: AdmissionQueue,
    cache: ResultCache,
    metrics: Metrics,
    events_rx: Receiver<RuntimeEvent>,
    /// The current database generation: ids, database-order arena, digest.
    /// Replaced wholesale by a reload, never mutated — in-flight jobs hold
    /// their own `Arc` and finish on the snapshot they were admitted under.
    db: Arc<DbSnapshot>,
    db_generation: u64,
    active_jobs: usize,
    /// When an undersized backlog started waiting for companions (the
    /// fusion window). `None` when the queue is empty, full enough, or
    /// already drained into a group. The flusher thread schedules the
    /// partial group once the window elapses.
    window_open_since: Option<f64>,
    /// Fused groups currently in the pool — the unit [`ServiceConfig::
    /// max_active`] bounds. A group frees its slot only when its last
    /// member finishes, so up to `fusion` queued queries can take the
    /// freed slot together (that is what lets fusion bootstrap: slots
    /// freeing one *job* at a time would only ever re-admit singletons).
    active_groups: usize,
    draining: bool,
}

/// Mark a terminal job for eviction and sweep the retention window.
fn retire(o: &mut ServeOwner, job: u64, now: f64) {
    o.retired.push_back((job, now));
    sweep_retired(o, now);
}

/// Evict retired jobs beyond the count bound or older than the retention
/// window. Status on an evicted id answers [`JobStatus::Expired`].
fn sweep_retired(o: &mut ServeOwner, now: f64) {
    while let Some(&(job, at)) = o.retired.front() {
        if o.retired.len() > o.cfg.retained_jobs || now - at > o.cfg.retention_secs {
            o.retired.pop_front();
            o.jobs.remove(&job);
            o.metrics.jobs_expired += 1;
        } else {
            break;
        }
    }
}

impl PoolOwner for ServeOwner {
    fn on_finished(
        &mut self,
        master: &mut Master,
        _pe: PeId,
        task: TaskId,
        result: TaskResult,
        was_first: bool,
        now: f64,
    ) -> Option<Deferred> {
        // Every shard scan counts, winner or not: the counters report
        // kernel work the platform actually performed (remote slaves
        // report theirs over the wire).
        if let Some(k) = &result.kernels {
            self.metrics.kernels.merge(k);
        }
        if !was_first {
            return None;
        }
        let ft = self.task_map.get(&task)?.clone();
        // Demux the fused result: entry k belongs to batch member k. A
        // result without the fused list (a skipped scan) counts every
        // member's shard as done with nothing to contribute.
        let per_query = result
            .fused
            .unwrap_or_else(|| vec![FusedQueryResult::default(); ft.jobs.len()]);
        debug_assert_eq!(per_query.len(), ft.jobs.len());
        let mut done = Vec::new();
        for (&job_id, fq) in ft.jobs.iter().zip(per_query) {
            if let Some(d) = record_shard(self, now, job_id, ft.shard_idx, fq.hits, fq.cells) {
                done.push(d);
            }
        }
        // The group finishes atomically (every member shares the same
        // shard set, so the last task completes them all): drop its task
        // entries so the map stays bounded over the daemon's lifetime,
        // free its scheduling slot, and refill from the queue — a freed
        // slot admits up to `fusion` queued queries as the next group.
        if ft.jobs.iter().all(|id| {
            self.jobs
                .get(id)
                .is_none_or(|j| matches!(j.phase, Phase::Done))
        }) {
            for t in &ft.group_tasks {
                self.task_map.remove(t);
            }
            self.active_groups -= 1;
            pump(master, self, now, false);
        }
        if done.is_empty() {
            return None;
        }
        Some(Box::new(move || {
            for (completion, reply) in done {
                if let Some(cb) = completion {
                    cb(reply);
                }
            }
        }))
    }

    fn task_payload(&self, _master: &Master, task: TaskId) -> Option<TaskPayload> {
        let ft = self.task_map.get(&task)?;
        // A remote slave holds the *current* database; never ship it a
        // shard of an older snapshot (possible only transiently, since a
        // swap disconnects remotes — but a task can already be in flight).
        // A wholly cancelled batch is not worth shipping either; a batch
        // with any live member ships complete, cancelled members included,
        // so fused results pair with `FusedTask::jobs` positionally.
        if ft
            .jobs
            .iter()
            .all(|id| self.jobs.get(id).is_none_or(|j| j.cancelled))
        {
            return None;
        }
        let mut queries = Vec::with_capacity(ft.jobs.len());
        let mut shard = None;
        for id in &ft.jobs {
            let job = self.jobs.get(id)?;
            if job.generation != self.db_generation {
                return None;
            }
            shard = Some(*job.shards.get(ft.shard_idx)?);
            queries.push(QueryPayload {
                query: job.codes.clone(),
                top_n: job.top_n,
            });
        }
        Some(TaskPayload {
            queries,
            shard: shard?,
        })
    }

    fn db_digest(&self) -> Option<u64> {
        Some(self.db.digest())
    }
}

struct Inner {
    pool: PePool<ServeOwner>,
    cfg: ServiceConfig,
    scoring: Scoring,
    scoring_digest: u64,
    /// Prepared-query profiles shared across submissions (and across
    /// database reloads: the key is database-independent). Own lock, not
    /// the pool lock — profile builds happen off the scheduler.
    prepared: Mutex<PreparedCache>,
}

impl Inner {
    /// Fetch the shared profile for `codes`, building (off every lock)
    /// and caching it on a miss. Hits are byte-identical to a cold build:
    /// the profile is a pure function of the cache key.
    fn prepared_query(&self, codes: &[u8], query_digest: u64) -> Arc<PreparedQuery> {
        let key = PreparedKey {
            query_digest,
            scoring_digest: self.scoring_digest,
            preference: self.cfg.preference,
        };
        if let Some(p) = self.prepared.lock().unwrap().get(&key, codes) {
            return p;
        }
        let p = Arc::new(PreparedQuery::new(
            codes,
            &self.scoring,
            self.cfg.preference,
        ));
        self.prepared
            .lock()
            .unwrap()
            .insert(key, codes, Arc::clone(&p));
        p
    }
}

/// Stable digest of a scoring scheme (matrix identity + gap model), the
/// scoring component of [`CacheKey`].
pub fn scoring_digest(scoring: &Scoring) -> u64 {
    let mut h = Fnv1a::new();
    h.update_framed(scoring.matrix.name.as_bytes());
    h.update_framed(format!("{:?}", scoring.matrix.alphabet).as_bytes());
    match scoring.gap {
        GapModel::Linear { penalty } => {
            h.update(&[0]);
            h.update(&penalty.to_le_bytes());
        }
        GapModel::Affine { open, extend } => {
            h.update(&[1]);
            h.update(&open.to_le_bytes());
            h.update(&extend.to_le_bytes());
        }
    }
    h.finish()
}

/// The persistent query service. Dropping it shuts the workers down
/// without draining; call [`QueryService::shutdown`] for the graceful
/// drain-then-exit path.
pub struct QueryService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Tells slave-listener threads to stop accepting.
    stop_listeners: Arc<AtomicBool>,
    listeners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Start the service over owned encoded sequences (the FASTA load
    /// path): packs a [`DbSnapshot`] — which hashes the database, O(db) —
    /// and delegates to [`QueryService::with_snapshot`].
    pub fn new(db: Vec<EncodedSequence>, scoring: Scoring, config: ServiceConfig) -> QueryService {
        QueryService::with_snapshot(DbSnapshot::from_encoded("", &db), scoring, config)
    }

    /// Start the service over a pre-assembled database snapshot — the
    /// store load path (`serve --db-store`), where the digest comes from
    /// the `.swdb` header, so startup never re-hashes the database.
    /// Spawns `config.workers` PE threads; they idle on the hub until
    /// queries arrive.
    pub fn with_snapshot(db: DbSnapshot, scoring: Scoring, config: ServiceConfig) -> QueryService {
        assert!(
            db.is_empty() || db.alphabet() == scoring.matrix.alphabet,
            "database alphabet {:?} does not match scoring alphabet {:?}",
            db.alphabet(),
            scoring.matrix.alphabet
        );
        let mut cfg = config;
        cfg.workers = cfg.workers.max(1);
        if cfg.shards == 0 {
            cfg.shards = cfg.workers;
        }
        cfg.max_active = cfg.max_active.max(1);
        cfg.chunk_size = cfg.chunk_size.max(1);
        cfg.fusion = cfg.fusion.max(1);
        assert!(
            !cfg.policy.is_static(),
            "the query service needs a dynamic policy (ss or pss): \
             static quotas cannot absorb multi-batch workloads"
        );

        let (events_tx, events_rx): (Sender<RuntimeEvent>, Receiver<RuntimeEvent>) =
            std::sync::mpsc::channel();
        let mut master = Master::new(
            Vec::new(),
            MasterConfig {
                policy: cfg.policy,
                adjustment: cfg.adjustment,
                ..MasterConfig::default()
            },
        );
        master.set_keep_alive(true);
        master.set_event_sink(move |e| {
            let _ = events_tx.send(e.clone());
        });

        let db = Arc::new(db);
        let owner = ServeOwner {
            cfg: cfg.clone(),
            jobs: HashMap::new(),
            next_job_id: 0,
            retired: VecDeque::new(),
            task_map: HashMap::new(),
            queue: AdmissionQueue::new(cfg.queue_depth, cfg.per_client_inflight),
            cache: ResultCache::new(cfg.cache_capacity),
            metrics: Metrics::default(),
            events_rx,
            db,
            db_generation: 0,
            active_jobs: 0,
            window_open_since: None,
            active_groups: 0,
            draining: false,
        };
        let pool = PePool::new(master, owner, cfg.workers);
        let inner = Arc::new(Inner {
            pool,
            scoring_digest: scoring_digest(&scoring),
            prepared: Mutex::new(PreparedCache::new(cfg.prepared_capacity)),
            scoring,
            cfg,
        });
        // Admit the local workers up front (the registration block), then
        // spawn their drive threads.
        let ids: Vec<PeId> = (0..inner.cfg.workers)
            .map(|w| inner.pool.admit(&format!("serve{w}"), 1.0, false))
            .collect();
        let mut workers: Vec<_> = ids
            .into_iter()
            .map(|pe| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("swhybrid-serve-pe{pe}"))
                    .spawn(move || {
                        // One KernelScratch per PE thread, living for the
                        // daemon's lifetime: every shard this worker scans
                        // reuses the same warm, high-water-sized buffers.
                        let mut scratch = KernelScratch::new();
                        let mut endpoint =
                            LocalEndpoint::new(|task| execute_task(&inner, task, &mut scratch));
                        drive(&inner.pool, pe, &mut endpoint);
                    })
                    .expect("spawn PE worker")
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        if inner.cfg.fusion > 1 && inner.cfg.fusion_window_ms > 0.0 {
            workers.push(spawn_window_flusher(Arc::clone(&inner), Arc::clone(&stop)));
        }
        QueryService {
            inner,
            workers,
            stop_listeners: stop,
            listeners: Mutex::new(Vec::new()),
        }
    }

    /// Accept remote TCP slaves on `addr` for the lifetime of the daemon:
    /// the hybrid-fleet mode of `swhybrid serve --listen-slaves`.
    ///
    /// Each accepted connection is a full protocol session
    /// ([`serve_connection`]) feeding the same pool as the local worker
    /// threads: slaves join mid-lifetime (`pe_joins`), receive
    /// self-describing shard payloads, and may disconnect at any time —
    /// their in-flight shards requeue to the remaining fleet. A slave must
    /// register with the digest of the daemon's current database
    /// ([`swhybrid_core::net::run_serve_slave`] does); anything else is
    /// refused at the handshake. Returns the bound address. Fails with
    /// [`io::ErrorKind::InvalidInput`] when `net` is inconsistent.
    pub fn listen_slaves(
        &self,
        addr: impl ToSocketAddrs,
        net: NetConfig,
    ) -> io::Result<std::net::SocketAddr> {
        net.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::clone(&self.inner);
        let stop = Arc::clone(&self.stop_listeners);
        let handle = std::thread::Builder::new()
            .name("swhybrid-serve-slaves".to_string())
            .spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let inner = Arc::clone(&inner);
                        let net = net.clone();
                        std::thread::spawn(move || serve_connection(stream, &inner.pool, &net));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_QUANTUM);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            })?;
        self.listeners
            .lock()
            .expect("listener registry")
            .push(handle);
        Ok(local)
    }

    /// The scoring scheme queries are evaluated under.
    pub fn scoring(&self) -> &Scoring {
        &self.inner.scoring
    }

    /// Encode an ASCII query under the service's alphabet.
    pub fn encode_query(&self, residues: &[u8]) -> Result<Vec<u8>, String> {
        self.inner
            .scoring
            .matrix
            .alphabet
            .encode(residues)
            .map_err(|e| e.to_string())
    }

    /// Submit a query. On a cache hit the completion fires before this
    /// returns (with `cached: true` and zero cells); otherwise the query
    /// is admitted (or rejected with backpressure) and the completion
    /// fires when the scan finishes. Returns the job id.
    pub fn submit(
        &self,
        codes: Vec<u8>,
        top_n: usize,
        deadline_ms: Option<u64>,
        tag: Option<String>,
        client: u64,
        completion: Completion,
    ) -> Result<u64, SubmitError> {
        let inner = &self.inner;
        let pool = &inner.pool;
        let top_n = top_n.max(1);
        let qdigest = query_digest(&codes);

        // Fast path: serve from cache without building profiles.
        {
            let mut g = pool.lock();
            let o = &mut g.owner;
            if o.draining {
                o.metrics.rejected_draining += 1;
                return Err(SubmitError::Draining);
            }
            let key = CacheKey {
                query_digest: qdigest,
                db_generation: o.db_generation,
                db_digest: o.db.digest(),
                scoring_digest: inner.scoring_digest,
                top_n,
            };
            if let Some(hits) = o.cache.get(&key, &codes) {
                let now = pool.now();
                let job_id = o.next_job_id;
                o.next_job_id += 1;
                let db = Arc::clone(&o.db);
                let generation = o.db_generation;
                o.jobs.insert(
                    job_id,
                    Job {
                        client,
                        tag: tag.clone(),
                        codes,
                        prepared: None,
                        db,
                        generation,
                        top_n,
                        key,
                        submitted_at: now,
                        shards: Vec::new(),
                        phase: Phase::Done,
                        cancelled: false,
                        cached: true,
                        completion: None,
                    },
                );
                retire(o, job_id, now);
                o.metrics.completed += 1;
                o.metrics.served_from_cache += 1;
                let elapsed_ms = (pool.now() - now) * 1000.0;
                o.metrics.latency.observe(elapsed_ms);
                drop(g);
                completion(SearchReply {
                    job: job_id,
                    tag,
                    cached: true,
                    cancelled: false,
                    generation,
                    cells: 0,
                    elapsed_ms,
                    hits,
                });
                return Ok(job_id);
            }
        }

        // Cold path: fetch (or build, off the lock) the shared profiles,
        // then admit.
        let prepared = inner.prepared_query(&codes, qdigest);
        let mut g = pool.lock();
        let core = &mut *g;
        let o = &mut core.owner;
        if o.draining {
            o.metrics.rejected_draining += 1;
            return Err(SubmitError::Draining);
        }
        let now = pool.now();
        let job_id = o.next_job_id;
        let deadline = deadline_ms
            .map(|ms| now + ms as f64 / 1000.0)
            .unwrap_or(f64::INFINITY);
        if let Err(e) = o.queue.admit(job_id, client, deadline) {
            match &e {
                AdmitError::QueueFull { .. } => o.metrics.rejected_queue_full += 1,
                AdmitError::ClientLimit { .. } => o.metrics.rejected_client_limit += 1,
                AdmitError::Draining => o.metrics.rejected_draining += 1,
            }
            return Err(e);
        }
        o.next_job_id += 1;
        let key = CacheKey {
            query_digest: qdigest,
            db_generation: o.db_generation,
            db_digest: o.db.digest(),
            scoring_digest: inner.scoring_digest,
            top_n,
        };
        let db = Arc::clone(&o.db);
        let generation = o.db_generation;
        o.jobs.insert(
            job_id,
            Job {
                client,
                tag,
                codes,
                prepared: Some(prepared),
                db,
                generation,
                top_n,
                key,
                submitted_at: now,
                shards: Vec::new(),
                phase: Phase::Queued,
                cancelled: false,
                cached: false,
                completion: Some(completion),
            },
        );
        o.metrics.admitted += 1;
        pump(&mut core.master, o, now, false);
        drop(g);
        pool.notify_all();
        Ok(job_id)
    }

    /// Submit and block until the reply arrives (in-process convenience).
    pub fn search_blocking(
        &self,
        codes: Vec<u8>,
        top_n: usize,
        client: u64,
    ) -> Result<SearchReply, SubmitError> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(
            codes,
            top_n,
            None,
            None,
            client,
            Box::new(move |reply| {
                let _ = tx.send(reply);
            }),
        )?;
        Ok(rx.recv().expect("service dropped before replying"))
    }

    /// Where a job currently is. An id that was issued but whose terminal
    /// record has been evicted answers [`JobStatus::Expired`]; an id never
    /// issued answers [`JobStatus::Unknown`].
    pub fn status(&self, job: u64) -> JobStatus {
        let g = self.inner.pool.lock();
        let o = &g.owner;
        let Some(j) = o.jobs.get(&job) else {
            return if job < o.next_job_id {
                JobStatus::Expired
            } else {
                JobStatus::Unknown
            };
        };
        match &j.phase {
            Phase::Queued => JobStatus::Queued {
                position: o.queue.position(job).unwrap_or(0),
            },
            Phase::Running {
                pending,
                shard_hits,
                ..
            } => JobStatus::Running {
                shards_done: shard_hits.len() - pending,
                shards_total: shard_hits.len(),
            },
            Phase::Done => JobStatus::Done {
                cancelled: j.cancelled,
                cached: j.cached,
            },
        }
    }

    /// Cancel a job. Queued jobs are withdrawn before any kernel runs;
    /// running jobs finish their in-flight shards but their hits are
    /// discarded and never cached. Either way the submitter's completion
    /// fires promptly with `cancelled: true`.
    pub fn cancel(&self, job: u64) -> CancelOutcome {
        let pool = &self.inner.pool;
        let mut g = pool.lock();
        let now = pool.now();
        let o = &mut g.owner;
        let Some(j) = o.jobs.get_mut(&job) else {
            // An evicted job necessarily already completed.
            return if job < o.next_job_id {
                CancelOutcome::AlreadyDone
            } else {
                CancelOutcome::Unknown
            };
        };
        if j.cancelled || matches!(j.phase, Phase::Done) {
            return CancelOutcome::AlreadyDone;
        }
        j.cancelled = true;
        let was_queued = matches!(j.phase, Phase::Queued);
        if was_queued {
            j.phase = Phase::Done;
        }
        let client = j.client;
        let tag = j.tag.clone();
        let generation = j.generation;
        let elapsed_ms = (now - j.submitted_at) * 1000.0;
        let completion = j.completion.take();
        if was_queued {
            o.queue.remove(job);
            o.queue.release(client);
            retire(o, job, now);
        }
        o.metrics.cancelled += 1;
        drop(g);
        if let Some(cb) = completion {
            cb(SearchReply {
                job,
                tag,
                cached: false,
                cancelled: true,
                generation,
                cells: 0,
                elapsed_ms,
                hits: Vec::new(),
            });
        }
        CancelOutcome::Cancelled
    }

    /// Snapshot the daemon's metrics as the `stats` reply body. Folds any
    /// pending runtime events into the per-PE series first.
    pub fn stats(&self) -> Json {
        let inner = &self.inner;
        let mut g = inner.pool.lock();
        let now = inner.pool.now();
        let o = &mut g.owner;
        while let Ok(e) = o.events_rx.try_recv() {
            o.metrics.apply_event(&e);
        }
        // Age-based eviction must not depend on traffic: an idle daemon's
        // registry drains on the next stats poll.
        sweep_retired(o, now);
        let m = &o.metrics;
        let cs = o.cache.stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("type", Json::str("stats")),
            ("uptime_s", Json::Num(inner.pool.now())),
            ("draining", Json::Bool(o.draining)),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::Num(o.queue.depth() as f64)),
                    ("limit", Json::Num(o.queue.depth_limit() as f64)),
                    ("max_depth", Json::Num(o.queue.max_depth as f64)),
                    (
                        "per_client_limit",
                        Json::Num(o.queue.per_client_limit() as f64),
                    ),
                ]),
            ),
            (
                "jobs",
                Json::obj(vec![
                    ("active", Json::Num(o.active_jobs as f64)),
                    ("admitted", Json::Num(m.admitted as f64)),
                    ("completed", Json::Num(m.completed as f64)),
                    ("cancelled", Json::Num(m.cancelled as f64)),
                    (
                        "rejected_queue_full",
                        Json::Num(m.rejected_queue_full as f64),
                    ),
                    (
                        "rejected_client_limit",
                        Json::Num(m.rejected_client_limit as f64),
                    ),
                    ("rejected_draining", Json::Num(m.rejected_draining as f64)),
                    ("expired", Json::Num(m.jobs_expired as f64)),
                    ("registry", Json::Num(o.jobs.len() as f64)),
                ]),
            ),
            (
                "fusion",
                Json::obj(vec![
                    ("max", Json::Num(inner.cfg.fusion as f64)),
                    ("tasks", Json::Num(m.fused_tasks as f64)),
                    ("queries", Json::Num(m.fused_queries as f64)),
                    (
                        "factor",
                        Json::Num(if m.fused_tasks == 0 {
                            0.0
                        } else {
                            m.fused_queries as f64 / m.fused_tasks as f64
                        }),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Num(cs.hits as f64)),
                    ("misses", Json::Num(cs.misses as f64)),
                    ("collisions", Json::Num(cs.collisions as f64)),
                    ("hit_rate", Json::Num(cs.hit_rate())),
                    ("insertions", Json::Num(cs.insertions as f64)),
                    ("evictions", Json::Num(cs.evictions as f64)),
                    ("size", Json::Num(o.cache.len() as f64)),
                    ("capacity", Json::Num(o.cache.capacity() as f64)),
                    ("served_from_cache", Json::Num(m.served_from_cache as f64)),
                ]),
            ),
            ("prepared_cache", {
                let pc = inner.prepared.lock().unwrap();
                let ps = pc.stats();
                Json::obj(vec![
                    ("hits", Json::Num(ps.hits as f64)),
                    ("misses", Json::Num(ps.misses as f64)),
                    ("collisions", Json::Num(ps.collisions as f64)),
                    ("hit_rate", Json::Num(ps.hit_rate())),
                    ("insertions", Json::Num(ps.insertions as f64)),
                    ("evictions", Json::Num(ps.evictions as f64)),
                    ("size", Json::Num(pc.len() as f64)),
                    ("capacity", Json::Num(pc.capacity() as f64)),
                ])
            }),
            ("latency_ms", m.latency.to_json()),
            ("kernel", Json::str(inner.cfg.kernel.name())),
            ("kernels", kernels_to_json(&m.kernels)),
            (
                "pes",
                Json::Arr(
                    m.pes
                        .iter()
                        .enumerate()
                        .map(|(pe, p)| {
                            Json::obj(vec![
                                ("pe", Json::Num(pe as f64)),
                                ("name", Json::str(&p.name)),
                                ("tasks_finished", Json::Num(p.tasks_finished as f64)),
                                ("mean_gcups", Json::Num(p.mean_gcups())),
                                ("last_gcups", Json::Num(p.last_gcups)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "db",
                Json::obj(vec![
                    ("name", Json::str(o.db.name())),
                    ("sequences", Json::Num(o.db.len() as f64)),
                    ("residues", Json::Num(o.db.total_residues() as f64)),
                    ("generation", Json::Num(o.db_generation as f64)),
                    ("digest", Json::str(format!("{:016x}", o.db.digest()))),
                    ("mapped", Json::Bool(o.db.arena().is_shared())),
                ]),
            ),
        ])
    }

    /// Replace the database from owned sequences (re-encodes and
    /// re-hashes — the FASTA reload path). See
    /// [`QueryService::swap_snapshot`] for the semantics.
    pub fn swap_db(&self, subjects: Vec<EncodedSequence>) {
        self.swap_snapshot(DbSnapshot::from_encoded("", &subjects));
    }

    /// Atomically swap the daemon onto a new database snapshot (a hot
    /// reload). Running jobs keep scanning their own snapshot
    /// (`Arc`-shared), so no query ever observes a mixed-generation
    /// database; new submissions see the new content under a bumped
    /// generation, which makes every cached result of the old database
    /// unreachable (the cache is also cleared outright to release the
    /// memory). Remote slaves are disconnected — their database copy is
    /// now stale — and their in-flight shards requeue to the local
    /// workers; a slave holding the new database can immediately rejoin
    /// under its digest. Returns the new generation.
    pub fn swap_snapshot(&self, snapshot: DbSnapshot) -> u64 {
        let (generation, remote) = {
            let mut g = self.inner.pool.lock();
            let o = &mut g.owner;
            o.db = Arc::new(snapshot);
            o.db_generation += 1;
            o.cache.clear();
            let generation = o.db_generation;
            (generation, g.remote_members())
        };
        for pe in remote {
            self.inner.pool.disconnect(pe, false);
        }
        generation
    }

    /// The current generation number and database snapshot.
    pub fn db(&self) -> (u64, Arc<DbSnapshot>) {
        let g = self.inner.pool.lock();
        (g.owner.db_generation, Arc::clone(&g.owner.db))
    }

    /// Stop admitting new queries; queued and running ones still complete.
    pub fn begin_drain(&self) {
        self.inner.pool.lock().owner.draining = true;
        self.inner.pool.notify_all();
    }

    /// Graceful shutdown: reject new admissions, wait for every queued and
    /// running job to deliver its reply, then stop the workers (and any
    /// slave listeners) and join them.
    pub fn shutdown(mut self) {
        self.begin_drain();
        loop {
            let mut g = self.inner.pool.lock();
            if g.owner.active_jobs == 0 && g.owner.queue.depth() == 0 {
                g.master.set_keep_alive(false);
                break;
            }
            let _g = self.inner.pool.wait_timeout(g, Duration::from_millis(50));
        }
        self.inner.pool.notify_all();
        self.stop_everything();
    }

    /// Stop listeners, disconnect remote slaves, join workers.
    fn stop_everything(&mut self) {
        self.stop_listeners.store(true, Ordering::Relaxed);
        let listeners: Vec<_> = self
            .listeners
            .lock()
            .expect("listener registry")
            .drain(..)
            .collect();
        for h in listeners {
            h.join().expect("slave listener panicked");
        }
        // Remote sessions see `Done` on their next request; disconnect the
        // rest proactively so their reader threads exit within a quantum.
        // The member list must be snapshotted BEFORE the loop: a `for` over
        // `pool.lock().remote_members()` keeps the guard alive for the whole
        // loop body, and `disconnect` locks the pool again — self-deadlock.
        let remote = self.inner.pool.lock().remote_members();
        for pe in remote {
            self.inner.pool.disconnect(pe, false);
        }
        for h in self.workers.drain(..) {
            h.join().expect("PE worker panicked");
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown() already joined
        }
        {
            let mut g = self.inner.pool.lock();
            g.owner.draining = true;
            g.master.set_keep_alive(false);
        }
        self.inner.pool.notify_all();
        self.stop_everything();
    }
}

/// The fusion-window flusher: a mostly-idle thread that schedules a held
/// undersized group once its window elapses. Under steady concurrent
/// load the batch fills before the deadline and this thread never pumps;
/// it exists so a straggler's query cannot wait forever for companions
/// that never come.
fn spawn_window_flusher(inner: Arc<Inner>, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    let window = inner.cfg.fusion_window_ms / 1000.0;
    std::thread::Builder::new()
        .name("swhybrid-serve-fuser".to_string())
        .spawn(move || loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let mut g = inner.pool.lock();
            let now = inner.pool.now();
            match g.owner.window_open_since {
                Some(t0) if now - t0 >= window => {
                    g.owner.window_open_since = None;
                    let core = &mut *g;
                    pump(&mut core.master, &mut core.owner, now, true);
                    drop(g);
                    inner.pool.notify_all();
                }
                Some(t0) => {
                    // Sleep out the remainder; a submit that fills the
                    // batch pumps on its own thread, so oversleeping here
                    // only ever delays a straggler, never a full group.
                    let left = (window - (now - t0)).max(0.0005);
                    let _g = inner.pool.wait_timeout(g, Duration::from_secs_f64(left));
                }
                None => {
                    let _g = inner.pool.wait_timeout(g, ACCEPT_QUANTUM);
                }
            }
        })
        .expect("spawn fusion-window flusher")
}

/// Admit queued jobs into the task pool up to the active-group bound,
/// fusing co-queued same-generation queries into shared shard tasks (up
/// to [`ServiceConfig::fusion`] queries per group).
fn pump(master: &mut Master, o: &mut ServeOwner, now: f64, flush: bool) {
    // A popped job whose snapshot generation differs from the group being
    // formed starts the next group instead (it cannot be pushed back into
    // the admission queue). In the rare swap-db race this can transiently
    // overshoot `max_active` by the carried group; it never loses a job.
    let mut carry: Option<u64> = None;
    while carry.is_some() || o.active_groups < o.cfg.max_active {
        // Fusion window: an undersized backlog (carried jobs excepted —
        // they are already popped) holds briefly for companions instead
        // of scheduling a lonely pass. The flusher thread re-pumps with
        // `flush` once the window elapses; draining flushes immediately.
        if carry.is_none()
            && !flush
            && !o.draining
            && o.cfg.fusion > 1
            && o.cfg.fusion_window_ms > 0.0
            && o.queue.depth() > 0
            && o.queue.depth() < o.cfg.fusion
        {
            if o.window_open_since.is_none() {
                o.window_open_since = Some(now);
            }
            return;
        }
        let mut group: Vec<u64> = carry.take().into_iter().collect();
        while group.len() < o.cfg.fusion {
            let Some(job_id) = o.queue.pop_next() else {
                break;
            };
            if o.jobs.get(&job_id).is_none_or(|j| j.cancelled) {
                continue;
            }
            if group
                .first()
                .is_some_and(|head| o.jobs[head].generation != o.jobs[&job_id].generation)
            {
                carry = Some(job_id);
                break;
            }
            group.push(job_id);
        }
        if group.is_empty() {
            o.window_open_since = None;
            break;
        }
        o.window_open_since = None;
        schedule_group(master, o, &group);
    }
}

/// Submit one fused group (1..=fusion jobs sharing a database snapshot
/// generation) as a set of shard tasks, one task per shard scoring the
/// whole batch.
fn schedule_group(master: &mut Master, o: &mut ServeOwner, group: &[u64]) {
    let Some(&head) = group.first() else {
        return;
    };
    let (shards, specs) = {
        let first = &o.jobs[&head];
        let shards = first.db.shard_ranges(o.cfg.shards);
        // A fused task computes every member's matrix against the shard,
        // so its spec charges the batch's summed query length — PSS cell
        // accounting then counts K× cells per task automatically.
        let qlen: usize = group
            .iter()
            .map(|id| {
                o.jobs[id]
                    .prepared
                    .as_ref()
                    .expect("queued jobs carry profiles")
                    .query_len()
            })
            .sum();
        let specs: Vec<TaskSpec> = shards
            .iter()
            .map(|&(s, e)| TaskSpec {
                id: 0, // rewritten by the pool
                query_len: qlen,
                queries: group.len(),
                db_residues: first.db.range_residues(s..e),
                db_sequences: e - s,
            })
            .collect();
        (shards, specs)
    };
    let tasks = master.submit_tasks(specs);
    o.metrics.fused_tasks += tasks.len() as u64;
    o.metrics.fused_queries += (tasks.len() * group.len()) as u64;
    for (shard_idx, &t) in tasks.iter().enumerate() {
        o.task_map.insert(
            t,
            FusedTask {
                jobs: group.to_vec(),
                shard_idx,
                group_tasks: tasks.clone(),
            },
        );
    }
    let n = shards.len();
    for id in group {
        let job = o.jobs.get_mut(id).expect("grouped jobs are live");
        job.shards = shards.clone();
        job.phase = Phase::Running {
            pending: n,
            shard_hits: vec![None; n],
            cells: 0,
        };
        o.active_jobs += 1;
    }
    o.active_groups += 1;
}

/// Execute one fused shard task on a local worker: snapshot the batch
/// under the lock, scan the shard once for every live member off it. The
/// pool (via [`LocalEndpoint`] and [`ServeOwner::on_finished`]) handles
/// started/finished bookkeeping.
fn execute_task(inner: &Inner, task: TaskId, scratch: &mut KernelScratch) -> TaskResult {
    let (entries, range, db) = {
        let g = inner.pool.lock();
        let o = &g.owner;
        let Some(ft) = o.task_map.get(&task) else {
            // Unknown task (should not happen): report a skip, not a scan.
            return TaskResult::default();
        };
        // Batch members stay positional: a cancelled (or vanished) member
        // keeps its slot as `None` so results pair with `FusedTask::jobs`.
        let mut entries: Vec<Option<(Arc<PreparedQuery>, usize)>> =
            Vec::with_capacity(ft.jobs.len());
        let mut range = None;
        let mut snapshot = None;
        for id in &ft.jobs {
            let entry = o.jobs.get(id).filter(|j| !j.cancelled).map(|job| {
                range = Some(job.shards[ft.shard_idx]);
                snapshot = Some(Arc::clone(&job.db));
                (
                    Arc::clone(job.prepared.as_ref().expect("running jobs carry profiles")),
                    job.top_n,
                )
            });
            entries.push(entry);
        }
        let Some(db) = snapshot else {
            // Every member cancelled mid-run: complete the task without
            // burning kernels and without a speed report (a 0.0 would
            // poison the PSS window).
            return TaskResult {
                fused: Some(vec![FusedQueryResult::default(); entries.len()]),
                ..TaskResult::default()
            };
        };
        (entries, range.expect("live member sets the range"), db)
    };
    let (s, e) = range;
    let t0 = Instant::now();
    let live: Vec<(Arc<PreparedQuery>, usize)> = entries.iter().flatten().cloned().collect();
    let cfg = SearchConfig {
        threads: 1,
        top_n: live.iter().map(|&(_, n)| n).max().unwrap_or(0),
        chunk_size: inner.cfg.chunk_size,
        preference: inner.cfg.preference,
        kernel: inner.cfg.kernel,
        sort_by_length: false,
        prefetch: inner.cfg.prefetch,
    };
    let outs = search_arena_multi_with_scratch(&live, db.arena(), s..e, &cfg, scratch);
    // Demux per query, positionally. The arena is in database order, so
    // shard scan positions already are global database indices and the
    // cross-shard merge tie-breaks identically to a whole-db scan.
    // Identifiers are cloned here for the shard's top-N only.
    let mut outs = outs.into_iter();
    let mut fused = Vec::with_capacity(entries.len());
    let mut total_cells = 0u64;
    let mut merged_stats = KernelStats::default();
    for entry in &entries {
        if entry.is_none() {
            fused.push(FusedQueryResult::default());
            continue;
        }
        let out = outs.next().expect("one output per live batch member");
        let hits = out
            .scored
            .iter()
            .map(|sc| Hit {
                db_index: sc.db_index,
                id: db.id(sc.db_index).to_string(),
                score: sc.score,
                subject_len: sc.subject_len,
            })
            .collect();
        total_cells += out.cells;
        merged_stats.merge(&out.stats);
        fused.push(FusedQueryResult {
            hits,
            cells: out.cells,
            kernels: Some(out.stats),
        });
    }
    TaskResult {
        gcups: Some(observed_gcups(total_cells, t0.elapsed().as_secs_f64())),
        hits: Vec::new(),
        cells: total_cells,
        kernels: Some(merged_stats),
        fused: Some(fused),
    }
}

/// Fold a winning shard result into its job; on the last shard, finalize:
/// merge, cache, meter, release the admission slot, pump the queue.
/// Returns the completion to invoke off the lock.
fn record_shard(
    o: &mut ServeOwner,
    now: f64,
    job_id: u64,
    shard_idx: usize,
    hits: Vec<Hit>,
    cells: u64,
) -> Option<(Option<Completion>, SearchReply)> {
    {
        let job = o.jobs.get_mut(&job_id)?;
        let Phase::Running {
            pending,
            shard_hits,
            cells: acc,
        } = &mut job.phase
        else {
            return None;
        };
        if shard_hits[shard_idx].is_some() {
            return None;
        }
        shard_hits[shard_idx] = Some(hits);
        *acc += cells;
        *pending -= 1;
        if *pending > 0 {
            return None;
        }
    }
    // Last shard in: finalize.
    let job = o.jobs.get_mut(&job_id)?;
    let Phase::Running {
        shard_hits,
        cells: total_cells,
        ..
    } = std::mem::replace(&mut job.phase, Phase::Done)
    else {
        unreachable!("guarded above");
    };
    let merged = merge_top_n(
        shard_hits
            .into_iter()
            .map(|h| h.expect("all shards recorded")),
        job.top_n,
    );
    let elapsed_ms = (now - job.submitted_at) * 1000.0;
    let cancelled = job.cancelled;
    let completion = job.completion.take();
    let client = job.client;
    let key = job.key;
    let codes = job.codes.clone();
    let reply = SearchReply {
        job: job_id,
        tag: job.tag.clone(),
        cached: false,
        cancelled,
        generation: job.generation,
        cells: total_cells,
        elapsed_ms,
        hits: if cancelled {
            Vec::new()
        } else {
            merged.clone()
        },
    };
    if !cancelled {
        o.cache.insert(key, &codes, merged);
        o.metrics.completed += 1;
        o.metrics.latency.observe(elapsed_ms);
    }
    retire(o, job_id, now);
    o.active_jobs -= 1;
    o.queue.release(client);
    // The scheduling slot is the *group's*; [`ServeOwner::on_finished`]
    // frees it (and pumps the queue) when the whole group is done.
    Some((completion, reply))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_seq::Alphabet;
    use swhybrid_simd::search::DatabaseSearch;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn random_db(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let len = rng.random_range(1..max_len);
                EncodedSequence {
                    id: format!("s{i}"),
                    codes: (0..len).map(|_| rng.random_range(0..20u8)).collect(),
                    alphabet: Alphabet::Protein,
                }
            })
            .collect()
    }

    fn random_query(seed: u64, len: usize) -> Vec<u8> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..len).map(|_| rng.random_range(0..20u8)).collect()
    }

    fn small_service(db: &[EncodedSequence]) -> QueryService {
        QueryService::new(
            db.to_vec(),
            scoring(),
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn shard_ranges_cover_and_balance() {
        let db = random_db(11, 57, 120);
        let snap = DbSnapshot::from_encoded("", &db);
        for n in [1, 2, 3, 7, 57, 100] {
            let shards = snap.shard_ranges(n);
            assert_eq!(shards.first().unwrap().0, 0);
            assert_eq!(shards.last().unwrap().1, db.len());
            for w in shards.windows(2) {
                assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
            }
            assert!(shards.iter().all(|&(s, e)| e > s), "no empty shards");
            assert!(shards.len() <= n.min(db.len()));
        }
        let empty = DbSnapshot::from_encoded("", &[]);
        assert_eq!(empty.shard_ranges(4), vec![(0, 0)]);
    }

    #[test]
    fn served_result_matches_cold_scan() {
        let db = random_db(23, 80, 100);
        let query = random_query(29, 60);
        let svc = small_service(&db);
        let reply = svc.search_blocking(query.clone(), 12, 1).unwrap();
        let cold = DatabaseSearch::new(
            &query,
            &scoring(),
            swhybrid_simd::search::SearchConfig {
                top_n: 12,
                ..Default::default()
            },
        )
        .run(&db);
        assert_eq!(reply.hits, cold.hits);
        assert!(!reply.cached);
        assert_eq!(reply.cells, cold.cells);
        svc.shutdown();
    }

    #[test]
    fn repeat_query_hits_cache_with_zero_cells() {
        let db = random_db(31, 40, 80);
        let query = random_query(37, 50);
        let svc = small_service(&db);
        let cold = svc.search_blocking(query.clone(), 10, 1).unwrap();
        let warm = svc.search_blocking(query, 10, 1).unwrap();
        assert!(!cold.cached && warm.cached);
        assert_eq!(warm.cells, 0);
        assert_eq!(warm.hits, cold.hits);
        let stats = svc.stats();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64().unwrap(), 1);
        // The kernel counters cover the cold scan's subjects (the warm
        // query never ran a kernel) and name the configured dispatch.
        assert_eq!(stats.get("kernel").unwrap().as_str(), Some("auto"));
        let kernels = stats.get("kernels").unwrap();
        let count = |key: &str| kernels.get(key).unwrap().as_u64().unwrap();
        let resolved = count("striped_i8")
            + count("striped_i16")
            + count("striped_scalar")
            + count("interseq_i8")
            + count("interseq_i16")
            + count("interseq_scalar");
        // ≥: a replicated shard's losing scan also counts (real work).
        assert!(resolved >= 40, "one resolution per scanned subject");
        assert!(count("cells_computed") > 0);
        assert_eq!(
            stats
                .get("jobs")
                .unwrap()
                .get("completed")
                .unwrap()
                .as_u64()
                .unwrap(),
            2
        );
        svc.shutdown();
    }

    #[test]
    fn swap_db_invalidates_cache_and_changes_results() {
        let db_a = random_db(41, 30, 80);
        let db_b = random_db(43, 30, 80);
        let query = random_query(47, 40);
        let svc = small_service(&db_a);
        let a = svc.search_blocking(query.clone(), 5, 1).unwrap();
        svc.swap_db(db_b.clone());
        let b = svc.search_blocking(query.clone(), 5, 1).unwrap();
        assert!(!b.cached, "generation bump must bypass the cache");
        let cold_b = DatabaseSearch::new(
            &query,
            &scoring(),
            swhybrid_simd::search::SearchConfig {
                top_n: 5,
                ..Default::default()
            },
        )
        .run(&db_b);
        assert_eq!(b.hits, cold_b.hits);
        // Old-generation result is still byte-identical to its own scan.
        assert_ne!(a.hits, b.hits);
        svc.shutdown();
    }

    #[test]
    fn cancel_queued_job_never_scans() {
        let db = random_db(53, 30, 60);
        let svc = QueryService::new(
            db.clone(),
            scoring(),
            ServiceConfig {
                workers: 1,
                max_active: 1,
                ..Default::default()
            },
        );
        // Fill the single active slot with a real query, then queue one
        // more and cancel it before it can dispatch.
        let (tx, rx) = std::sync::mpsc::channel();
        let tx2 = tx.clone();
        svc.submit(
            random_query(59, 400),
            5,
            None,
            None,
            1,
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .unwrap();
        let victim = svc
            .submit(
                random_query(61, 40),
                5,
                None,
                None,
                2,
                Box::new(move |r| tx2.send(r).unwrap()),
            )
            .unwrap();
        let outcome = svc.cancel(victim);
        // Either we caught it queued, or it had already dispatched; both
        // must deliver a reply for every submission.
        assert_ne!(outcome, CancelOutcome::Unknown);
        let mut replies = [rx.recv().unwrap(), rx.recv().unwrap()];
        replies.sort_by_key(|r| r.job);
        if outcome == CancelOutcome::Cancelled {
            let r = replies.iter().find(|r| r.job == victim).unwrap();
            assert!(r.cancelled);
            assert!(r.hits.is_empty());
        }
        assert_eq!(svc.cancel(9999), CancelOutcome::Unknown);
        svc.shutdown();
    }

    #[test]
    fn drain_rejects_new_but_finishes_queued() {
        let db = random_db(67, 25, 60);
        let svc = small_service(&db);
        let (tx, rx) = std::sync::mpsc::channel();
        svc.submit(
            random_query(71, 80),
            5,
            None,
            None,
            1,
            Box::new(move |r| tx.send(r).unwrap()),
        )
        .unwrap();
        svc.begin_drain();
        let err = svc.search_blocking(random_query(73, 30), 5, 2).unwrap_err();
        assert_eq!(err, SubmitError::Draining);
        let reply = rx.recv().unwrap();
        assert!(!reply.cancelled);
        svc.shutdown();
    }

    /// Regression (unbounded job registry): the daemon used to keep every
    /// terminal job's record forever, so weeks of queries grew `jobs`
    /// without bound. Terminal jobs must be evicted after the retention
    /// window, evicted ids must answer `Expired` (not `Unknown`), and the
    /// registry must stay bounded over 10k queries.
    #[test]
    fn job_registry_stays_bounded_over_ten_thousand_queries() {
        let db = random_db(83, 20, 50);
        let query = random_query(89, 30);
        let svc = QueryService::new(
            db,
            scoring(),
            ServiceConfig {
                workers: 1,
                retained_jobs: 32,
                retention_secs: 1e9, // count bound only; age is tested below
                ..Default::default()
            },
        );
        for _ in 0..10_000 {
            let reply = svc.search_blocking(query.clone(), 5, 1).unwrap();
            assert!(!reply.cancelled);
        }
        let stats = svc.stats();
        let jobs = stats.get("jobs").unwrap();
        let registry = jobs.get("registry").unwrap().as_u64().unwrap();
        assert!(
            registry <= 32 + 2,
            "registry grew unbounded: {registry} records after 10k queries"
        );
        let expired = jobs.get("expired").unwrap().as_u64().unwrap();
        assert!(expired >= 10_000 - 34, "evictions not accounted: {expired}");
        // The evicted id is a well-formed answer, not an unknown one.
        assert_eq!(svc.status(0), JobStatus::Expired);
        assert_eq!(svc.cancel(0), CancelOutcome::AlreadyDone);
        // An id never issued stays unknown.
        assert_eq!(svc.status(99_999_999), JobStatus::Unknown);
        assert_eq!(svc.cancel(99_999_999), CancelOutcome::Unknown);
        svc.shutdown();
    }

    /// Terminal records also age out without traffic: the age bound must
    /// drain an idle daemon's registry (swept on the stats poll).
    #[test]
    fn retention_age_drains_an_idle_registry() {
        let db = random_db(91, 15, 40);
        let svc = QueryService::new(
            db,
            scoring(),
            ServiceConfig {
                workers: 1,
                retained_jobs: 1024,
                retention_secs: 0.02,
                ..Default::default()
            },
        );
        let job = svc.search_blocking(random_query(93, 25), 5, 1).unwrap().job;
        assert!(matches!(svc.status(job), JobStatus::Done { .. }));
        std::thread::sleep(Duration::from_millis(60));
        let _ = svc.stats(); // the idle sweep
        assert_eq!(svc.status(job), JobStatus::Expired);
        svc.shutdown();
    }

    /// The tentpole's law at service level: queries that queue behind a
    /// running group are fused into shared shard tasks, and every fused
    /// reply is byte-identical to that query's solo cold scan.
    #[test]
    fn fused_queries_match_cold_scans_and_share_tasks() {
        let db = random_db(97, 50, 70);
        let svc = QueryService::new(
            db.clone(),
            scoring(),
            ServiceConfig {
                workers: 1,
                max_active: 1,
                fusion: 4,
                cache_capacity: 0,
                per_client_inflight: 16,
                ..Default::default()
            },
        );
        // A slow head query occupies the single group slot; the four short
        // queries behind it queue and must dispatch as one fused group.
        let (tx, rx) = std::sync::mpsc::channel();
        let head = random_query(101, 700);
        let tx0 = tx.clone();
        svc.submit(
            head.clone(),
            5,
            None,
            None,
            1,
            Box::new(move |r| tx0.send(r).unwrap()),
        )
        .unwrap();
        let queries: Vec<(Vec<u8>, usize)> = (0..4u64)
            .map(|i| (random_query(103 + i, 25 + 5 * i as usize), 4 + i as usize))
            .collect();
        for (q, top_n) in &queries {
            let tx = tx.clone();
            svc.submit(
                q.clone(),
                *top_n,
                None,
                None,
                1,
                Box::new(move |r| tx.send(r).unwrap()),
            )
            .unwrap();
        }
        let replies: Vec<SearchReply> = (0..5).map(|_| rx.recv().unwrap()).collect();
        let oracle = |q: &[u8], top_n: usize| {
            DatabaseSearch::new(
                q,
                &scoring(),
                swhybrid_simd::search::SearchConfig {
                    top_n,
                    ..Default::default()
                },
            )
            .run(&db)
        };
        for reply in &replies {
            let (q, top_n) = if reply.job == 0 {
                (&head, 5usize)
            } else {
                let (q, n) = &queries[reply.job as usize - 1];
                (q, *n)
            };
            let cold = oracle(q, top_n);
            assert_eq!(
                reply.hits, cold.hits,
                "job {} differs from cold scan",
                reply.job
            );
            assert_eq!(
                reply.cells, cold.cells,
                "job {} cell count drifted",
                reply.job
            );
        }
        let stats = svc.stats();
        let fusion = stats.get("fusion").unwrap();
        let factor = fusion.get("factor").unwrap().as_f64().unwrap();
        assert!(
            factor > 1.0,
            "the queued queries never fused (factor {factor})"
        );
        svc.shutdown();
    }

    #[test]
    fn scoring_digest_separates_schemes() {
        let a = scoring_digest(&scoring());
        let b = scoring_digest(&Scoring {
            matrix: SubstMatrix::blosum50(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        });
        let c = scoring_digest(&Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 12,
                extend: 2,
            },
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, scoring_digest(&scoring()));
    }
}
