//! The daemon's live metrics: latency histogram, admission counters, and
//! per-PE throughput folded from the master's event stream.
//!
//! Per-PE GCUPS is not measured separately by the service — it is *derived*
//! from the [`RuntimeEvent`] stream the scheduler already emits
//! ([`EventKind::TaskFinished`] carries the measured speed of every
//! completion), so the numbers the `stats` verb reports are exactly the
//! numbers the PSS policy schedules by.

use swhybrid_core::trace::{EventKind, RuntimeEvent};
use swhybrid_json::Json;
use swhybrid_simd::engine::KernelStats;

/// Upper bounds (milliseconds) of the latency histogram buckets; the last
/// bucket is unbounded.
pub const LATENCY_BOUNDS_MS: [f64; 12] = [
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    5000.0,
    f64::INFINITY,
];

/// Fixed-bucket latency histogram (milliseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BOUNDS_MS.len()],
    count: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; LATENCY_BOUNDS_MS.len()],
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn observe(&mut self, ms: f64) {
        let bucket = LATENCY_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(LATENCY_BOUNDS_MS.len() - 1);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, 0 when empty.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Upper-bound estimate of the q-quantile (the bound of the bucket the
    /// quantile falls in; the top bucket reports the observed max).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                let bound = LATENCY_BOUNDS_MS[i];
                return if bound.is_finite() {
                    bound
                } else {
                    self.max_ms
                };
            }
        }
        self.max_ms
    }

    /// The histogram as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("mean_ms", Json::Num(self.mean_ms())),
            ("max_ms", Json::Num(self.max_ms)),
            ("p50_ms", Json::Num(self.quantile_ms(0.5))),
            ("p90_ms", Json::Num(self.quantile_ms(0.9))),
            ("p99_ms", Json::Num(self.quantile_ms(0.99))),
            (
                "buckets",
                Json::Arr(
                    self.counts
                        .iter()
                        .zip(LATENCY_BOUNDS_MS)
                        .map(|(&c, b)| {
                            Json::obj(vec![
                                (
                                    "le_ms",
                                    if b.is_finite() {
                                        Json::Num(b)
                                    } else {
                                        Json::str("inf")
                                    },
                                ),
                                ("count", Json::Num(c as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Cumulative throughput of one PE worker, folded from events.
#[derive(Debug, Clone, Default)]
pub struct PeMetric {
    /// The PE's registered name.
    pub name: String,
    /// Completions (winner or not — the kernel ran either way).
    pub tasks_finished: u64,
    /// Sum of measured GCUPS over completions with a finite measurement.
    sum_gcups: f64,
    measured: u64,
    /// Most recent measured GCUPS.
    pub last_gcups: f64,
    /// Cumulative kernel usage of this PE's winning scans, folded from
    /// `task_kernels` events. Both transports emit them — local PE
    /// threads and remote slaves — so the per-PE breakdown in `stats`
    /// agrees with a `--events` stream of the same run.
    pub kernels: KernelStats,
}

impl PeMetric {
    /// Mean measured GCUPS across completions.
    pub fn mean_gcups(&self) -> f64 {
        if self.measured == 0 {
            0.0
        } else {
            self.sum_gcups / self.measured as f64
        }
    }
}

/// All service-level counters behind the `stats` verb.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries admitted to the queue.
    pub admitted: u64,
    /// Queries rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Queries rejected by the per-client in-flight limit.
    pub rejected_client_limit: u64,
    /// Queries rejected because the daemon was draining.
    pub rejected_draining: u64,
    /// Queries cancelled (queued or running).
    pub cancelled: u64,
    /// Queries completed (scan or cache).
    pub completed: u64,
    /// Completions answered from the cache.
    pub served_from_cache: u64,
    /// Shard tasks dispatched into the pool (each scans one database shard
    /// for its whole query batch).
    pub fused_tasks: u64,
    /// Queries carried by those tasks, summed: `fused_queries /
    /// fused_tasks` is the achieved fusion factor (1.0 = unfused).
    pub fused_queries: u64,
    /// Terminal jobs evicted from the registry after the retention window.
    pub jobs_expired: u64,
    /// End-to-end latency (admission→reply, cache hits included).
    pub latency: LatencyHistogram,
    /// Cumulative kernel usage across every shard scan (winner or not).
    pub kernels: KernelStats,
    /// Per-PE throughput, indexed by `PeId`.
    pub pes: Vec<PeMetric>,
}

impl Metrics {
    /// Fold one runtime event into the per-PE series.
    pub fn apply_event(&mut self, event: &RuntimeEvent) {
        match &event.kind {
            EventKind::PeRegistered { pe, name } | EventKind::PeJoined { pe, name } => {
                if self.pes.len() <= *pe {
                    self.pes.resize_with(pe + 1, PeMetric::default);
                }
                self.pes[*pe].name = name.clone();
            }
            EventKind::TaskFinished {
                pe, measured_gcups, ..
            } => {
                if self.pes.len() <= *pe {
                    self.pes.resize_with(pe + 1, PeMetric::default);
                }
                let m = &mut self.pes[*pe];
                m.tasks_finished += 1;
                if measured_gcups.is_finite() {
                    m.sum_gcups += measured_gcups;
                    m.measured += 1;
                    m.last_gcups = *measured_gcups;
                }
            }
            EventKind::TaskKernels { pe, kernels, .. } => {
                if self.pes.len() <= *pe {
                    self.pes.resize_with(pe + 1, PeMetric::default);
                }
                self.pes[*pe].kernels.merge(kernels);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for ms in [0.5, 1.5, 3.0, 8.0, 900.0] {
            h.observe(ms);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean_ms() - 182.6).abs() < 1e-9);
        assert_eq!(h.quantile_ms(0.5), 5.0); // 3rd of 5 lands in (2, 5]
        assert_eq!(h.quantile_ms(1.0), 1000.0);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64().unwrap(), 5);
        assert_eq!(
            j.get("buckets").unwrap().as_array().unwrap().len(),
            LATENCY_BOUNDS_MS.len()
        );
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let mut h = LatencyHistogram::default();
        h.observe(123_456.0);
        assert_eq!(h.quantile_ms(0.5), 123_456.0);
    }

    #[test]
    fn events_fold_into_pe_metrics() {
        let mut m = Metrics::default();
        m.apply_event(&RuntimeEvent {
            time: 0.0,
            kind: EventKind::PeRegistered {
                pe: 0,
                name: "cpu0".into(),
            },
        });
        m.apply_event(&RuntimeEvent {
            time: 1.0,
            kind: EventKind::TaskFinished {
                pe: 0,
                task: 0,
                winner: true,
                measured_gcups: 2.0,
            },
        });
        m.apply_event(&RuntimeEvent {
            time: 2.0,
            kind: EventKind::TaskFinished {
                pe: 0,
                task: 1,
                winner: false,
                measured_gcups: 4.0,
            },
        });
        assert_eq!(m.pes[0].name, "cpu0");
        assert_eq!(m.pes[0].tasks_finished, 2);
        assert!((m.pes[0].mean_gcups() - 3.0).abs() < 1e-12);
        assert!((m.pes[0].last_gcups - 4.0).abs() < 1e-12);
        // NaN measurements (replicas finished without timing) are skipped.
        m.apply_event(&RuntimeEvent {
            time: 3.0,
            kind: EventKind::TaskFinished {
                pe: 0,
                task: 2,
                winner: false,
                measured_gcups: f64::NAN,
            },
        });
        assert_eq!(m.pes[0].tasks_finished, 3);
        assert!((m.pes[0].mean_gcups() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn task_kernels_events_fold_into_per_pe_counters() {
        let mut m = Metrics::default();
        let kernels = KernelStats {
            resolved_i8: 7,
            chunks_striped: 2,
            cells_computed: 1234,
            ..Default::default()
        };
        // Arrives before any registration event: the series must grow.
        m.apply_event(&RuntimeEvent {
            time: 1.0,
            kind: EventKind::TaskKernels {
                pe: 1,
                task: 0,
                kernels,
            },
        });
        m.apply_event(&RuntimeEvent {
            time: 2.0,
            kind: EventKind::TaskKernels {
                pe: 1,
                task: 1,
                kernels,
            },
        });
        assert_eq!(m.pes[1].kernels.resolved_i8, 14);
        assert_eq!(m.pes[1].kernels.chunks_striped, 4);
        assert_eq!(m.pes[1].kernels.cells_computed, 2468);
        assert_eq!(m.pes[0].kernels, KernelStats::default());
    }
}
