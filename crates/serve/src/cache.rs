//! The LRU result cache.
//!
//! A repeated query against an unchanged database is the cheapest request a
//! search server ever sees — *if* it can prove "unchanged" and "repeated"
//! cheaply. Both are digests ([`swhybrid_seq::digest`]): the key is the
//! full identity of a search's output, so a hit can be returned verbatim
//! with zero kernel cells. Anything that could change the ranking — the
//! query residues, the database (via its generation *and* content digest),
//! the scoring scheme, the requested depth — is part of the key; anything
//! that cannot (query id, client, deadline) is deliberately not.

use std::collections::HashMap;
use swhybrid_simd::search::Hit;

/// The full identity of a search result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Digest of the query's alphabet codes.
    pub query_digest: u64,
    /// Database generation: bumped on every reload/swap, so stale entries
    /// die instantly even if the content digest were to collide.
    pub db_generation: u64,
    /// Digest of the database content (ids + codes, in order).
    pub db_digest: u64,
    /// Digest of the scoring scheme (matrix + gap model).
    pub scoring_digest: u64,
    /// Requested ranking depth.
    pub top_n: usize,
}

/// Cache occupancy and effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Lookups whose key matched but whose stored query bytes did not — a
    /// 64-bit digest collision that, unverified, would have served another
    /// query's hit table. Counted as misses.
    pub collisions: u64,
}

impl CacheStats {
    /// Hits over lookups, 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    /// The exact query codes the entry was computed for. `query_digest` is
    /// 64-bit FNV-1a — honest about collisions — so a hit is only a hit if
    /// the stored bytes also match; otherwise two colliding queries would
    /// silently share one hit table.
    query: Vec<u8>,
    hits: Vec<Hit>,
    last_used: u64,
}

/// A bounded least-recently-used map from [`CacheKey`] to ranked hits.
///
/// Recency is a logical stamp bumped on every touch; eviction removes the
/// minimum-stamp entry. Capacity 0 disables the cache entirely (every
/// lookup misses, nothing is stored).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    stamp: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl ResultCache {
    /// Create a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            stamp: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up a result, refreshing its recency on a hit. `query` is the
    /// query's alphabet codes; an entry whose digest matches but whose
    /// stored bytes differ is a digest collision and must miss (the caller
    /// recomputes, and [`ResultCache::insert`] replaces the entry).
    pub fn get(&mut self, key: &CacheKey, query: &[u8]) -> Option<Vec<Hit>> {
        self.stamp += 1;
        match self.map.get_mut(key) {
            Some(entry) if entry.query == query => {
                entry.last_used = self.stamp;
                self.stats.hits += 1;
                Some(entry.hits.clone())
            }
            Some(_) => {
                self.stats.collisions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store a result, evicting the least recently used entry when full.
    pub fn insert(&mut self, key: CacheKey, query: &[u8], hits: Vec<Hit>) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.stats.insertions += 1;
        self.map.insert(
            key,
            Entry {
                query: query.to_vec(),
                hits,
                last_used: self.stamp,
            },
        );
    }

    /// Drop every entry at once (a database reload: the generation bump
    /// already makes old keys unreachable, clearing releases their memory
    /// immediately). Cumulative stats are kept.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: u64) -> CacheKey {
        CacheKey {
            query_digest: q,
            db_generation: 0,
            db_digest: 7,
            scoring_digest: 9,
            top_n: 10,
        }
    }

    fn hits(score: i32) -> Vec<Hit> {
        vec![Hit {
            db_index: 0,
            id: "s".into(),
            score,
            subject_len: 5,
        }]
    }

    /// Distinct stand-in query bytes per digest for tests that don't
    /// exercise collisions.
    fn codes(q: u64) -> Vec<u8> {
        vec![q as u8, 1, 2, 3]
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key(1), &codes(1)).is_none());
        c.insert(key(1), &codes(1), hits(42));
        assert_eq!(c.get(&key(1), &codes(1)).unwrap()[0].score, 42);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn generation_bump_is_a_different_key() {
        let mut c = ResultCache::new(4);
        c.insert(key(1), &codes(1), hits(1));
        let stale = CacheKey {
            db_generation: 1,
            ..key(1)
        };
        assert!(c.get(&stale, &codes(1)).is_none());
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), &codes(1), hits(1));
        c.insert(key(2), &codes(2), hits(2));
        c.get(&key(1), &codes(1)); // key 2 is now coldest
        c.insert(key(3), &codes(3), hits(3));
        assert!(c.get(&key(1), &codes(1)).is_some());
        assert!(c.get(&key(2), &codes(2)).is_none());
        assert!(c.get(&key(3), &codes(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.insert(key(1), &codes(1), hits(1));
        assert!(c.get(&key(1), &codes(1)).is_none());
        assert!(c.is_empty());
    }

    /// Regression: two queries whose 64-bit digests collide (deliberately
    /// forced here by giving different bytes the same `query_digest`) used
    /// to share one hit table — the second query was silently served the
    /// first query's results. A colliding lookup must miss, count as a
    /// collision, and the recompute must replace the entry.
    #[test]
    fn digest_collision_misses_instead_of_serving_the_wrong_query() {
        let mut c = ResultCache::new(4);
        let alice = vec![1u8, 2, 3, 4];
        let bob = vec![9u8, 9, 9, 9]; // same digest, different query
        c.insert(key(1), &alice, hits(42));
        // Bob's lookup lands on Alice's entry; the byte check must veto it.
        assert!(
            c.get(&key(1), &bob).is_none(),
            "collision served another query's hits"
        );
        assert_eq!(c.stats().collisions, 1);
        // Bob recomputes and stores; the entry now answers Bob, not Alice.
        c.insert(key(1), &bob, hits(7));
        assert_eq!(c.get(&key(1), &bob).unwrap()[0].score, 7);
        assert!(c.get(&key(1), &alice).is_none());
        assert_eq!(c.stats().collisions, 2);
    }
}
