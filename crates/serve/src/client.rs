//! A small blocking client for the daemon's wire protocol — what the
//! `swhybrid query` CLI and the integration tests speak through.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use swhybrid_json::Json;
use swhybrid_simd::search::Hit;

use crate::protocol::{hits_from_json, request_to_json, ReloadRequest, Request, SearchRequest};

/// One connection to a running [`crate::ServeDaemon`].
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, json: &Json) -> io::Result<()> {
        writeln!(self.writer, "{json}")
    }

    /// Read the next reply line (blocking).
    pub fn recv(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return Json::parse(trimmed).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}"))
            });
        }
    }

    /// Send a request and return the next reply line.
    pub fn request(&mut self, req: &Request) -> io::Result<Json> {
        self.send(&request_to_json(req))?;
        self.recv()
    }

    /// Fire-and-wait search: submit without ack, block for the result
    /// (or the rejection).
    pub fn search(&mut self, query: &str, top_n: usize) -> io::Result<Json> {
        self.search_request(SearchRequest {
            query: query.to_string(),
            top_n,
            deadline_ms: None,
            tag: None,
            ack: false,
        })
    }

    /// Submit a full search request and block until its result or error
    /// line arrives, skipping any interleaved ack.
    pub fn search_request(&mut self, req: SearchRequest) -> io::Result<Json> {
        self.send(&request_to_json(&Request::Search(req)))?;
        loop {
            let reply = self.recv()?;
            if reply.get("type").and_then(Json::as_str) == Some("ack") {
                continue;
            }
            return Ok(reply);
        }
    }

    /// Fetch the daemon's metrics snapshot.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&Request::Stats)
    }

    /// Ask where a job is.
    pub fn status(&mut self, job: u64) -> io::Result<Json> {
        self.request(&Request::Status { job })
    }

    /// Cancel a job.
    pub fn cancel(&mut self, job: u64) -> io::Result<Json> {
        self.request(&Request::Cancel { job })
    }

    /// Hot-swap the daemon onto a `.swdb` store (server-side path).
    /// `verify` requests a full checksum + digest re-hash before the swap.
    pub fn reload_store(&mut self, path: &str, verify: bool) -> io::Result<Json> {
        self.request(&Request::Reload(ReloadRequest {
            store: Some(path.to_string()),
            fasta: None,
            verify,
        }))
    }

    /// Hot-swap the daemon onto a FASTA file (server-side path).
    pub fn reload_fasta(&mut self, path: &str) -> io::Result<Json> {
        self.request(&Request::Reload(ReloadRequest {
            store: None,
            fasta: Some(path.to_string()),
            verify: false,
        }))
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Request::Shutdown)
    }

    /// Extract the hits array from a result reply.
    pub fn hits(reply: &Json) -> Result<Vec<Hit>, String> {
        hits_from_json(reply.get("hits").ok_or("reply has no hits")?)
    }
}
