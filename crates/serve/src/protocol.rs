//! The daemon's wire vocabulary: newline-delimited JSON, one message per
//! line, same framing idiom as the master/slave protocol in
//! `swhybrid_core::net`.
//!
//! Client → server requests carry a `verb`:
//!
//! ```text
//! {"verb":"search","query":"MKVL…","top_n":10,"deadline_ms":5000,"tag":"q1","ack":true}
//! {"verb":"status","job":3}
//! {"verb":"cancel","job":3}
//! {"verb":"stats"}
//! {"verb":"reload","store":"/data/db.swdb","verify":true}
//! {"verb":"reload","fasta":"/data/db.fasta"}
//! {"verb":"shutdown"}
//! ```
//!
//! Server → client replies always carry `ok` and `type`. A `search` with
//! `"ack":true` gets an immediate `{"type":"ack","job":N}` (so the client
//! learns its job id for `status`/`cancel`) followed later by the result;
//! without `ack` the result line is the only reply. Results may arrive out
//! of order relative to other verbs on the same connection — `tag` and
//! `job` are the correlation handles.

use swhybrid_json::Json;
use swhybrid_simd::search::Hit;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a query.
    Search(SearchRequest),
    /// Ask about a submitted job.
    Status {
        /// The job id (from an ack or a result).
        job: u64,
    },
    /// Cancel a submitted job.
    Cancel {
        /// The job id.
        job: u64,
    },
    /// Snapshot the daemon's metrics.
    Stats,
    /// Atomically hot-swap the daemon onto a new database generation.
    Reload(ReloadRequest),
    /// Drain in-flight queries, reject new ones, exit.
    Shutdown,
}

/// The payload of a `reload` request: exactly one source.
#[derive(Debug, Clone, PartialEq)]
pub struct ReloadRequest {
    /// Path to a `.swdb` store file to map (server-side path).
    pub store: Option<String>,
    /// Path to a FASTA file to parse and encode (server-side path).
    pub fasta: Option<String>,
    /// For store loads: re-hash the arena checksum and db digest before
    /// swapping (the `--verify-store` semantics).
    pub verify: bool,
}

/// The payload of a `search` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// Query residues, ASCII (encoded server-side under the daemon's
    /// alphabet).
    pub query: String,
    /// Ranking depth.
    pub top_n: usize,
    /// Optional urgency: milliseconds from admission. Queued jobs are
    /// dispatched oldest-deadline-first.
    pub deadline_ms: Option<u64>,
    /// Opaque client correlation tag, echoed in the result.
    pub tag: Option<String>,
    /// Whether to send an immediate ack with the job id.
    pub ack: bool,
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let verb = json
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing \"verb\"")?;
    match verb {
        "search" => {
            let query = json
                .get("query")
                .and_then(Json::as_str)
                .ok_or("search: missing \"query\"")?
                .to_string();
            let top_n = match json.get("top_n") {
                None => 10,
                Some(v) => v
                    .as_u64()
                    .filter(|&n| n >= 1)
                    .ok_or("search: \"top_n\" must be a positive integer")?
                    as usize,
            };
            let deadline_ms = match json.get("deadline_ms") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("search: \"deadline_ms\" must be a non-negative integer")?,
                ),
            };
            let tag = json.get("tag").and_then(Json::as_str).map(str::to_string);
            let ack = json.get("ack").and_then(Json::as_bool).unwrap_or(false);
            Ok(Request::Search(SearchRequest {
                query,
                top_n,
                deadline_ms,
                tag,
                ack,
            }))
        }
        "status" | "cancel" => {
            let job = json
                .get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{verb}: missing \"job\""))?;
            Ok(if verb == "status" {
                Request::Status { job }
            } else {
                Request::Cancel { job }
            })
        }
        "stats" => Ok(Request::Stats),
        "reload" => {
            let store = json.get("store").and_then(Json::as_str).map(str::to_string);
            let fasta = json.get("fasta").and_then(Json::as_str).map(str::to_string);
            if store.is_some() == fasta.is_some() {
                return Err("reload: exactly one of \"store\" or \"fasta\" required".into());
            }
            let verify = json.get("verify").and_then(Json::as_bool).unwrap_or(false);
            Ok(Request::Reload(ReloadRequest {
                store,
                fasta,
                verify,
            }))
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Serialize a request (the client side of [`parse_request`]).
pub fn request_to_json(req: &Request) -> Json {
    match req {
        Request::Search(s) => {
            let mut fields = vec![
                ("verb".to_string(), Json::str("search")),
                ("query".to_string(), Json::str(&s.query)),
                ("top_n".to_string(), Json::Num(s.top_n as f64)),
            ];
            if let Some(d) = s.deadline_ms {
                fields.push(("deadline_ms".to_string(), Json::Num(d as f64)));
            }
            if let Some(t) = &s.tag {
                fields.push(("tag".to_string(), Json::str(t)));
            }
            if s.ack {
                fields.push(("ack".to_string(), Json::Bool(true)));
            }
            Json::Obj(fields)
        }
        Request::Status { job } => Json::obj(vec![
            ("verb", Json::str("status")),
            ("job", Json::Num(*job as f64)),
        ]),
        Request::Cancel { job } => Json::obj(vec![
            ("verb", Json::str("cancel")),
            ("job", Json::Num(*job as f64)),
        ]),
        Request::Stats => Json::obj(vec![("verb", Json::str("stats"))]),
        Request::Reload(r) => {
            let mut fields = vec![("verb".to_string(), Json::str("reload"))];
            if let Some(p) = &r.store {
                fields.push(("store".to_string(), Json::str(p)));
            }
            if let Some(p) = &r.fasta {
                fields.push(("fasta".to_string(), Json::str(p)));
            }
            if r.verify {
                fields.push(("verify".to_string(), Json::Bool(true)));
            }
            Json::Obj(fields)
        }
        Request::Shutdown => Json::obj(vec![("verb", Json::str("shutdown"))]),
    }
}

/// Serialize ranked hits as the wire's hit array.
pub fn hits_to_json(hits: &[Hit]) -> Json {
    Json::Arr(
        hits.iter()
            .enumerate()
            .map(|(rank, h)| {
                Json::obj(vec![
                    ("rank", Json::Num((rank + 1) as f64)),
                    ("db_index", Json::Num(h.db_index as f64)),
                    ("id", Json::str(&h.id)),
                    ("score", Json::Num(h.score as f64)),
                    ("len", Json::Num(h.subject_len as f64)),
                ])
            })
            .collect(),
    )
}

/// Parse a wire hit array back into [`Hit`]s (the client side of
/// [`hits_to_json`]).
pub fn hits_from_json(json: &Json) -> Result<Vec<Hit>, String> {
    json.as_array()
        .ok_or("hits is not an array")?
        .iter()
        .map(|h| {
            Ok(Hit {
                db_index: h
                    .get("db_index")
                    .and_then(Json::as_u64)
                    .ok_or("hit: missing db_index")? as usize,
                id: h
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("hit: missing id")?
                    .to_string(),
                score: h
                    .get("score")
                    .and_then(Json::as_i64)
                    .ok_or("hit: missing score")? as i32,
                subject_len: h
                    .get("len")
                    .and_then(Json::as_u64)
                    .ok_or("hit: missing len")? as usize,
            })
        })
        .collect()
}

/// Build an error reply.
pub fn error_reply(kind: &str, code: &str, reason: &str, tag: Option<&str>) -> Json {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("type".to_string(), Json::str(kind)),
        ("error".to_string(), Json::str(code)),
        ("reason".to_string(), Json::str(reason)),
    ];
    if let Some(t) = tag {
        fields.push(("tag".to_string(), Json::str(t)));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_request_round_trips() {
        let req = Request::Search(SearchRequest {
            query: "MKVLAW".into(),
            top_n: 7,
            deadline_ms: Some(2500),
            tag: Some("q1".into()),
            ack: true,
        });
        let line = request_to_json(&req).to_string();
        assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn search_defaults_apply() {
        let req = parse_request(r#"{"verb":"search","query":"ACD"}"#).unwrap();
        let Request::Search(s) = req else {
            panic!("not a search")
        };
        assert_eq!(s.top_n, 10);
        assert_eq!(s.deadline_ms, None);
        assert!(!s.ack);
    }

    #[test]
    fn control_verbs_round_trip() {
        for req in [
            Request::Status { job: 3 },
            Request::Cancel { job: 9 },
            Request::Stats,
            Request::Shutdown,
        ] {
            let line = request_to_json(&req).to_string();
            assert_eq!(parse_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"query":"ACD"}"#).is_err());
        assert!(parse_request(r#"{"verb":"explode"}"#).is_err());
        assert!(parse_request(r#"{"verb":"search"}"#).is_err());
        assert!(parse_request(r#"{"verb":"search","query":"A","top_n":0}"#).is_err());
        assert!(parse_request(r#"{"verb":"cancel"}"#).is_err());
    }

    #[test]
    fn reload_round_trips_and_demands_one_source() {
        for req in [
            Request::Reload(ReloadRequest {
                store: Some("/data/db.swdb".into()),
                fasta: None,
                verify: true,
            }),
            Request::Reload(ReloadRequest {
                store: None,
                fasta: Some("db.fasta".into()),
                verify: false,
            }),
        ] {
            let line = request_to_json(&req).to_string();
            assert_eq!(parse_request(&line).unwrap(), req);
        }
        // No source, or both sources, is malformed.
        assert!(parse_request(r#"{"verb":"reload"}"#).is_err());
        assert!(parse_request(r#"{"verb":"reload","store":"a","fasta":"b"}"#).is_err());
    }

    #[test]
    fn hits_round_trip() {
        let hits = vec![
            Hit {
                db_index: 4,
                id: "s4".into(),
                score: 99,
                subject_len: 120,
            },
            Hit {
                db_index: 0,
                id: "s0".into(),
                score: 42,
                subject_len: 50,
            },
        ];
        let back = hits_from_json(&hits_to_json(&hits)).unwrap();
        assert_eq!(back, hits);
    }

    #[test]
    fn error_reply_shape() {
        let e = error_reply("search", "queue_full", "admission queue full", Some("t"));
        assert!(!e.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(e.get("error").unwrap().as_str().unwrap(), "queue_full");
        assert_eq!(e.get("tag").unwrap().as_str().unwrap(), "t");
    }
}
