//! `swhybrid-serve` — a persistent query service on top of the master/slave
//! task execution environment.
//!
//! The paper's environment is batch-shaped: the master "allocates the tasks
//! to the slave PEs" for one workload and exits. This crate turns that
//! runtime into a long-running daemon for server-side traffic:
//!
//! * [`service`] — the query engine: a persistent [`swhybrid_core::master::Master`]
//!   in keep-alive mode fed multi-batch workloads, one task per database
//!   shard, executed by long-lived PE worker threads,
//! * [`admission`] — a bounded admission queue with per-client in-flight
//!   limits and oldest-deadline-first dispatch (backpressure, not OOM),
//! * [`cache`] — an LRU result cache keyed by `(query digest, db
//!   generation, scoring, top-N)` so repeated queries skip the scan,
//! * [`metrics`] — latency histogram, queue/cache counters, and per-PE
//!   GCUPS folded from the master's [`swhybrid_core::trace::RuntimeEvent`]
//!   stream,
//! * [`protocol`] — the newline-delimited JSON wire vocabulary
//!   (`search` / `status` / `cancel` / `stats` / `reload` / `shutdown`),
//! * [`server`] — the TCP daemon (`swhybrid serve`),
//! * [`client`] — a blocking line-protocol client (`swhybrid query`).
//!
//! Ranking determinism: every query is split into database shards, each
//! shard scanned as one task (possibly replicated under the workload
//! adjustment mechanism), and the per-shard top-N lists merged with
//! [`swhybrid_simd::search::merge_top_n`] — bit-identical to a
//! single-process scan of the whole database.

pub mod admission;
pub mod cache;
pub mod client;
pub mod metrics;
pub mod prepared;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CacheKey, ResultCache};
pub use client::ServeClient;
pub use server::ServeDaemon;
pub use service::{QueryService, SearchReply, ServiceConfig, SubmitError};
