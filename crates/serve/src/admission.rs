//! Admission control: the bounded queue between the TCP front end and the
//! task pool.
//!
//! A server that admits everything melts under load; one that admits
//! nothing past the worker count wastes its queue. The policy here is the
//! standard middle ground: a bounded queue (excess requests get an
//! immediate, well-formed rejection — backpressure, not a hang), a
//! per-client in-flight ceiling (one chatty client cannot starve the
//! rest), and **oldest-deadline-first** dispatch (a request that declared
//! urgency is scheduled before patient bulk work; ties fall back to
//! arrival order, so deadline-less traffic is plain FIFO).

use std::collections::HashMap;

/// Why a query was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The queue is at its depth bound.
    QueueFull {
        /// The configured bound.
        depth: usize,
    },
    /// The submitting client is at its in-flight ceiling.
    ClientLimit {
        /// The configured ceiling.
        limit: usize,
    },
    /// The daemon is draining for shutdown.
    Draining,
}

impl AdmitError {
    /// Stable machine-readable error code for the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue_full",
            AdmitError::ClientLimit { .. } => "client_limit",
            AdmitError::Draining => "draining",
        }
    }

    /// Human-readable rejection reason.
    pub fn reason(&self) -> String {
        match self {
            AdmitError::QueueFull { depth } => {
                format!("admission queue full ({depth} queued)")
            }
            AdmitError::ClientLimit { limit } => {
                format!("client at its in-flight limit ({limit})")
            }
            AdmitError::Draining => "daemon is draining for shutdown".into(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct QueuedJob {
    job: u64,
    /// Absolute deadline in service seconds; `INFINITY` when none given.
    deadline: f64,
    /// Arrival tiebreak.
    seq: u64,
}

/// The bounded, deadline-ordered admission queue. Tracks per-client
/// in-flight counts across the job's whole life (queued *and* running):
/// a client slot frees only when its job completes or is cancelled.
#[derive(Debug)]
pub struct AdmissionQueue {
    depth_limit: usize,
    per_client_limit: usize,
    queue: Vec<QueuedJob>,
    inflight: HashMap<u64, usize>,
    next_seq: u64,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
}

impl AdmissionQueue {
    /// Create a queue with the given bounds (both must be at least 1).
    pub fn new(depth_limit: usize, per_client_limit: usize) -> AdmissionQueue {
        assert!(depth_limit >= 1, "queue depth bound must be at least 1");
        assert!(per_client_limit >= 1, "per-client limit must be at least 1");
        AdmissionQueue {
            depth_limit,
            per_client_limit,
            queue: Vec::new(),
            inflight: HashMap::new(),
            next_seq: 0,
            max_depth: 0,
        }
    }

    /// Try to admit `job` for `client`. On success the job is queued and
    /// the client's in-flight count is charged.
    pub fn admit(&mut self, job: u64, client: u64, deadline: f64) -> Result<(), AdmitError> {
        let inflight = self.inflight.get(&client).copied().unwrap_or(0);
        if inflight >= self.per_client_limit {
            return Err(AdmitError::ClientLimit {
                limit: self.per_client_limit,
            });
        }
        if self.queue.len() >= self.depth_limit {
            return Err(AdmitError::QueueFull {
                depth: self.depth_limit,
            });
        }
        self.queue.push(QueuedJob {
            job,
            deadline,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        *self.inflight.entry(client).or_insert(0) += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
        Ok(())
    }

    /// Pop the most urgent queued job: smallest deadline, ties by arrival.
    /// Does NOT release the client slot — the job is now running.
    pub fn pop_next(&mut self) -> Option<u64> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.deadline
                    .partial_cmp(&b.deadline)
                    .expect("deadlines are not NaN")
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)?;
        Some(self.queue.swap_remove(best).job)
    }

    /// Remove a still-queued job (cancellation). Returns whether it was
    /// queued; the caller must [`AdmissionQueue::release`] the client slot.
    pub fn remove(&mut self, job: u64) -> bool {
        match self.queue.iter().position(|q| q.job == job) {
            Some(i) => {
                self.queue.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Free one in-flight slot of `client` (its job completed or was
    /// cancelled).
    pub fn release(&mut self, client: u64) {
        if let Some(n) = self.inflight.get_mut(&client) {
            *n -= 1;
            if *n == 0 {
                self.inflight.remove(&client);
            }
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch rank of a queued job (0 = next), if still queued.
    pub fn position(&self, job: u64) -> Option<usize> {
        let me = self.queue.iter().find(|q| q.job == job)?;
        Some(
            self.queue
                .iter()
                .filter(|q| (q.deadline, q.seq) < (me.deadline, me.seq))
                .count(),
        )
    }

    /// The configured depth bound.
    pub fn depth_limit(&self) -> usize {
        self.depth_limit
    }

    /// The configured per-client ceiling.
    pub fn per_client_limit(&self) -> usize {
        self.per_client_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_order_with_fifo_ties() {
        let mut q = AdmissionQueue::new(8, 8);
        q.admit(0, 1, f64::INFINITY).unwrap();
        q.admit(1, 1, 5.0).unwrap();
        q.admit(2, 1, 5.0).unwrap();
        q.admit(3, 1, 1.0).unwrap();
        assert_eq!(q.position(3), Some(0));
        assert_eq!(q.position(1), Some(1));
        assert_eq!(q.pop_next(), Some(3));
        assert_eq!(q.pop_next(), Some(1));
        assert_eq!(q.pop_next(), Some(2));
        assert_eq!(q.pop_next(), Some(0));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn depth_bound_rejects() {
        let mut q = AdmissionQueue::new(2, 8);
        q.admit(0, 1, 1.0).unwrap();
        q.admit(1, 1, 1.0).unwrap();
        assert_eq!(
            q.admit(2, 1, 1.0).unwrap_err(),
            AdmitError::QueueFull { depth: 2 }
        );
        assert_eq!(q.max_depth, 2);
    }

    #[test]
    fn client_limit_spans_queued_and_running() {
        let mut q = AdmissionQueue::new(8, 2);
        q.admit(0, 7, 1.0).unwrap();
        q.admit(1, 7, 1.0).unwrap();
        assert_eq!(
            q.admit(2, 7, 1.0).unwrap_err(),
            AdmitError::ClientLimit { limit: 2 }
        );
        // Popping (job starts running) does not free the slot…
        assert_eq!(q.pop_next(), Some(0));
        assert!(q.admit(2, 7, 1.0).is_err());
        // …completion does. Other clients were never blocked.
        q.release(7);
        q.admit(2, 7, 1.0).unwrap();
        q.admit(3, 8, 1.0).unwrap();
    }

    #[test]
    fn cancel_removes_from_queue() {
        let mut q = AdmissionQueue::new(8, 8);
        q.admit(0, 1, 1.0).unwrap();
        q.admit(1, 1, 2.0).unwrap();
        assert!(q.remove(0));
        assert!(!q.remove(0));
        q.release(1);
        assert_eq!(q.pop_next(), Some(1));
        assert_eq!(q.depth(), 0);
    }
}
