//! Multi-client soak of the daemon over real TCP: concurrent clients must
//! get byte-for-byte the answers a cold single-shot search gives, and
//! every backpressure rejection and cancellation must be a well-formed
//! protocol reply — never a hang or a dropped connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::{RngExt, SeedableRng};
use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_core::net::{run_serve_slave, NetConfig, PROTOCOL_VERSION};
use swhybrid_json::Json;
use swhybrid_seq::digest::db_digest;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::Alphabet;
use swhybrid_serve::protocol::{request_to_json, Request, SearchRequest};
use swhybrid_serve::service::ServiceConfig;
use swhybrid_serve::{ServeClient, ServeDaemon};
use swhybrid_simd::search::{DatabaseSearch, Hit, KernelChoice, SearchConfig};

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

fn random_db(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.random_range(1..max_len);
            EncodedSequence {
                id: format!("s{i}"),
                codes: (0..len).map(|_| rng.random_range(0..20u8)).collect(),
                alphabet: Alphabet::Protein,
            }
        })
        .collect()
}

/// ASCII protein residues (the wire carries text, not codes).
fn random_query_ascii(seed: u64, len: usize) -> String {
    const RESIDUES: &[u8] = b"ARNDCQEGHILKMFPSTWYV";
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| RESIDUES[rng.random_range(0..RESIDUES.len())] as char)
        .collect()
}

fn cold_hits(query_ascii: &str, db: &[EncodedSequence], top_n: usize) -> Vec<Hit> {
    let codes = Alphabet::Protein.encode(query_ascii.as_bytes()).unwrap();
    DatabaseSearch::new(
        &codes,
        &scoring(),
        SearchConfig {
            top_n,
            ..Default::default()
        },
    )
    .run(db)
    .hits
}

fn start_daemon(
    db: Vec<EncodedSequence>,
    config: ServiceConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let daemon = ServeDaemon::bind(("127.0.0.1", 0), db, scoring(), config).unwrap();
    let addr = daemon.local_addr().unwrap();
    (addr, std::thread::spawn(move || daemon.run()))
}

#[test]
fn eight_concurrent_clients_match_cold_single_shot_search() {
    const CLIENTS: usize = 8;
    const TOP_N: usize = 10;
    let db = random_db(101, 60, 90);
    let queries: Vec<String> = (0..6)
        .map(|i| random_query_ascii(200 + i, 30 + 7 * i as usize))
        .collect();
    let expected: Vec<Vec<Hit>> = queries.iter().map(|q| cold_hits(q, &db, TOP_N)).collect();

    let (addr, daemon) = start_daemon(
        db,
        ServiceConfig {
            workers: 3,
            max_active: 2,
            queue_depth: 64,
            per_client_inflight: 8,
            ..Default::default()
        },
    );

    let cached_replies: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).unwrap();
                    let mut cached = 0usize;
                    // Each client walks the query set at a different offset
                    // so the cache sees both misses and hits under load.
                    for k in 0..queries.len() {
                        let qi = (c + k) % queries.len();
                        let reply = client.search(&queries[qi], TOP_N).unwrap();
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "client {c} query {qi} rejected: {reply}"
                        );
                        let hits = ServeClient::hits(&reply).unwrap();
                        assert_eq!(
                            hits, expected[qi],
                            "client {c} query {qi}: served hits differ from cold scan"
                        );
                        if reply.get("cached").and_then(Json::as_bool) == Some(true) {
                            assert_eq!(
                                reply.get("cells").and_then(Json::as_u64),
                                Some(0),
                                "cache-served reply must not have burned kernel cells"
                            );
                            cached += 1;
                        }
                    }
                    cached
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    // 48 searches over 6 distinct queries: the cache must have answered
    // most of the repeats.
    assert!(
        cached_replies > 0,
        "no reply was served from the cache across {CLIENTS} clients"
    );

    let mut client = ServeClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let completed = stats
        .get("jobs")
        .and_then(|j| j.get("completed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(completed as usize, CLIENTS * queries.len());
    let cache_hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(cache_hits as usize, cached_replies);
    let latency_count = stats
        .get("latency_ms")
        .and_then(|l| l.get("count"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(latency_count, completed);
    // Per-PE GCUPS derived from the event stream: every worker is listed.
    let pes = stats.get("pes").and_then(Json::as_array).unwrap();
    assert_eq!(pes.len(), 3);
    let finished: u64 = pes
        .iter()
        .map(|p| p.get("tasks_finished").and_then(Json::as_u64).unwrap())
        .sum();
    assert!(finished > 0, "no PE reported finished tasks");

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

/// Concurrency soak with fusion on: four clients interleave submits and
/// cancels against a daemon that fuses co-queued queries into shared
/// shard tasks. Every completed job must be byte-identical to its
/// single-query cold scan — fusion may only change wall-clock, never the
/// answer — and every cancel must produce a well-formed pair of replies.
#[test]
fn four_clients_interleaving_submits_and_cancels_with_fusion_on() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 6;
    const TOP_N: usize = 8;
    let db = random_db(127, 50, 80);
    let queries: Vec<String> = (0..CLIENTS * ROUNDS)
        .map(|i| random_query_ascii(700 + i as u64, 24 + (i % 5) * 9))
        .collect();
    let expected: Vec<Vec<Hit>> = queries.iter().map(|q| cold_hits(q, &db, TOP_N)).collect();

    // Cache off so every completed query really went through (possibly
    // fused) shard scans; two group slots so queries queue and fuse.
    let (addr, daemon) = start_daemon(
        db,
        ServiceConfig {
            workers: 2,
            max_active: 2,
            fusion: 4,
            cache_capacity: 0,
            queue_depth: 64,
            per_client_inflight: 8,
            ..Default::default()
        },
    );

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for k in 0..ROUNDS {
                    let qi = c * ROUNDS + k;
                    if k % 3 == 2 {
                        // Interleaved cancel: ack gives the job id; the
                        // cancel reply and the job's single result line
                        // arrive in either order, both well formed.
                        let ack = client
                            .request(&Request::Search(SearchRequest {
                                query: queries[qi].clone(),
                                top_n: TOP_N,
                                deadline_ms: None,
                                tag: Some(format!("c{c}k{k}")),
                                ack: true,
                            }))
                            .unwrap();
                        assert_eq!(ack.get("type").and_then(Json::as_str), Some("ack"));
                        let job = ack.get("job").and_then(Json::as_u64).unwrap();
                        let first = client.cancel(job).unwrap();
                        let second = client.recv().unwrap();
                        let (mut cancel, mut result) = (None, None);
                        for line in [first, second] {
                            match line.get("type").and_then(Json::as_str) {
                                Some("cancel") => cancel = Some(line),
                                Some("result") => result = Some(line),
                                other => panic!("client {c}: unexpected reply {other:?}"),
                            }
                        }
                        let cancel = cancel.expect("cancel verb got no reply");
                        let result = result.expect("job never delivered a result");
                        let outcome = cancel.get("outcome").and_then(Json::as_str).unwrap();
                        if outcome == "cancelled" {
                            assert_eq!(result.get("cancelled").and_then(Json::as_bool), Some(true));
                            assert!(ServeClient::hits(&result).unwrap().is_empty());
                        } else {
                            // Raced to completion: the answer must still be
                            // the cold scan's.
                            assert_eq!(ServeClient::hits(&result).unwrap(), expected[qi]);
                        }
                    } else {
                        let reply = client.search(&queries[qi], TOP_N).unwrap();
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "client {c} round {k} rejected: {reply}"
                        );
                        assert_eq!(
                            ServeClient::hits(&reply).unwrap(),
                            expected[qi],
                            "client {c} round {k}: fused result differs from cold scan"
                        );
                    }
                }
            });
        }
    });

    // Fusion really engaged: shard tasks were shared by multiple queries.
    let mut client = ServeClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let fusion = stats.get("fusion").unwrap();
    let tasks = fusion.get("tasks").and_then(Json::as_u64).unwrap();
    let fused_queries = fusion.get("queries").and_then(Json::as_u64).unwrap();
    assert!(tasks > 0, "no shard tasks dispatched");
    assert!(
        fused_queries > tasks,
        "four concurrent clients never co-scheduled a fused group \
         ({fused_queries} query-slots over {tasks} tasks)"
    );

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn backpressure_and_cancellation_replies_are_well_formed() {
    // A single worker, a single admission slot per client, and a scan that
    // takes long enough that pipelined requests 2..5 arrive while request
    // 1 is still in flight: their rejections must be immediate, well
    // formed, and tagged. (Sizes stay modest — these tests run unoptimized,
    // where the kernel is orders of magnitude slower.)
    let db = random_db(103, 60, 120);
    let slow_query = random_query_ascii(301, 600);
    let (addr, daemon) = start_daemon(
        db,
        ServiceConfig {
            workers: 1,
            max_active: 1,
            queue_depth: 1,
            per_client_inflight: 1,
            cache_capacity: 0, // every search must really scan
            ..Default::default()
        },
    );

    // Pipeline 5 searches without reading a single reply.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for i in 0..5 {
        let req = Request::Search(SearchRequest {
            query: slow_query.clone(),
            top_n: 5,
            deadline_ms: None,
            tag: Some(format!("q{i}")),
            ack: false,
        });
        writeln!(writer, "{}", request_to_json(&req)).unwrap();
    }
    let mut results = 0usize;
    let mut rejections = 0usize;
    for _ in 0..5 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).unwrap();
        let tag = reply.get("tag").and_then(Json::as_str).unwrap();
        assert!(
            tag.starts_with('q'),
            "reply correlates to a request: {reply}"
        );
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            assert_eq!(reply.get("type").and_then(Json::as_str), Some("result"));
            results += 1;
        } else {
            let code = reply.get("error").and_then(Json::as_str).unwrap();
            assert!(
                code == "client_limit" || code == "queue_full",
                "unexpected rejection code {code:?}"
            );
            assert!(reply
                .get("reason")
                .and_then(Json::as_str)
                .is_some_and(|r| !r.is_empty()));
            rejections += 1;
        }
    }
    assert_eq!(
        results + rejections,
        5,
        "every request got exactly one reply"
    );
    assert!(rejections >= 1, "backpressure never triggered");
    assert!(results >= 1, "at least the first search must be admitted");

    // Cancellation: ack gives us the job id, cancel it, and both the
    // cancel reply and the (possibly already racing) result line must be
    // well formed.
    let mut client = ServeClient::connect(addr).unwrap();
    let req = Request::Search(SearchRequest {
        query: slow_query.clone(),
        top_n: 5,
        deadline_ms: None,
        tag: Some("victim".into()),
        ack: true,
    });
    let ack = client.request(&req).unwrap();
    assert_eq!(ack.get("type").and_then(Json::as_str), Some("ack"));
    let job = ack.get("job").and_then(Json::as_u64).unwrap();
    // After the cancel verb, exactly two more lines arrive in either
    // order: the cancel reply and the job's single result line (cancelled
    // or raced-to-completion).
    let first = client.cancel(job).unwrap();
    let second = client.recv().unwrap();
    let (mut cancel, mut result) = (None, None);
    for line in [first, second] {
        match line.get("type").and_then(Json::as_str) {
            Some("cancel") => cancel = Some(line),
            Some("result") => result = Some(line),
            other => panic!("unexpected reply type {other:?}: {line}"),
        }
    }
    let cancel = cancel.expect("cancel verb got no reply");
    let result = result.expect("the job never delivered its result");
    let outcome = cancel.get("outcome").and_then(Json::as_str).unwrap();
    assert!(outcome == "cancelled" || outcome == "already_done");
    if outcome == "cancelled" {
        assert_eq!(result.get("cancelled").and_then(Json::as_bool), Some(true));
        assert!(ServeClient::hits(&result).unwrap().is_empty());
    }
    // A cancelled-while-running job stays "running" until its in-flight
    // shards drain; poll briefly instead of assuming instant settlement.
    let mut state = String::new();
    for _ in 0..100 {
        let status = client.status(job).unwrap();
        state = status
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if state == "done" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(state, "done");

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

/// A hand-rolled wire slave that registers, asks for work, and hangs up
/// the moment it is handed a task — a process crash mid-query, as seen
/// from the daemon.
struct DoomedSlave {
    stream: TcpStream,
    writer: TcpStream,
    pending: Vec<u8>,
}

impl DoomedSlave {
    fn register(addr: std::net::SocketAddr, digest: u64) -> DoomedSlave {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        let mut slave = DoomedSlave {
            stream,
            writer,
            pending: Vec::new(),
        };
        writeln!(
            &mut slave.writer,
            "{{\"type\":\"register\",\"name\":\"doomed\",\"gcups\":1.0,\
             \"proto\":{PROTOCOL_VERSION},\"db_digest\":\"{digest:016x}\"}}"
        )
        .unwrap();
        let line = slave.read_line().expect("handshake reply");
        assert!(
            line.contains("\"registered\""),
            "daemon refused the slave: {line}"
        );
        writeln!(&mut slave.writer, "{{\"type\":\"request\"}}").unwrap();
        slave
    }

    /// Next protocol line; heartbeats are sent while waiting so the
    /// daemon's liveness deadline never fires prematurely.
    fn read_line(&mut self) -> Option<String> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop();
                return Some(String::from_utf8(line).unwrap());
            }
            let mut chunk = [0u8; 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    writeln!(&mut self.writer, "{{\"type\":\"heartbeat\"}}").ok();
                }
                Err(_) => return None,
            }
        }
    }

    /// Block until the daemon assigns a task, then die without a word.
    fn die_on_first_assignment(mut self) {
        while let Some(line) = self.read_line() {
            if line.contains("\"execute\"") || line.contains("\"tasks\"") {
                return; // drop both socket halves: a crash mid-assignment
            }
        }
    }
}

#[test]
fn hybrid_fleet_survives_a_remote_slave_dying_mid_query() {
    const TOP_N: usize = 10;
    let db = random_db(113, 60, 110);
    let queries: Vec<String> = (0..4)
        .map(|i| random_query_ascii(500 + i, 200 + 40 * i as usize))
        .collect();
    let expected: Vec<Vec<Hit>> = queries.iter().map(|q| cold_hits(q, &db, TOP_N)).collect();

    // Two local workers plus a slave listener; caching off so every query
    // really exercises the fleet, and enough shards per query that remote
    // slaves always have work to claim.
    let daemon = ServeDaemon::bind(
        ("127.0.0.1", 0),
        db.clone(),
        scoring(),
        ServiceConfig {
            workers: 2,
            shards: 6,
            cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr().unwrap();
    let slave_addr = daemon
        .listen_slaves(("127.0.0.1", 0), NetConfig::default())
        .unwrap();
    let daemon = std::thread::spawn(move || daemon.run());

    // A real serve-mode slave: full protocol, heartbeats, shard scans over
    // its own copy of the database. No reconnect budget — when the daemon
    // shuts down, the slave exits instead of retrying.
    let slave_db = db.clone();
    let slave = std::thread::spawn(move || {
        let net = NetConfig {
            reconnect_max_retries: 0,
            ..NetConfig::default()
        };
        run_serve_slave(
            slave_addr,
            "remote-a",
            1.0,
            &slave_db,
            &scoring(),
            KernelChoice::Auto,
            &net,
        )
    });

    let pe_count = |stats: &Json| {
        stats
            .get("pes")
            .and_then(Json::as_array)
            .map(|p| p.len())
            .unwrap_or(0)
    };
    let mut client = ServeClient::connect(addr).unwrap();
    for _ in 0..200 {
        if pe_count(&client.stats().unwrap()) >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        pe_count(&client.stats().unwrap()) >= 3,
        "remote-a never joined the pool"
    );

    // A second remote that will crash the moment it is handed a shard.
    let doomed = DoomedSlave::register(slave_addr, db_digest(&db));
    for _ in 0..200 {
        if pe_count(&client.stats().unwrap()) >= 4 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        pe_count(&client.stats().unwrap()) >= 4,
        "doomed slave never joined the pool"
    );

    // First query: the doomed slave takes a shard and dies mid-run; its
    // shard must requeue to the survivors and the merged hit table must
    // still be byte-identical to the cold scan.
    let ack = client
        .request(&Request::Search(SearchRequest {
            query: queries[0].clone(),
            top_n: TOP_N,
            deadline_ms: None,
            tag: None,
            ack: true,
        }))
        .unwrap();
    assert_eq!(ack.get("type").and_then(Json::as_str), Some("ack"));
    doomed.die_on_first_assignment();
    let result = client.recv().unwrap();
    assert_eq!(result.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(result.get("cancelled").and_then(Json::as_bool), Some(false));
    assert_eq!(
        ServeClient::hits(&result).unwrap(),
        expected[0],
        "query 0: hybrid fleet result differs from cold scan after slave death"
    );

    // The fleet keeps serving: local threads + the surviving remote.
    for (i, q) in queries.iter().enumerate().skip(1) {
        let reply = client.search(q, TOP_N).unwrap();
        assert_eq!(
            ServeClient::hits(&reply).unwrap(),
            expected[i],
            "query {i}: hybrid fleet result differs from cold scan"
        );
    }

    // The surviving remote really worked: its PE row reports completions.
    let stats = client.stats().unwrap();
    let pes = stats.get("pes").and_then(Json::as_array).unwrap();
    assert!(pes.len() >= 4, "stats must list locals and both remotes");
    let remote_finished = pes
        .iter()
        .filter(|p| p.get("name").and_then(Json::as_str) == Some("remote-a"))
        .map(|p| p.get("tasks_finished").and_then(Json::as_u64).unwrap())
        .sum::<u64>();
    assert!(
        remote_finished > 0,
        "remote-a never completed a shard across {} queries",
        queries.len()
    );

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    // The slave exits once the daemon is gone (cleanly via `done`, or with
    // an exhausted reconnect budget if the teardown race dropped it).
    let _ = slave.join().unwrap();
}

#[test]
fn shutdown_drains_inflight_queries_before_exit() {
    let db = random_db(107, 60, 120);
    let slow_query = random_query_ascii(401, 500);
    let expected = cold_hits(&slow_query, &db, 5);
    let (addr, daemon) = start_daemon(
        db,
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    );

    // Client A submits and does not read yet; client B orders shutdown.
    let mut a = ServeClient::connect(addr).unwrap();
    let submitted = a.request(&Request::Search(SearchRequest {
        query: slow_query.clone(),
        top_n: 5,
        deadline_ms: None,
        tag: None,
        ack: true,
    }));
    let ack = submitted.unwrap();
    assert_eq!(ack.get("type").and_then(Json::as_str), Some("ack"));

    let mut b = ServeClient::connect(addr).unwrap();
    let bye = b.shutdown().unwrap();
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));

    // The in-flight query still completes and reaches client A.
    let result = a.recv().unwrap();
    assert_eq!(result.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(result.get("cancelled").and_then(Json::as_bool), Some(false));
    assert_eq!(ServeClient::hits(&result).unwrap(), expected);

    daemon.join().unwrap().unwrap();
}
