//! Property tests of the fused-scan law the serve path relies on: scoring
//! a batch of queries in one shared database pass is **permutation
//! invariant** — each query's output (ranking, cell count, kernel usage)
//! depends only on the query and the database, never on who else rides in
//! the batch or in which order. This is what lets the dispatcher fuse and
//! regroup concurrent queries freely while staying byte-identical to
//! per-query cold scans.

use std::sync::Arc;

use proptest::prelude::*;
use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::{Alphabet, DbArena};
use swhybrid_simd::engine::PreparedQuery;
use swhybrid_simd::search::{search_arena, search_arena_multi, SearchConfig};

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

/// Alphabet codes 0..20 (the canonical protein residues).
fn codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn database(max_seqs: usize) -> impl Strategy<Value = Vec<EncodedSequence>> {
    prop::collection::vec(codes(50), 1..max_seqs).prop_map(|seqs| {
        seqs.into_iter()
            .enumerate()
            .map(|(i, codes)| EncodedSequence {
                id: format!("s{i}"),
                codes,
                alphabet: Alphabet::Protein,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fused_scoring_is_permutation_invariant_in_the_query_batch(
        db in database(20),
        queries in prop::collection::vec((codes(40), 1usize..10), 2..5),
        rotation in 0usize..4,
        reversed in prop::bool::ANY,
    ) {
        let s = scoring();
        let arena = DbArena::from_encoded(&db);
        let cfg = SearchConfig {
            chunk_size: 5,
            ..Default::default()
        };
        let batch: Vec<(Arc<PreparedQuery>, usize)> = queries
            .iter()
            .map(|(q, top_n)| {
                (Arc::new(PreparedQuery::new(q, &s, cfg.preference)), *top_n)
            })
            .collect();

        // Rotation + optional reversal reaches every cyclic/dihedral
        // rearrangement of the batch — enough to falsify any positional
        // dependence.
        let mut permuted = batch.clone();
        permuted.rotate_left(rotation % batch.len());
        if reversed {
            permuted.reverse();
        }
        let mut index: Vec<usize> = (0..batch.len()).collect();
        index.rotate_left(rotation % batch.len());
        if reversed {
            index.reverse();
        }

        let base = search_arena_multi(&batch, &arena, 0..arena.len(), &cfg);
        let perm = search_arena_multi(&permuted, &arena, 0..arena.len(), &cfg);
        prop_assert_eq!(base.len(), batch.len());
        for (slot, &orig) in index.iter().enumerate() {
            prop_assert_eq!(
                &perm[slot].scored, &base[orig].scored,
                "query {} ranked differently at batch slot {}", orig, slot
            );
            prop_assert_eq!(perm[slot].cells, base[orig].cells);
            prop_assert_eq!(perm[slot].stats.total(), base[orig].stats.total());
        }

        // And each batch slot equals the query's solo scan outright.
        for (k, (prepared, top_n)) in batch.iter().enumerate() {
            let solo_cfg = SearchConfig { top_n: *top_n, ..cfg };
            let solo = search_arena(prepared, &arena, 0..arena.len(), &solo_cfg);
            prop_assert_eq!(&base[k].scored, &solo.scored);
            prop_assert_eq!(base[k].cells, solo.cells);
        }
    }
}
