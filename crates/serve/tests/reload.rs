//! Hot-reload soak: the daemon must swap database generations atomically
//! while queries are in flight. Old-generation jobs finish on — and match
//! an oracle over — the old database; new-generation jobs match the new
//! one; no reply ever mixes the two. Every pre-reload cache entry is
//! unreachable after the swap, and a remote serve-slave is disconnected
//! by the reload and can only rejoin under the new database digest.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rand::{RngExt, SeedableRng};
use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_core::net::{run_serve_slave, NetConfig, PROTOCOL_VERSION};
use swhybrid_json::Json;
use swhybrid_seq::digest::db_digest;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::Alphabet;
use swhybrid_serve::service::ServiceConfig;
use swhybrid_serve::{ServeClient, ServeDaemon};
use swhybrid_simd::search::{DatabaseSearch, Hit, KernelChoice, SearchConfig};
use swhybrid_store::{build_store, Store};

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

fn random_db(seed: u64, n: usize, max_len: usize) -> Vec<EncodedSequence> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.random_range(1..max_len);
            EncodedSequence {
                id: format!("g{seed}-s{i}"),
                codes: (0..len).map(|_| rng.random_range(0..20u8)).collect(),
                alphabet: Alphabet::Protein,
            }
        })
        .collect()
}

fn random_query_ascii(seed: u64, len: usize) -> String {
    const RESIDUES: &[u8] = b"ARNDCQEGHILKMFPSTWYV";
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| RESIDUES[rng.random_range(0..RESIDUES.len())] as char)
        .collect()
}

fn cold_hits(query_ascii: &str, db: &[EncodedSequence], top_n: usize) -> Vec<Hit> {
    let codes = Alphabet::Protein.encode(query_ascii.as_bytes()).unwrap();
    DatabaseSearch::new(
        &codes,
        &scoring(),
        SearchConfig {
            top_n,
            ..Default::default()
        },
    )
    .run(db)
    .hits
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdb_reload_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn hot_reload_under_concurrent_load_is_atomic() {
    const CLIENTS: usize = 4;
    const TOP_N: usize = 8;
    let dir = tmp_dir("atomic");
    let db_a = random_db(11, 50, 90);
    let db_b = random_db(13, 55, 90);
    let path_a = dir.join("gen_a.swdb");
    let path_b = dir.join("gen_b.swdb");
    build_store(&path_a, "gen-a", &db_a).unwrap();
    build_store(&path_b, "gen-b", &db_b).unwrap();

    let queries: Vec<String> = (0..5)
        .map(|i| random_query_ascii(900 + i, 30 + 6 * i as usize))
        .collect();
    let oracle_a: Vec<Vec<Hit>> = queries.iter().map(|q| cold_hits(q, &db_a, TOP_N)).collect();
    let oracle_b: Vec<Vec<Hit>> = queries.iter().map(|q| cold_hits(q, &db_b, TOP_N)).collect();

    // The daemon boots from the mapped store — the serve --db-store path.
    let snapshot = Store::open_verified(&path_a)
        .unwrap()
        .into_snapshot()
        .unwrap();
    let daemon = ServeDaemon::bind_snapshot(
        ("127.0.0.1", 0),
        snapshot,
        scoring(),
        ServiceConfig {
            workers: 3,
            max_active: 2,
            per_client_inflight: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr().unwrap();
    let daemon = std::thread::spawn(move || daemon.run());

    // A boundary query only this thread uses: warmed into the generation-0
    // cache, so its post-reload miss proves the swap invalidated every
    // pre-reload entry.
    let boundary = random_query_ascii(999, 44);
    let mut main_client = ServeClient::connect(addr).unwrap();
    let cold = main_client.search(&boundary, TOP_N).unwrap();
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(cold.get("generation").and_then(Json::as_u64), Some(0));
    assert_eq!(
        ServeClient::hits(&cold).unwrap(),
        cold_hits(&boundary, &db_a, TOP_N)
    );
    let warm = main_client.search(&boundary, TOP_N).unwrap();
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));

    // Concurrent clients hammer the query set while the reload lands.
    let reloaded = AtomicBool::new(false);
    let (gen0_seen, gen1_seen) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS as u64)
            .map(|c| {
                let queries = &queries;
                let oracle_a = &oracle_a;
                let oracle_b = &oracle_b;
                let reloaded = &reloaded;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).unwrap();
                    let (mut g0, mut g1) = (0usize, 0usize);
                    for k in 0..400 {
                        let qi = ((c as usize) + k) % queries.len();
                        let reply = client.search(&queries[qi], TOP_N).unwrap();
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "client {c} iteration {k} rejected: {reply}"
                        );
                        let generation = reply.get("generation").and_then(Json::as_u64).unwrap();
                        let hits = ServeClient::hits(&reply).unwrap();
                        // The atomicity law: a reply's hits belong entirely
                        // to the generation it reports — never a mixture.
                        match generation {
                            0 => {
                                g0 += 1;
                                assert_eq!(
                                    hits, oracle_a[qi],
                                    "client {c}: generation-0 reply differs from old-db oracle"
                                );
                            }
                            1 => {
                                g1 += 1;
                                assert_eq!(
                                    hits, oracle_b[qi],
                                    "client {c}: generation-1 reply differs from new-db oracle"
                                );
                            }
                            other => panic!("client {c}: impossible generation {other}"),
                        }
                        if reply.get("cached").and_then(Json::as_bool) == Some(true) {
                            assert_eq!(reply.get("cells").and_then(Json::as_u64), Some(0));
                        }
                        // Keep querying until the swap has landed and this
                        // client has seen the new generation a few times.
                        if reloaded.load(Ordering::SeqCst) && g1 >= 3 {
                            break;
                        }
                    }
                    (g0, g1)
                })
            })
            .collect();

        // Let the clients build up in-flight generation-0 work, then swap.
        std::thread::sleep(Duration::from_millis(40));
        let reply = main_client
            .reload_store(path_b.to_str().unwrap(), true)
            .unwrap();
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "{reply}"
        );
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("reload"));
        assert_eq!(reply.get("source").and_then(Json::as_str), Some("store"));
        assert_eq!(reply.get("name").and_then(Json::as_str), Some("gen-b"));
        assert_eq!(reply.get("generation").and_then(Json::as_u64), Some(1));
        assert_eq!(
            reply.get("sequences").and_then(Json::as_u64),
            Some(db_b.len() as u64)
        );
        assert_eq!(
            reply.get("digest").and_then(Json::as_str),
            Some(format!("{:016x}", db_digest(&db_b)).as_str())
        );
        reloaded.store(true, Ordering::SeqCst);

        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(a0, a1), (g0, g1)| (a0 + g0, a1 + g1))
    });
    assert!(gen0_seen > 0, "no query ever ran against generation 0");
    assert!(gen1_seen > 0, "no query ever ran against generation 1");

    // The boundary query was cached under generation 0; after the reload
    // it must miss (and score against the new database).
    let after = main_client.search(&boundary, TOP_N).unwrap();
    assert_eq!(
        after.get("cached").and_then(Json::as_bool),
        Some(false),
        "a pre-reload cache entry survived the swap"
    );
    assert_eq!(after.get("generation").and_then(Json::as_u64), Some(1));
    assert_eq!(
        ServeClient::hits(&after).unwrap(),
        cold_hits(&boundary, &db_b, TOP_N)
    );

    // The daemon's stats agree on the new generation.
    let stats = main_client.stats().unwrap();
    let db = stats.get("db").unwrap();
    assert_eq!(db.get("generation").and_then(Json::as_u64), Some(1));
    assert_eq!(db.get("name").and_then(Json::as_str), Some("gen-b"));
    assert_eq!(
        db.get("digest").and_then(Json::as_str),
        Some(format!("{:016x}", db_digest(&db_b)).as_str())
    );
    assert_eq!(db.get("mapped").and_then(Json::as_bool), Some(true));

    main_client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Register over the raw wire with a digest and report whether the
/// handshake was accepted.
fn raw_register(addr: std::net::SocketAddr, digest: u64) -> String {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(
        writer,
        "{{\"type\":\"register\",\"name\":\"probe\",\"gcups\":1.0,\
         \"proto\":{PROTOCOL_VERSION},\"db_digest\":\"{digest:016x}\"}}"
    )
    .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line
}

#[test]
fn reload_disconnects_remote_slaves_until_they_hold_the_new_digest() {
    const TOP_N: usize = 10;
    let dir = tmp_dir("slaves");
    let db_a = random_db(21, 50, 100);
    let db_b = random_db(23, 50, 100);
    let path_b = dir.join("gen_b.swdb");
    build_store(&path_b, "gen-b", &db_b).unwrap();
    let queries: Vec<String> = (0..4)
        .map(|i| random_query_ascii(800 + i, 150 + 30 * i as usize))
        .collect();

    // Cache off and many shards so remote slaves always have work.
    let daemon = ServeDaemon::bind(
        ("127.0.0.1", 0),
        db_a.clone(),
        scoring(),
        ServiceConfig {
            workers: 2,
            shards: 6,
            cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr().unwrap();
    let slave_addr = daemon
        .listen_slaves(("127.0.0.1", 0), NetConfig::default())
        .unwrap();
    let daemon = std::thread::spawn(move || daemon.run());

    // A generation-0 slave joins with db_a's digest; no reconnect budget,
    // so the reload's disconnect makes it exit instead of flapping.
    let slave_db = db_a.clone();
    let slave_a = std::thread::spawn(move || {
        let net = NetConfig {
            reconnect_max_retries: 0,
            ..NetConfig::default()
        };
        run_serve_slave(
            slave_addr,
            "remote-old",
            1.0,
            &slave_db,
            &scoring(),
            KernelChoice::Auto,
            &net,
        )
    });
    let pe_named = |stats: &Json, name: &str| {
        stats
            .get("pes")
            .and_then(Json::as_array)
            .is_some_and(|pes| {
                pes.iter()
                    .any(|p| p.get("name").and_then(Json::as_str) == Some(name))
            })
    };
    let mut client = ServeClient::connect(addr).unwrap();
    for _ in 0..200 {
        if pe_named(&client.stats().unwrap(), "remote-old") {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        pe_named(&client.stats().unwrap(), "remote-old"),
        "remote-old never joined"
    );

    // A query served by the hybrid fleet matches the old-db oracle.
    let reply = client.search(&queries[0], TOP_N).unwrap();
    assert_eq!(
        ServeClient::hits(&reply).unwrap(),
        cold_hits(&queries[0], &db_a, TOP_N)
    );

    // Reload: the stale slave must be disconnected (it exits — no budget).
    let reload = client
        .reload_store(path_b.to_str().unwrap(), false)
        .unwrap();
    assert_eq!(
        reload.get("ok").and_then(Json::as_bool),
        Some(true),
        "{reload}"
    );
    assert_eq!(reload.get("generation").and_then(Json::as_u64), Some(1));
    let _ = slave_a.join().unwrap();

    // The wire proves the gate: the old digest is refused at registration,
    // the new digest is admitted.
    let refusal = raw_register(slave_addr, db_digest(&db_a));
    assert!(
        !refusal.contains("\"registered\""),
        "stale-digest slave was re-admitted: {refusal}"
    );
    let admitted = raw_register(slave_addr, db_digest(&db_b));
    assert!(
        admitted.contains("\"registered\""),
        "new-digest slave was refused: {admitted}"
    );

    // A real generation-1 slave rejoins under the new digest and serves.
    let slave_db = db_b.clone();
    let slave_b = std::thread::spawn(move || {
        let net = NetConfig {
            reconnect_max_retries: 0,
            ..NetConfig::default()
        };
        run_serve_slave(
            slave_addr,
            "remote-new",
            1.0,
            &slave_db,
            &scoring(),
            KernelChoice::Auto,
            &net,
        )
    });
    for _ in 0..200 {
        if pe_named(&client.stats().unwrap(), "remote-new") {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        pe_named(&client.stats().unwrap(), "remote-new"),
        "remote-new never joined after the reload"
    );
    for q in &queries {
        let reply = client.search(q, TOP_N).unwrap();
        assert_eq!(reply.get("generation").and_then(Json::as_u64), Some(1));
        assert_eq!(
            ServeClient::hits(&reply).unwrap(),
            cold_hits(q, &db_b, TOP_N),
            "post-reload hybrid result differs from new-db oracle"
        );
    }

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = slave_b.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
