//! Property tests of the prepared-query cache's crucial law: a cache hit
//! must be **byte-identical** to a cold profile build — same hits, same
//! cells, same kernel resolution counters — and a scoring change must miss.
//!
//! The lever that separates the two caches: `top_n` is part of the result
//! cache's key but *not* the prepared cache's. Submitting the same query at
//! a different depth therefore misses the result cache (a real scan runs)
//! while hitting the prepared cache — exactly the path under test.

use proptest::prelude::*;
use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::Alphabet;
use swhybrid_serve::prepared::{PreparedCache, PreparedKey};
use swhybrid_serve::service::{scoring_digest, QueryService, ServiceConfig};
use swhybrid_simd::engine::{EnginePreference, PreparedQuery};

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

/// Alphabet codes 0..20 (the canonical protein residues).
fn codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn database(max_seqs: usize) -> impl Strategy<Value = Vec<EncodedSequence>> {
    prop::collection::vec(codes(60), 2..max_seqs).prop_map(|seqs| {
        seqs.into_iter()
            .enumerate()
            .map(|(i, codes)| EncodedSequence {
                id: format!("s{i}"),
                codes,
                alphabet: Alphabet::Protein,
            })
            .collect()
    })
}

/// Kernel resolution counters from the `stats` verb, as comparable pairs.
fn kernel_counters(svc: &QueryService) -> Vec<(String, u64)> {
    let stats = svc.stats();
    let kernels = stats.get("kernels").unwrap();
    [
        "striped_i8",
        "striped_i16",
        "striped_scalar",
        "interseq_i8",
        "interseq_i16",
        "interseq_scalar",
        "chunks_striped",
        "chunks_interseq",
        "cells_computed",
    ]
    .iter()
    .map(|k| (k.to_string(), kernels.get(k).unwrap().as_u64().unwrap()))
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same query at a new depth: result cache misses (a full scan runs),
    /// prepared cache hits — and everything observable (hits, cells, the
    /// per-kernel resolution counters) equals a service that rebuilt the
    /// profile cold because its prepared cache is disabled.
    #[test]
    fn prepared_cache_hit_is_byte_identical_to_cold_build(
        db in database(16),
        query in codes(40),
        depth_a in 1usize..6,
        extra in 1usize..6,
    ) {
        let depth_b = depth_a + extra; // different depth ⇒ result-cache miss
        let cached = QueryService::new(
            db.clone(),
            scoring(),
            ServiceConfig { workers: 1, ..Default::default() },
        );
        let cold = QueryService::new(
            db.clone(),
            scoring(),
            ServiceConfig { workers: 1, prepared_capacity: 0, ..Default::default() },
        );

        let first_cached = cached.search_blocking(query.clone(), depth_a, 1).unwrap();
        let first_cold = cold.search_blocking(query.clone(), depth_a, 1).unwrap();
        let second_cached = cached.search_blocking(query.clone(), depth_b, 1).unwrap();
        let second_cold = cold.search_blocking(query.clone(), depth_b, 1).unwrap();

        // The second submission really exercised the scan path on both
        // services (not the result cache)…
        prop_assert!(!second_cached.cached);
        prop_assert!(!second_cold.cached);
        // …and really exercised the prepared cache on one of them.
        let pc = cached.stats().get("prepared_cache").unwrap().clone();
        prop_assert_eq!(pc.get("hits").unwrap().as_u64(), Some(1));
        prop_assert_eq!(pc.get("misses").unwrap().as_u64(), Some(1));
        let pc_cold = cold.stats().get("prepared_cache").unwrap().clone();
        prop_assert_eq!(pc_cold.get("hits").unwrap().as_u64(), Some(0));

        // Byte-identity: hits, cells, and the kernel counters across the
        // whole two-submission history agree exactly.
        prop_assert_eq!(&first_cached.hits, &first_cold.hits);
        prop_assert_eq!(&second_cached.hits, &second_cold.hits);
        prop_assert_eq!(first_cached.cells, first_cold.cells);
        prop_assert_eq!(second_cached.cells, second_cold.cells);
        prop_assert_eq!(kernel_counters(&cached), kernel_counters(&cold));

        cached.shutdown();
        cold.shutdown();
    }

    /// Changing the scoring scheme changes the digest, and a digest change
    /// is a different key: the old profile must not be served.
    #[test]
    fn scoring_change_misses_the_prepared_cache(
        query in codes(40),
        open_a in 1i32..=14,
        open_b in 1i32..=14,
        extend in 1i32..=4,
    ) {
        let open_b = if open_a == open_b { (open_b % 14) + 1 } else { open_b };
        let open_b = if open_a == open_b { (open_a % 14) + 1 } else { open_b };
        let scheme = |open| Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine { open, extend },
        };
        let digest_a = scoring_digest(&scheme(open_a));
        let digest_b = scoring_digest(&scheme(open_b));
        prop_assert!(digest_a != digest_b);

        let mut cache = PreparedCache::new(8);
        let key = |digest| PreparedKey {
            query_digest: 1,
            scoring_digest: digest,
            preference: EnginePreference::Auto,
        };
        let profile = std::sync::Arc::new(PreparedQuery::new(
            &query,
            &scheme(open_a),
            EnginePreference::Auto,
        ));
        cache.insert(key(digest_a), &query, profile);
        prop_assert!(cache.get(&key(digest_a), &query).is_some());
        prop_assert!(cache.get(&key(digest_b), &query).is_none());
    }
}
