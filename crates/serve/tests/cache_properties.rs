//! Property tests of the result cache's one crucial law: a cache hit is
//! **byte-identical** to the cold path, and anything that could change the
//! ranking (here: the database, via its generation) invalidates it.

use proptest::prelude::*;
use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::Alphabet;
use swhybrid_serve::protocol::hits_to_json;
use swhybrid_serve::service::{QueryService, ServiceConfig};
use swhybrid_simd::search::{DatabaseSearch, SearchConfig};

fn scoring() -> Scoring {
    Scoring {
        matrix: SubstMatrix::blosum62(),
        gap: GapModel::Affine {
            open: 10,
            extend: 2,
        },
    }
}

/// Alphabet codes 0..20 (the canonical protein residues).
fn codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn database(max_seqs: usize) -> impl Strategy<Value = Vec<EncodedSequence>> {
    prop::collection::vec(codes(60), 1..max_seqs).prop_map(|seqs| {
        seqs.into_iter()
            .enumerate()
            .map(|(i, codes)| EncodedSequence {
                id: format!("s{i}"),
                codes,
                alphabet: Alphabet::Protein,
            })
            .collect()
    })
}

fn cold_hits(
    query: &[u8],
    db: &[EncodedSequence],
    top_n: usize,
) -> Vec<swhybrid_simd::search::Hit> {
    DatabaseSearch::new(
        query,
        &scoring(),
        SearchConfig {
            top_n,
            ..Default::default()
        },
    )
    .run(db)
    .hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_hit_is_byte_identical_and_generation_bump_invalidates(
        db_a in database(16),
        db_b in database(16),
        query in codes(40),
        top_n in 1usize..12,
    ) {
        let svc = QueryService::new(
            db_a.clone(),
            scoring(),
            ServiceConfig { workers: 2, ..Default::default() },
        );

        // Cold: the service's sharded scan equals a single-shot search.
        let cold = svc.search_blocking(query.clone(), top_n, 1).unwrap();
        prop_assert!(!cold.cached);
        prop_assert_eq!(&cold.hits, &cold_hits(&query, &db_a, top_n));

        // Warm: served from cache, zero kernel cells, byte-identical wire
        // payload.
        let warm = svc.search_blocking(query.clone(), top_n, 1).unwrap();
        prop_assert!(warm.cached);
        prop_assert_eq!(warm.cells, 0);
        prop_assert_eq!(
            hits_to_json(&warm.hits).to_string().into_bytes(),
            hits_to_json(&cold.hits).to_string().into_bytes()
        );

        // Swap the database: the generation bump must force a rescan that
        // matches the new database's cold scan.
        svc.swap_db(db_b.clone());
        let after = svc.search_blocking(query.clone(), top_n, 1).unwrap();
        prop_assert!(!after.cached, "stale cache entry survived a db swap");
        prop_assert_eq!(&after.hits, &cold_hits(&query, &db_b, top_n));

        // And the new generation caches independently.
        let after_warm = svc.search_blocking(query, top_n, 1).unwrap();
        prop_assert!(after_warm.cached);
        prop_assert_eq!(&after_warm.hits, &after.hits);

        svc.shutdown();
    }
}
