//! The work unit and the device-model abstraction.
//!
//! In the paper's system "a task is defined to be the comparison of one
//! query sequence to one genomic database" (§IV) — the very coarse-grained
//! decomposition of Fig. 3c. A [`TaskSpec`] carries exactly the metadata a
//! performance model needs: query length and database size.

/// Immutable description of one task (query × whole database).
///
/// The serve path additionally emits *fused* tasks — up to K co-resident
/// queries scored against one database shard in a single pass. A fused
/// task sets `queries` to K and `query_len` to the *sum* of the fused
/// query lengths, so [`TaskSpec::cells`] naturally charges K× the cells of
/// one pass and the PSS speed estimates stay calibrated.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Stable task identifier (index into the query file).
    pub id: usize,
    /// Query residues scored against the database: one query's length for
    /// the paper's grain, the sum over the batch for a fused task.
    pub query_len: usize,
    /// Number of queries fused into this task (1 for the paper's grain).
    pub queries: usize,
    /// Total residues of the database the query is compared against.
    pub db_residues: u64,
    /// Number of sequences in the database (drives accelerator occupancy).
    pub db_sequences: usize,
}

impl TaskSpec {
    /// DP cells this task updates.
    #[inline]
    pub fn cells(&self) -> u64 {
        self.query_len as u64 * self.db_residues
    }

    /// Representative task used to derive a device's *static* GCUPS prior
    /// for registration (mid-size query, SwissProt-like database). Both
    /// the simulator and the real fleet builders quote a model's
    /// [`DeviceModel::task_gcups`] on this probe as its registration
    /// prior, so simulated and real hybrid fleets start from the same
    /// speed estimates.
    pub fn probe() -> TaskSpec {
        TaskSpec {
            id: usize::MAX,
            query_len: 2550,
            queries: 1,
            db_residues: 190_814_275,
            db_sequences: 537_505,
        }
    }
}

/// The kind of processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A GPU running (simulated) CUDASW++ 2.0.
    Gpu,
    /// One SSE core running the adapted Farrar kernel.
    SseCore,
    /// An FPGA accelerator (future-work extension).
    Fpga,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Gpu => write!(f, "GPU"),
            DeviceKind::SseCore => write!(f, "SSE"),
            DeviceKind::Fpga => write!(f, "FPGA"),
        }
    }
}

/// A processing element's performance model.
///
/// The model answers one question: *how long does this task take on a
/// dedicated machine?* — decomposed into a fixed startup part (process
/// launch, database transfer, reconfiguration, …) and a sustained
/// cell-update rate. Non-dedicated interference is layered on top by the
/// simulator via [`crate::load::LoadSchedule`].
pub trait DeviceModel: Send + Sync {
    /// Human-readable PE name, e.g. `"gpu0"`.
    fn name(&self) -> &str;

    /// What kind of PE this is.
    fn kind(&self) -> DeviceKind;

    /// Fixed per-task setup seconds.
    fn startup_seconds(&self, task: &TaskSpec) -> f64;

    /// Sustained cell-update rate (cells/second) for this task on a
    /// dedicated machine.
    fn rate(&self, task: &TaskSpec) -> f64;

    /// Total dedicated-machine seconds for the task.
    fn task_seconds(&self, task: &TaskSpec) -> f64 {
        self.startup_seconds(task) + task.cells() as f64 / self.rate(task)
    }

    /// Effective GCUPS achieved on this task (including startup overhead).
    fn task_gcups(&self, task: &TaskSpec) -> f64 {
        let secs = self.task_seconds(task);
        if secs <= 0.0 {
            0.0
        } else {
            task.cells() as f64 / secs / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl DeviceModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn kind(&self) -> DeviceKind {
            DeviceKind::SseCore
        }
        fn startup_seconds(&self, _t: &TaskSpec) -> f64 {
            1.0
        }
        fn rate(&self, _t: &TaskSpec) -> f64 {
            1e9
        }
    }

    fn task() -> TaskSpec {
        TaskSpec {
            id: 0,
            query_len: 1000,
            queries: 1,
            db_residues: 2_000_000,
            db_sequences: 100,
        }
    }

    #[test]
    fn cells_is_product() {
        assert_eq!(task().cells(), 2_000_000_000);
    }

    #[test]
    fn default_task_seconds_composition() {
        let d = Fixed;
        let t = task();
        // 1 s startup + 2e9 cells / 1e9 cells/s = 3 s.
        assert!((d.task_seconds(&t) - 3.0).abs() < 1e-12);
        // Effective rate: 2e9 cells in 3 s = 0.667 GCUPS.
        assert!((d.task_gcups(&t) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn kind_display() {
        assert_eq!(DeviceKind::Gpu.to_string(), "GPU");
        assert_eq!(DeviceKind::SseCore.to_string(), "SSE");
        assert_eq!(DeviceKind::Fpga.to_string(), "FPGA");
    }
}
