//! External-load schedules for non-dedicated platforms.
//!
//! The paper's §V-C evaluates PSS on a non-dedicated machine by starting the
//! compute-bound `superpi` benchmark on core 0 after 60 s: that core's GCUPS
//! drops to "less than a half". A [`LoadSchedule`] is the simulation-side
//! equivalent: a step function of throughput multipliers over (virtual)
//! time. The simulator multiplies a PE's dedicated rate by the schedule to
//! obtain its momentary effective rate, and integrates across steps to
//! compute completion times.

/// A piecewise-constant throughput multiplier over time.
///
/// Each entry `(t, m)` means "from time `t` onwards the PE runs at `m` × its
/// dedicated rate". Times are strictly increasing; the multiplier before the
/// first entry is 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSchedule {
    steps: Vec<(f64, f64)>,
}

impl Default for LoadSchedule {
    fn default() -> Self {
        LoadSchedule::dedicated()
    }
}

impl LoadSchedule {
    /// No external load, ever.
    pub fn dedicated() -> LoadSchedule {
        LoadSchedule { steps: Vec::new() }
    }

    /// Build from explicit steps.
    ///
    /// # Panics
    /// Panics on non-increasing times or non-positive multipliers.
    pub fn from_steps(steps: Vec<(f64, f64)>) -> LoadSchedule {
        let mut prev = f64::NEG_INFINITY;
        for &(t, m) in &steps {
            assert!(t > prev, "step times must be strictly increasing");
            assert!(m > 0.0, "multiplier must be positive (got {m})");
            prev = t;
        }
        LoadSchedule { steps }
    }

    /// The paper's §V-C scenario: full speed until `at`, then `multiplier`.
    pub fn step_at(at: f64, multiplier: f64) -> LoadSchedule {
        LoadSchedule::from_steps(vec![(at, multiplier)])
    }

    /// The multiplier in effect at time `t`.
    pub fn multiplier_at(&self, t: f64) -> f64 {
        let mut m = 1.0;
        for &(start, mult) in &self.steps {
            if t >= start {
                m = mult;
            } else {
                break;
            }
        }
        m
    }

    /// Times at which the multiplier changes within `(from, to]`.
    pub fn changes_within(&self, from: f64, to: f64) -> Vec<f64> {
        self.steps
            .iter()
            .map(|&(t, _)| t)
            .filter(|&t| t > from && t <= to)
            .collect()
    }

    /// The next change strictly after `t`, if any.
    pub fn next_change_after(&self, t: f64) -> Option<f64> {
        self.steps.iter().map(|&(s, _)| s).find(|&s| s > t)
    }

    /// Work units completed between `from` and `to` at a dedicated rate of
    /// `rate` units/second under this schedule.
    pub fn work_done(&self, from: f64, to: f64, rate: f64) -> f64 {
        assert!(to >= from, "interval must be forward");
        let mut done = 0.0;
        let mut t = from;
        while t < to {
            let seg_end = self.next_change_after(t).filter(|&c| c < to).unwrap_or(to);
            done += (seg_end - t) * rate * self.multiplier_at(t);
            t = seg_end;
        }
        done
    }

    /// Time at which `work` units complete, starting at `from` with a
    /// dedicated rate of `rate` units/second.
    pub fn finish_time(&self, from: f64, work: f64, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        if work <= 0.0 {
            return from;
        }
        let mut t = from;
        let mut remaining = work;
        loop {
            let m = self.multiplier_at(t);
            let seg_rate = rate * m;
            match self.next_change_after(t) {
                Some(change) => {
                    let seg_capacity = (change - t) * seg_rate;
                    if seg_capacity >= remaining {
                        return t + remaining / seg_rate;
                    }
                    remaining -= seg_capacity;
                    t = change;
                }
                None => return t + remaining / seg_rate,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_is_identity() {
        let l = LoadSchedule::dedicated();
        assert_eq!(l.multiplier_at(0.0), 1.0);
        assert_eq!(l.multiplier_at(1e9), 1.0);
        assert!((l.finish_time(5.0, 10.0, 2.0) - 10.0).abs() < 1e-12);
        assert!((l.work_done(0.0, 4.0, 3.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn step_at_halves_rate() {
        let l = LoadSchedule::step_at(60.0, 0.5);
        assert_eq!(l.multiplier_at(59.9), 1.0);
        assert_eq!(l.multiplier_at(60.0), 0.5);
        // 100 units at rate 1 starting at t=0: 60 done by t=60, remaining
        // 40 at half speed takes 80 s → finish at 140.
        assert!((l.finish_time(0.0, 100.0, 1.0) - 140.0).abs() < 1e-9);
    }

    #[test]
    fn finish_before_step_is_unaffected() {
        let l = LoadSchedule::step_at(60.0, 0.5);
        assert!((l.finish_time(0.0, 30.0, 1.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn work_done_integrates_across_steps() {
        let l = LoadSchedule::from_steps(vec![(10.0, 0.5), (20.0, 2.0)]);
        // [0,10): ×1 → 10; [10,20): ×0.5 → 5; [20,30): ×2 → 20. Total 35.
        assert!((l.work_done(0.0, 30.0, 1.0) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn work_done_and_finish_time_are_inverse() {
        let l = LoadSchedule::from_steps(vec![(3.0, 0.25), (9.0, 1.5)]);
        for &(from, work, rate) in &[(0.0, 7.0, 1.3), (2.5, 20.0, 0.7), (10.0, 4.0, 2.0)] {
            let end = l.finish_time(from, work, rate);
            let back = l.work_done(from, end, rate);
            assert!((back - work).abs() < 1e-9, "work {work} → {back}");
        }
    }

    #[test]
    fn changes_within_window() {
        let l = LoadSchedule::from_steps(vec![(5.0, 0.5), (15.0, 1.0)]);
        assert_eq!(l.changes_within(0.0, 10.0), vec![5.0]);
        assert_eq!(l.changes_within(5.0, 20.0), vec![15.0]);
        assert!(l.changes_within(16.0, 30.0).is_empty());
        assert_eq!(l.next_change_after(5.0), Some(15.0));
        assert_eq!(l.next_change_after(15.0), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_steps_rejected() {
        LoadSchedule::from_steps(vec![(5.0, 0.5), (5.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn zero_multiplier_rejected() {
        LoadSchedule::from_steps(vec![(5.0, 0.0)]);
    }
}
