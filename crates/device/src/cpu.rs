//! The SSE-core device.
//!
//! The paper treats *each SSE core* as an individual slave PE ("4 GPUs + 4
//! Intel SSE cores"; Figs. 7/8 plot per-core GCUPS), so this device models a
//! single core running the adapted Farrar kernel of `swhybrid-simd`.

use crate::perfmodel::PerfModel;
use crate::task::{DeviceKind, DeviceModel, TaskSpec};

/// One SSE core running the adapted Farrar striped kernel.
#[derive(Debug, Clone)]
pub struct CpuSseDevice {
    name: String,
    model: PerfModel,
}

impl CpuSseDevice {
    /// A Core i7-class SSE core with the default calibration.
    pub fn i7_core(name: impl Into<String>) -> CpuSseDevice {
        CpuSseDevice {
            name: name.into(),
            model: PerfModel::sse_core(),
        }
    }

    /// A core with a custom model (for ablations and the Fig. 5 worked
    /// example, where the GPU is exactly 6× the SSE core).
    pub fn with_model(name: impl Into<String>, model: PerfModel) -> CpuSseDevice {
        CpuSseDevice {
            name: name.into(),
            model,
        }
    }

    /// The underlying performance model.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }
}

impl DeviceModel for CpuSseDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::SseCore
    }

    fn startup_seconds(&self, task: &TaskSpec) -> f64 {
        self.model.startup(task.db_residues)
    }

    fn rate(&self, task: &TaskSpec) -> f64 {
        self.model.effective_rate(task.query_len, task.db_sequences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_rate_close_to_calibrated_peak_for_long_queries() {
        let core = CpuSseDevice::i7_core("sse0");
        let t = TaskSpec {
            id: 0,
            query_len: 5000,
            queries: 1,
            db_residues: 190_814_275,
            db_sequences: 537_505,
        };
        let gcups = core.task_gcups(&t);
        assert!((2.4..2.8).contains(&gcups), "gcups = {gcups}");
        // A 5,000-aa query against SwissProt on one core takes ~6 minutes —
        // this is the "slow node got a big last task" hazard of §IV-A-3.
        let secs = core.task_seconds(&t);
        assert!((300.0..420.0).contains(&secs), "secs = {secs}");
    }

    #[test]
    fn startup_is_negligible() {
        let core = CpuSseDevice::i7_core("sse0");
        let t = TaskSpec {
            id: 0,
            query_len: 100,
            queries: 1,
            db_residues: 12_400_000,
            db_sequences: 25_160,
        };
        assert!(core.startup_seconds(&t) < 0.1);
        assert_eq!(core.kind(), DeviceKind::SseCore);
    }
}
