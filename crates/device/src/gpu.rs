//! The simulated CUDASW++ 2.0 GPU device.
//!
//! The paper encapsulates the *unmodified* CUDASW++ 2.0 binary: each task is
//! one program invocation comparing one query against the whole database
//! (§IV-C). This device reproduces that behaviour: a per-invocation startup
//! (process launch + CUDA context + database transfer) followed by a scan at
//! the model's effective rate. CUDASW++ 2.0 internally partitions the
//! database by length — short subjects go to the *inter-task* kernel
//! (virtualised SIMD across subjects), long ones to the *intra-task* kernel
//! — which is the physical reason for the query-length and occupancy ramps
//! in the model; [`GpuDevice::kernel_split`] exposes that partition for the
//! ablation benches.

use crate::perfmodel::PerfModel;
use crate::task::{DeviceKind, DeviceModel, TaskSpec};

/// Subject-length threshold between CUDASW++ 2.0's inter-task and
/// intra-task kernels (Liu et al. 2010 use 3,072).
pub const INTER_INTRA_THRESHOLD: usize = 3072;

/// A simulated GPU running CUDASW++ 2.0.
///
/// ```
/// use swhybrid_device::gpu::GpuDevice;
/// use swhybrid_device::task::{DeviceModel, TaskSpec};
///
/// let gpu = GpuDevice::gtx580("gpu0");
/// let task = TaskSpec {
///     id: 0,
///     query_len: 5000,
///     queries: 1,
///     db_residues: 190_814_275, // SwissProt
///     db_sequences: 537_505,
/// };
/// // A 5,000-aa query against SwissProt takes ~30 s on one GTX 580.
/// assert!((25.0..40.0).contains(&gpu.task_seconds(&task)));
/// ```
#[derive(Debug, Clone)]
pub struct GpuDevice {
    name: String,
    model: PerfModel,
}

impl GpuDevice {
    /// A GTX 580 with the default calibration.
    pub fn gtx580(name: impl Into<String>) -> GpuDevice {
        GpuDevice {
            name: name.into(),
            model: PerfModel::gtx580_cudasw(),
        }
    }

    /// A GPU with a custom model (for ablations).
    pub fn with_model(name: impl Into<String>, model: PerfModel) -> GpuDevice {
        GpuDevice {
            name: name.into(),
            model,
        }
    }

    /// The underlying performance model.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// How CUDASW++ 2.0 would split a database with the given sequence
    /// lengths: `(inter_task_count, intra_task_count)`.
    pub fn kernel_split(subject_lengths: impl IntoIterator<Item = usize>) -> (usize, usize) {
        let mut inter = 0;
        let mut intra = 0;
        for len in subject_lengths {
            if len <= INTER_INTRA_THRESHOLD {
                inter += 1;
            } else {
                intra += 1;
            }
        }
        (inter, intra)
    }
}

impl DeviceModel for GpuDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Gpu
    }

    fn startup_seconds(&self, task: &TaskSpec) -> f64 {
        self.model.startup(task.db_residues)
    }

    fn rate(&self, task: &TaskSpec) -> f64 {
        self.model.effective_rate(task.query_len, task.db_sequences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swissprot_task(query_len: usize) -> TaskSpec {
        TaskSpec {
            id: 0,
            query_len,
            queries: 1,
            db_residues: 190_814_275,
            db_sequences: 537_505,
        }
    }

    #[test]
    fn long_query_swissprot_task_time_plausible() {
        // 5,000-aa query × SwissProt ≈ 9.5e11 cells; at ≈ 30 effective
        // GCUPS that is ~31 s + startup.
        let gpu = GpuDevice::gtx580("gpu0");
        let t = swissprot_task(5000);
        let secs = gpu.task_seconds(&t);
        assert!((25.0..40.0).contains(&secs), "secs = {secs}");
        assert!(gpu.task_gcups(&t) > 25.0);
    }

    #[test]
    fn short_queries_get_lower_gcups() {
        let gpu = GpuDevice::gtx580("gpu0");
        let short = gpu.task_gcups(&swissprot_task(100));
        let long = gpu.task_gcups(&swissprot_task(5000));
        assert!(short < long / 2.0, "short {short}, long {long}");
    }

    #[test]
    fn startup_dominates_tiny_tasks() {
        let gpu = GpuDevice::gtx580("gpu0");
        let tiny = TaskSpec {
            id: 0,
            query_len: 100,
            queries: 1,
            db_residues: 1_000_000,
            db_sequences: 2_000,
        };
        // 1e8 cells is far less than a second of GPU work; startup rules.
        let secs = gpu.task_seconds(&tiny);
        assert!(secs > 0.8, "secs = {secs}");
        assert!(gpu.task_gcups(&tiny) < 1.0);
    }

    #[test]
    fn kernel_split_threshold() {
        let (inter, intra) = GpuDevice::kernel_split([100, 3072, 3073, 9000]);
        assert_eq!(inter, 2);
        assert_eq!(intra, 2);
    }

    #[test]
    fn kind_and_name() {
        let gpu = GpuDevice::gtx580("gpuX");
        assert_eq!(gpu.kind(), DeviceKind::Gpu);
        assert_eq!(gpu.name(), "gpuX");
    }
}
