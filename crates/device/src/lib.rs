//! Processing-element (PE) models for the hybrid platform.
//!
//! The paper's platform is 4 × NVIDIA GTX 580 (running CUDASW++ 2.0) plus
//! 2 × Intel Core i7 (4 SSE cores each, running the adapted Farrar kernel).
//! No GPU hardware is available to this reproduction, so the accelerator is
//! **simulated**: a device executes real SW scoring through the workspace's
//! own kernels (scores are bit-identical), while its *elapsed time* comes
//! from a calibrated performance model (see `DESIGN.md` §2 for the
//! calibration constants and their provenance). The scheduler — the paper's
//! actual contribution — only ever observes completion times and progress
//! notifications, so a throughput-accurate model exercises exactly the same
//! code paths as the real machine.
//!
//! Modules:
//!
//! * [`task`] — the work unit: one query × one whole database (§IV, "very
//!   coarse-grained"),
//! * [`perfmodel`] — throughput curves and the calibration presets,
//! * [`gpu`] — the CUDASW++-2.0-style accelerator model,
//! * [`cudasw`] — a structural simulation of one CUDASW++ invocation
//!   (length sort, inter/intra-task kernel split, warp divergence,
//!   occupancy) that grounds the aggregate model,
//! * [`cpu`] — the SSE-core model (one PE per core, as in the paper),
//! * [`fpga`] — future-work extension: an FPGA PE with a maximum query
//!   length and Meng/Chaudhary-style query segmentation,
//! * [`load`] — step-function load schedules for non-dedicated experiments
//!   (the paper's §V-C `superpi` interference test),
//! * [`exec`] — real execution backends (actually compute scores with the
//!   `swhybrid-simd` kernels): real SIMD PEs and modeled accelerator PEs
//!   behind one [`exec::ComputeBackend`] trait,
//! * [`fleet`] — the shared `sse:8+gpu:2` fleet-spec parser and builder
//!   every hybrid-fleet surface (`master`, `serve`, `simulate`) uses.

pub mod cpu;
pub mod cudasw;
pub mod exec;
pub mod fleet;
pub mod fpga;
pub mod gpu;
pub mod load;
pub mod perfmodel;
pub mod task;

pub use cpu::CpuSseDevice;
pub use fleet::{FleetPe, FleetSpec};
pub use fpga::FpgaDevice;
pub use gpu::GpuDevice;
pub use load::LoadSchedule;
pub use perfmodel::PerfModel;
pub use task::{DeviceKind, DeviceModel, TaskSpec};
