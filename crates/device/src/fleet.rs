//! The fleet specification: which PEs make up a hybrid platform.
//!
//! One parser serves every surface that accepts a fleet — `swhybrid
//! master --fleet`, `swhybrid serve --fleet`, and the platform-experiment
//! `simulate` verb — so a spec like `sse:8+gpu:2` means the same thing
//! everywhere. Parsing **rejects** malformed input (unknown backend kind,
//! zero count, empty segment) instead of silently defaulting: a typo'd
//! fleet must fail loudly, not run on an accidental platform.
//!
//! [`FleetSpec::build`] materialises the spec into runnable PEs:
//!
//! * `sse` entries become **real** SIMD PEs ([`StripedBackend`], neutral
//!   1.0-GCUPS prior — their true speed is measured, not assumed);
//! * `gpu` / `fpga` entries become **modeled** PEs ([`ModeledBackend`]
//!   around the calibrated [`GpuDevice::gtx580`] / [`FpgaDevice::systolic`]
//!   models): real scores via the same kernels, with the model's
//!   throughput registered as the prior and attributed on completion.

use std::sync::Arc;

use crate::exec::{ComputeBackend, ModeledBackend, StripedBackend};
use crate::fpga::FpgaDevice;
use crate::gpu::GpuDevice;
use crate::task::{DeviceKind, DeviceModel, TaskSpec};

/// A parsed fleet: PE kinds with counts, in written order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    entries: Vec<(DeviceKind, usize)>,
}

/// One materialised fleet member, ready to admit into a PE pool.
pub struct FleetPe {
    /// Pool-visible PE name (`gpu0`, `sse3`, …).
    pub name: String,
    /// What kind of PE this is.
    pub kind: DeviceKind,
    /// The compute path (real striped SIMD, or modeled accelerator).
    pub backend: Box<dyn ComputeBackend>,
    /// Registration prior in GCUPS (WFixed weight / PSS seed).
    pub static_gcups: f64,
    /// The performance model for modeled kinds (`None` for real SIMD PEs).
    /// Drivers that bring their own compute path (the query service's
    /// shard executors) use this to attribute modeled speed.
    pub model: Option<Arc<dyn DeviceModel>>,
}

impl std::fmt::Debug for FleetPe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetPe")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("static_gcups", &self.static_gcups)
            .field("modeled", &self.model.is_some())
            .finish()
    }
}

impl FleetSpec {
    /// Parse `sse:8+gpu:2[+fpga:1]`. Every malformed segment is an error —
    /// nothing defaults.
    pub fn parse(spec: &str) -> Result<FleetSpec, String> {
        if spec.trim().is_empty() {
            return Err("empty fleet spec (expected e.g. sse:8+gpu:2)".into());
        }
        let mut entries = Vec::new();
        for segment in spec.split('+') {
            let segment = segment.trim();
            let Some((kind, count)) = segment.split_once(':') else {
                return Err(format!(
                    "fleet segment {segment:?} is not KIND:COUNT (expected e.g. sse:8)"
                ));
            };
            let kind = match kind {
                "sse" => DeviceKind::SseCore,
                "gpu" => DeviceKind::Gpu,
                "fpga" => DeviceKind::Fpga,
                other => {
                    return Err(format!(
                        "unknown backend {other:?} in fleet spec (expected sse|gpu|fpga)"
                    ))
                }
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("fleet segment {segment:?}: cannot parse count {count:?}"))?;
            if count == 0 {
                return Err(format!(
                    "fleet segment {segment:?}: count must be at least 1"
                ));
            }
            entries.push((kind, count));
        }
        Ok(FleetSpec { entries })
    }

    /// The `(kind, count)` entries, in written order.
    pub fn entries(&self) -> &[(DeviceKind, usize)] {
        &self.entries
    }

    /// Total PE count.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|&(_, n)| n).sum()
    }

    /// Count of PEs of one kind across all entries.
    pub fn count_of(&self, kind: DeviceKind) -> usize {
        self.entries
            .iter()
            .filter(|&&(k, _)| k == kind)
            .map(|&(_, n)| n)
            .sum()
    }

    /// Human-readable description, e.g. `"8 SSE + 2 GPU"`.
    pub fn describe(&self) -> String {
        self.entries
            .iter()
            .map(|(k, n)| format!("{n} {k}"))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Materialise the fleet into runnable PEs (see the module docs for
    /// which kinds are real and which are modeled). Names number each kind
    /// independently across the whole spec: `sse:2+gpu:1` → `sse0`,
    /// `sse1`, `gpu0`.
    pub fn build(&self) -> Vec<FleetPe> {
        let probe = TaskSpec::probe();
        let mut counters = std::collections::HashMap::new();
        let mut pes = Vec::with_capacity(self.total());
        for &(kind, count) in &self.entries {
            for _ in 0..count {
                let i = counters.entry(kind).or_insert(0usize);
                let pe = match kind {
                    DeviceKind::SseCore => FleetPe {
                        name: format!("sse{i}"),
                        kind,
                        backend: Box::new(StripedBackend::default()),
                        static_gcups: 1.0,
                        model: None,
                    },
                    DeviceKind::Gpu => {
                        let device: Arc<dyn DeviceModel> =
                            Arc::new(GpuDevice::gtx580(format!("gpu{i}")));
                        FleetPe {
                            name: format!("gpu{i}"),
                            kind,
                            static_gcups: device.task_gcups(&probe),
                            backend: Box::new(ModeledBackend::new(Arc::clone(&device))),
                            model: Some(device),
                        }
                    }
                    DeviceKind::Fpga => {
                        let device: Arc<dyn DeviceModel> =
                            Arc::new(FpgaDevice::systolic(format!("fpga{i}")));
                        FleetPe {
                            name: format!("fpga{i}"),
                            kind,
                            static_gcups: device.task_gcups(&probe),
                            backend: Box::new(ModeledBackend::new(Arc::clone(&device))),
                            model: Some(device),
                        }
                    }
                };
                *i += 1;
                pes.push(pe);
            }
        }
        pes
    }

    /// A homogeneous all-SSE fleet (the historical `--workers N` shape).
    pub fn all_sse(n: usize) -> FleetSpec {
        assert!(n >= 1, "fleet needs at least one PE");
        FleetSpec {
            entries: vec![(DeviceKind::SseCore, n)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_kind_spec_in_order() {
        let f = FleetSpec::parse("sse:8+gpu:2+fpga:1").unwrap();
        assert_eq!(
            f.entries(),
            &[
                (DeviceKind::SseCore, 8),
                (DeviceKind::Gpu, 2),
                (DeviceKind::Fpga, 1)
            ]
        );
        assert_eq!(f.total(), 11);
        assert_eq!(f.count_of(DeviceKind::Gpu), 2);
        assert_eq!(f.describe(), "8 SSE + 2 GPU + 1 FPGA");
    }

    #[test]
    fn rejects_unknown_backend() {
        let err = FleetSpec::parse("sse:8+tpu:2").unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        assert!(err.contains("tpu"), "{err}");
    }

    #[test]
    fn rejects_zero_count() {
        let err = FleetSpec::parse("gpu:0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn rejects_malformed_segments() {
        assert!(FleetSpec::parse("").is_err());
        assert!(FleetSpec::parse("sse").is_err());
        assert!(FleetSpec::parse("sse:").is_err());
        assert!(FleetSpec::parse("sse:two").is_err());
        assert!(FleetSpec::parse("sse:1++gpu:1").is_err());
        assert!(FleetSpec::parse("sse:-1").is_err());
    }

    #[test]
    fn build_numbers_each_kind_across_entries() {
        let pes = FleetSpec::parse("sse:2+gpu:1+sse:1").unwrap().build();
        let names: Vec<&str> = pes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["sse0", "sse1", "gpu0", "sse2"]);
    }

    #[test]
    fn modeled_kinds_carry_model_and_calibrated_prior() {
        let pes = FleetSpec::parse("gpu:1+sse:1").unwrap().build();
        let gpu = &pes[0];
        assert!(gpu.model.is_some());
        assert!(
            gpu.static_gcups > 1.0,
            "GTX 580 prior should be multi-GCUPS, got {}",
            gpu.static_gcups
        );
        assert_eq!(
            gpu.backend.prior_gcups(),
            Some(gpu.static_gcups),
            "backend and fleet entry must agree on the prior"
        );
        let sse = &pes[1];
        assert!(sse.model.is_none());
        assert_eq!(sse.static_gcups, 1.0);
        assert_eq!(sse.backend.prior_gcups(), None);
    }

    #[test]
    fn all_sse_matches_parsed_form() {
        assert_eq!(FleetSpec::all_sse(4), FleetSpec::parse("sse:4").unwrap());
    }
}
