//! Calibrated throughput models.
//!
//! Exact per-cell timings of the paper's testbed are unrecoverable (the
//! table bodies did not survive digitisation), so the models are calibrated
//! to the numbers that did survive and to the cited literature; see
//! `DESIGN.md` §2. The single source of truth for every constant is this
//! module — experiments must never embed their own magic numbers.

/// A throughput curve: effective rate = `peak × query_eff × db_fill_eff`,
/// with a fixed startup plus an optional transfer term per task.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    /// Peak sustained GCUPS under ideal conditions.
    pub peak_gcups: f64,
    /// Fixed per-task startup seconds (process launch, CUDA context,
    /// reconfiguration, …).
    pub startup_seconds: f64,
    /// Transfer throughput for shipping the database to the device, in
    /// bytes/second (one residue = one byte); `None` disables the term.
    pub transfer_bytes_per_sec: Option<f64>,
    /// Query-length efficiency ramp: `eff = len / (len + ramp)`;
    /// 0 disables the ramp.
    pub query_ramp: f64,
    /// Device-occupancy ramp on the number of database sequences:
    /// `eff = n / (n + fill)`; 0 disables. Models accelerators that need
    /// many concurrent subject comparisons to fill their lanes.
    pub db_fill: f64,
}

impl PerfModel {
    /// Query-length efficiency factor in (0, 1].
    pub fn query_efficiency(&self, query_len: usize) -> f64 {
        if self.query_ramp <= 0.0 {
            1.0
        } else {
            query_len as f64 / (query_len as f64 + self.query_ramp)
        }
    }

    /// Occupancy efficiency factor in (0, 1].
    pub fn fill_efficiency(&self, db_sequences: usize) -> f64 {
        if self.db_fill <= 0.0 {
            1.0
        } else {
            db_sequences as f64 / (db_sequences as f64 + self.db_fill)
        }
    }

    /// Effective sustained rate in cells/second.
    pub fn effective_rate(&self, query_len: usize, db_sequences: usize) -> f64 {
        self.peak_gcups
            * 1e9
            * self.query_efficiency(query_len)
            * self.fill_efficiency(db_sequences)
    }

    /// Per-task startup seconds including the database transfer.
    pub fn startup(&self, db_residues: u64) -> f64 {
        let transfer = match self.transfer_bytes_per_sec {
            Some(bw) if bw > 0.0 => db_residues as f64 / bw,
            _ => 0.0,
        };
        self.startup_seconds + transfer
    }

    /// The GTX 580 running CUDASW++ 2.0, one task per program invocation
    /// (the paper encapsulates the unmodified CUDASW++ binary, §IV-C):
    /// peak ≈ 32 GCUPS (Liu et al. 2010 scaled to GF110), ≈ 0.85 s of
    /// process/CUDA-context startup per invocation, PCIe-2.0-ish transfer,
    /// and a pronounced short-query ramp (virtualised-SIMD kernels need
    /// long queries to amortise). The combination reproduces the paper's
    /// observation that 4-GPU GCUPS on SwissProt is ≈ 2× the GCUPS on the
    /// four small databases.
    pub fn gtx580_cudasw() -> PerfModel {
        PerfModel {
            peak_gcups: 32.0,
            startup_seconds: 0.85,
            transfer_bytes_per_sec: Some(2.5e9),
            query_ramp: 220.0,
            db_fill: 1500.0,
        }
    }

    /// One SSE core of the Core i7-2600 running the adapted Farrar kernel:
    /// ≈ 2.7 GCUPS sustained (calibrated to the paper's "7,190 s on one SSE
    /// core" for the SwissProt workload), negligible startup, and a mild
    /// short-query ramp (profile construction).
    pub fn sse_core() -> PerfModel {
        PerfModel {
            peak_gcups: 2.75,
            startup_seconds: 0.02,
            transfer_bytes_per_sec: None,
            query_ramp: 25.0,
            db_fill: 0.0,
        }
    }

    /// An FPGA systolic-array accelerator (Meng & Chaudhary-class), for the
    /// future-work extension: high peak, long reconfiguration startup.
    pub fn fpga_systolic() -> PerfModel {
        PerfModel {
            peak_gcups: 25.0,
            startup_seconds: 1.5,
            transfer_bytes_per_sec: Some(1.0e9),
            query_ramp: 0.0,
            db_fill: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_disabled_by_zero() {
        let m = PerfModel {
            peak_gcups: 10.0,
            startup_seconds: 0.0,
            transfer_bytes_per_sec: None,
            query_ramp: 0.0,
            db_fill: 0.0,
        };
        assert_eq!(m.query_efficiency(1), 1.0);
        assert_eq!(m.fill_efficiency(1), 1.0);
        assert_eq!(m.effective_rate(100, 1), 10e9);
    }

    #[test]
    fn query_ramp_monotone_to_one() {
        let m = PerfModel::gtx580_cudasw();
        let mut prev = 0.0;
        for len in [50, 100, 500, 1000, 5000, 50_000] {
            let e = m.query_efficiency(len);
            assert!(e > prev);
            assert!(e < 1.0);
            prev = e;
        }
        assert!(m.query_efficiency(50_000) > 0.99);
    }

    #[test]
    fn startup_includes_transfer() {
        let m = PerfModel::gtx580_cudasw();
        let small = m.startup(12_400_000);
        let big = m.startup(190_800_000);
        assert!(big > small);
        // SwissProt transfer at 2.5 GB/s ≈ 0.076 s on top of 0.85 s.
        assert!((big - 0.85 - 190_800_000.0 / 2.5e9).abs() < 1e-9);
    }

    #[test]
    fn sse_core_calibration_reproduces_headline() {
        // 40 queries (~102k residues) × SwissProt ≈ 1.95e13 cells.
        // One SSE core must land in the paper's ballpark of 7,190 s.
        let m = PerfModel::sse_core();
        let cells = 102_000f64 * 190.8e6;
        // Mid-size query (2,550 aa) efficiency is representative.
        let secs = cells / (m.effective_rate(2550, 537_505));
        assert!((6500.0..8000.0).contains(&secs), "secs = {secs}");
    }

    #[test]
    fn gpu_small_vs_large_db_gcups_gap() {
        // The effective GCUPS a GTX 580 achieves per task: the SwissProt
        // task must be ≈ 2× the Ensembl-Dog task for a mid-size query
        // (paper §V-A-2: "approximately the double").
        let m = PerfModel::gtx580_cudasw();
        let q = 2550usize;
        let small_cells = q as f64 * 12.4e6;
        let big_cells = q as f64 * 190.8e6;
        let small_secs = m.startup(12_400_000) + small_cells / m.effective_rate(q, 25_160);
        let big_secs = m.startup(190_800_000) + big_cells / m.effective_rate(q, 537_505);
        let small_gcups = small_cells / small_secs / 1e9;
        let big_gcups = big_cells / big_secs / 1e9;
        let ratio = big_gcups / small_gcups;
        assert!((1.5..2.6).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn gpu_is_roughly_order_of_magnitude_faster_than_sse_core() {
        let gpu = PerfModel::gtx580_cudasw();
        let sse = PerfModel::sse_core();
        let ratio = gpu.effective_rate(2550, 537_505) / sse.effective_rate(2550, 537_505);
        assert!((8.0..14.0).contains(&ratio), "ratio = {ratio}");
    }
}
