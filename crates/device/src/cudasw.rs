//! Structural simulation of one CUDASW++ 2.0 invocation.
//!
//! [`crate::perfmodel`] gives the *aggregate* throughput curve the platform
//! experiments need; this module models *why* that curve looks the way it
//! does, reproducing the internal organisation Liu et al. (2010) describe:
//!
//! 1. the database is **sorted by subject length**;
//! 2. subjects ≤ a length threshold go to the **inter-task** kernel: one
//!    thread per subject (virtualised-SIMD SIMT), so a warp's cost is its
//!    *longest* member — length skew inside a warp is divergence waste,
//!    and sorting is what keeps warps homogeneous;
//! 3. longer subjects go to the **intra-task** kernel: one block
//!    cooperates on a single alignment at reduced efficiency;
//! 4. the device only reaches peak throughput when enough warps are in
//!    flight to saturate the SMs (**occupancy** ramp) — the physical origin
//!    of the `db_fill` term in the aggregate model.
//!
//! The plan's `seconds` estimate and the aggregate [`PerfModel`] are
//! cross-validated in the tests.

use crate::gpu::INTER_INTRA_THRESHOLD;

/// Configuration of the simulated device/kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct CudaswSim {
    /// Subject-length threshold between the two kernels.
    pub threshold: usize,
    /// Threads per warp (cost quantum of the inter-task kernel).
    pub warp: usize,
    /// Peak aggregate GCUPS with saturated occupancy.
    pub peak_gcups: f64,
    /// Relative efficiency of the intra-task kernel (block-wide barriers).
    pub intra_efficiency: f64,
    /// Warps in flight needed for full occupancy (SMs × resident warps).
    pub full_occupancy_warps: usize,
    /// Fixed per-invocation seconds (process + context + transfer base).
    pub startup_seconds: f64,
}

impl Default for CudaswSim {
    fn default() -> Self {
        CudaswSim::gtx580()
    }
}

impl CudaswSim {
    /// A GTX 580 (16 SMs, Fermi-class residency).
    pub fn gtx580() -> CudaswSim {
        CudaswSim {
            threshold: INTER_INTRA_THRESHOLD,
            warp: 32,
            peak_gcups: 32.0,
            intra_efficiency: 0.55,
            full_occupancy_warps: 16 * 48,
            startup_seconds: 0.85,
        }
    }

    /// Plan one invocation: `query_len` against subjects of the given
    /// lengths. Set `presorted` to false to model a database that was *not*
    /// length-sorted (the ablation shows why CUDASW++ sorts).
    pub fn plan(&self, query_len: usize, subject_lengths: &[usize], presorted: bool) -> CudaswPlan {
        let mut lengths: Vec<usize> = subject_lengths.to_vec();
        if presorted {
            lengths.sort_unstable();
        }
        let split = lengths.partition_point(|&l| l <= self.threshold);
        let (short, long) = lengths.split_at(split);

        // Inter-task kernel: warps of `warp` subjects; each warp costs its
        // longest member for every lane.
        let mut padded_cells: u64 = 0;
        let mut actual_short_cells: u64 = 0;
        let mut warps = 0usize;
        for chunk in short.chunks(self.warp) {
            let maxl = *chunk.iter().max().expect("chunks are non-empty") as u64;
            padded_cells += maxl * self.warp as u64 * query_len as u64;
            actual_short_cells += chunk.iter().map(|&l| l as u64).sum::<u64>() * query_len as u64;
            warps += 1;
        }

        // Intra-task kernel: one block per subject, reduced efficiency.
        let long_cells: u64 = long.iter().map(|&l| l as u64).sum::<u64>() * query_len as u64;

        let occupancy = if warps == 0 {
            1.0
        } else {
            (warps as f64 / self.full_occupancy_warps as f64).min(1.0)
        };
        // Occupancy below ~10% is clamped: even one block keeps some SMs hot.
        let occ_eff = occupancy.max(0.1);
        let inter_seconds = padded_cells as f64 / (self.peak_gcups * 1e9 * occ_eff);
        let intra_seconds = long_cells as f64 / (self.peak_gcups * 1e9 * self.intra_efficiency);
        let actual_cells = actual_short_cells + long_cells;

        CudaswPlan {
            inter_subjects: short.len(),
            intra_subjects: long.len(),
            warps,
            actual_cells,
            padded_cells: padded_cells + long_cells,
            occupancy,
            seconds: self.startup_seconds + inter_seconds + intra_seconds,
        }
    }
}

/// The outcome of planning one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CudaswPlan {
    /// Subjects handled by the inter-task (SIMT) kernel.
    pub inter_subjects: usize,
    /// Subjects handled by the intra-task (cooperative) kernel.
    pub intra_subjects: usize,
    /// Inter-task warps launched.
    pub warps: usize,
    /// Useful DP cells.
    pub actual_cells: u64,
    /// Cells actually computed including warp-divergence padding.
    pub padded_cells: u64,
    /// Fraction of full SM occupancy achieved by the inter-task grid.
    pub occupancy: f64,
    /// Estimated wall seconds for the invocation.
    pub seconds: f64,
}

impl CudaswPlan {
    /// Divergence waste: computed cells / useful cells (≥ 1).
    pub fn waste_factor(&self) -> f64 {
        if self.actual_cells == 0 {
            1.0
        } else {
            self.padded_cells as f64 / self.actual_cells as f64
        }
    }

    /// Effective useful GCUPS of the invocation.
    pub fn gcups(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.actual_cells as f64 / self.seconds / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfmodel::PerfModel;
    use swhybrid_seq::synth::paper_database;

    fn dog_lengths() -> Vec<usize> {
        paper_database("dog")
            .expect("preset exists")
            .generate_scaled(5, 0.06) // ~1,500 sequences
            .sequences
            .iter()
            .map(|s| s.len())
            .collect()
    }

    #[test]
    fn split_respects_threshold() {
        let sim = CudaswSim::gtx580();
        let lengths = vec![100, 200, 4000, 3072, 3073, 50];
        let plan = sim.plan(1000, &lengths, true);
        assert_eq!(plan.inter_subjects, 4);
        assert_eq!(plan.intra_subjects, 2);
        assert_eq!(plan.warps, 1);
    }

    #[test]
    fn sorting_reduces_divergence_waste() {
        // The reason CUDASW++ sorts its database: warps of like-sized
        // subjects waste almost nothing; shuffled warps pay for their
        // longest member.
        let sim = CudaswSim::gtx580();
        let mut lengths = dog_lengths();
        let sorted = sim.plan(1000, &lengths, true);
        // A deterministic interleave: short/long alternating (worst-ish).
        lengths.sort_unstable();
        let n = lengths.len();
        let mut shuffled = Vec::with_capacity(n);
        let (lo, hi) = lengths.split_at(n / 2);
        for i in 0..n / 2 {
            shuffled.push(lo[i]);
            shuffled.push(hi[hi.len() - 1 - i]);
        }
        let unsorted = sim.plan(1000, &shuffled, false);
        assert!(
            sorted.waste_factor() < unsorted.waste_factor() * 0.9,
            "sorted {} vs unsorted {}",
            sorted.waste_factor(),
            unsorted.waste_factor()
        );
        assert!(sorted.seconds < unsorted.seconds);
        // Useful cells are identical either way.
        assert_eq!(sorted.actual_cells, unsorted.actual_cells);
    }

    #[test]
    fn sorted_waste_is_small() {
        let sim = CudaswSim::gtx580();
        let plan = sim.plan(1000, &dog_lengths(), true);
        assert!(plan.waste_factor() < 1.35, "waste {}", plan.waste_factor());
    }

    #[test]
    fn occupancy_ramps_with_database_size() {
        let sim = CudaswSim::gtx580();
        let small = sim.plan(1000, &vec![300; 64], true); // 2 warps
        let big = sim.plan(1000, &vec![300; 64 * 1000], true); // 2000 warps
        assert!(small.occupancy < 0.01);
        assert!((big.occupancy - 1.0).abs() < 1e-9);
        assert!(small.gcups() < big.gcups());
    }

    #[test]
    fn plan_agrees_with_aggregate_model_on_dog_scale() {
        // The structural simulation and the calibrated aggregate curve must
        // land in the same ballpark for a realistic database (they were
        // fitted to the same published numbers).
        let sim = CudaswSim::gtx580();
        let lengths: Vec<usize> = paper_database("dog")
            .expect("preset exists")
            .generate_scaled(5, 1.0 / 8.0)
            .sequences
            .iter()
            .map(|s| s.len())
            .collect();
        let plan = sim.plan(2550, &lengths, true);
        let aggregate = PerfModel::gtx580_cudasw();
        let agg_secs = aggregate.startup(plan.actual_cells / 2550)
            + plan.actual_cells as f64 / aggregate.effective_rate(2550, lengths.len());
        let ratio = plan.seconds / agg_secs;
        assert!(
            (0.4..2.5).contains(&ratio),
            "structural {} vs aggregate {agg_secs}",
            plan.seconds
        );
    }

    #[test]
    fn empty_database_costs_startup_only() {
        let sim = CudaswSim::gtx580();
        let plan = sim.plan(500, &[], true);
        assert_eq!(plan.actual_cells, 0);
        assert_eq!(plan.waste_factor(), 1.0);
        assert!((plan.seconds - sim.startup_seconds).abs() < 1e-12);
    }
}
