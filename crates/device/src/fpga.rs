//! FPGA processing element (future-work extension).
//!
//! The paper's §VI names FPGA integration as future work; the natural
//! template is Meng & Chaudhary's heterogeneous platform [13], whose FPGA
//! imposes a maximum sequence length: long *query* sequences must be
//! segmented with overlap (at a sensitivity cost the paper notes), and the
//! overlapped residues are recomputed — which this model charges as a cell
//! inflation factor.

use crate::perfmodel::PerfModel;
use crate::task::{DeviceKind, DeviceModel, TaskSpec};

/// A systolic-array FPGA accelerator with a query-length restriction.
#[derive(Debug, Clone)]
pub struct FpgaDevice {
    name: String,
    model: PerfModel,
    /// Longest query the array holds without segmentation.
    pub max_query_len: usize,
    /// Residues of overlap between adjacent segments.
    pub overlap: usize,
}

impl FpgaDevice {
    /// Default systolic-array FPGA: 1,024-PE array, 64-residue overlap.
    pub fn systolic(name: impl Into<String>) -> FpgaDevice {
        FpgaDevice {
            name: name.into(),
            model: PerfModel::fpga_systolic(),
            max_query_len: 1024,
            overlap: 64,
        }
    }

    /// Number of segments a query of `query_len` splits into.
    pub fn segments(&self, query_len: usize) -> usize {
        if query_len <= self.max_query_len {
            return 1;
        }
        let step = self.max_query_len - self.overlap;
        1 + (query_len - self.max_query_len).div_ceil(step)
    }

    /// Cell inflation factor from overlapped recomputation (≥ 1.0).
    pub fn inflation(&self, query_len: usize) -> f64 {
        let segs = self.segments(query_len);
        if segs == 1 {
            return 1.0;
        }
        // Total residues actually processed across the segments.
        let step = self.max_query_len - self.overlap;
        let processed =
            self.max_query_len + (segs - 1) * step.min(query_len) + (segs - 1) * self.overlap;
        processed as f64 / query_len as f64
    }
}

impl DeviceModel for FpgaDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Fpga
    }

    fn startup_seconds(&self, task: &TaskSpec) -> f64 {
        // One reconfiguration + transfer per segment batch.
        self.model.startup(task.db_residues)
    }

    fn rate(&self, task: &TaskSpec) -> f64 {
        // Overlap recomputation shows up as a lower effective rate.
        self.model.effective_rate(task.query_len, task.db_sequences)
            / self.inflation(task.query_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_queries_are_unsegmented() {
        let f = FpgaDevice::systolic("fpga0");
        assert_eq!(f.segments(100), 1);
        assert_eq!(f.segments(1024), 1);
        assert_eq!(f.inflation(1024), 1.0);
    }

    #[test]
    fn long_queries_segment_with_overlap() {
        let f = FpgaDevice::systolic("fpga0");
        assert_eq!(f.segments(1025), 2);
        // 5,000-aa query: step = 960; segments = 1 + ceil(3976/960) = 6.
        assert_eq!(f.segments(5000), 6);
        let infl = f.inflation(5000);
        assert!(infl > 1.0 && infl < 1.5, "inflation = {infl}");
    }

    #[test]
    fn inflation_reduces_effective_rate() {
        let f = FpgaDevice::systolic("fpga0");
        let short = TaskSpec {
            id: 0,
            query_len: 1000,
            queries: 1,
            db_residues: 10_000_000,
            db_sequences: 10_000,
        };
        let long = TaskSpec {
            id: 1,
            query_len: 5000,
            queries: 1,
            ..short.clone()
        };
        assert!(f.rate(&long) < f.rate(&short) * 1.01);
        assert!(f.rate(&long) >= f.rate(&short) / f.inflation(5000) * 0.99);
    }

    #[test]
    fn kind_is_fpga() {
        assert_eq!(FpgaDevice::systolic("x").kind(), DeviceKind::Fpga);
    }
}
