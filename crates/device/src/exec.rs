//! Real execution backends.
//!
//! The simulated platform charges *virtual* time, but the scores themselves
//! are real: a task executed by any PE runs the workspace's own kernels and
//! produces exactly the scores a GPU running CUDASW++ or a core running the
//! Farrar kernel would produce. This module provides that compute path, so
//! the execution environment can (a) return genuine hit lists from platform
//! runs on materialised databases and (b) be driven end-to-end by real
//! threads in the examples and integration tests.
//!
//! Two backend kinds share the [`ComputeBackend`] trait:
//!
//! * [`StripedBackend`] — a real SIMD PE: scores *and* speed are genuine
//!   (the driver attributes wall-clock GCUPS).
//! * [`ModeledBackend`] — a modeled accelerator PE: scores are computed by
//!   the same kernels (bit-identical hit tables), but the GCUPS fed to the
//!   scheduler's Ω window come from the PE's calibrated [`DeviceModel`] —
//!   so a hybrid fleet's PSS Φ weights behave as they would with the real
//!   hardware, while every result stays verifiable against a plain scan.

use std::sync::Arc;

use swhybrid_align::scoring::Scoring;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_simd::engine::EnginePreference;
use swhybrid_simd::search::{DatabaseSearch, Hit, KernelChoice, SearchConfig, SearchResult};

use crate::task::{DeviceModel, TaskSpec};

/// A backend that can actually compute a query × database comparison.
pub trait ComputeBackend: Send + Sync {
    /// Compare `query` against `subjects`, returning the ranked hits.
    fn compare(
        &self,
        query: &EncodedSequence,
        subjects: &[EncodedSequence],
        scoring: &Scoring,
        top_n: usize,
    ) -> SearchResult;

    /// The GCUPS this backend wants attributed for completing `spec`, or
    /// `None` to let the driver report measured wall-clock speed. Modeled
    /// accelerators override this so the scheduler's speed windows see the
    /// device model's throughput instead of the host CPU's.
    fn modeled_gcups(&self, _spec: &TaskSpec) -> Option<f64> {
        None
    }

    /// The static GCUPS prior this backend should register with (used by
    /// WFixed and as the PSS seed), or `None` for driver-chosen defaults.
    fn prior_gcups(&self) -> Option<f64> {
        None
    }
}

/// The adapted-Farrar striped backend (what every PE kind executes in this
/// reproduction — see the crate docs for why this preserves behaviour).
#[derive(Debug, Clone, Default)]
pub struct StripedBackend {
    /// Kernel family preference.
    pub preference: EnginePreference,
    /// Chunk dispatch: striped, inter-sequence, or adaptive.
    pub kernel: KernelChoice,
}

impl ComputeBackend for StripedBackend {
    fn compare(
        &self,
        query: &EncodedSequence,
        subjects: &[EncodedSequence],
        scoring: &Scoring,
        top_n: usize,
    ) -> SearchResult {
        DatabaseSearch::new(
            &query.codes,
            scoring,
            SearchConfig {
                threads: 1,
                top_n,
                chunk_size: 64,
                preference: self.preference,
                kernel: self.kernel,
                ..Default::default()
            },
        )
        .run(subjects)
    }
}

/// A modeled accelerator PE: real scores, modeled speed.
///
/// `compare` delegates to an inner [`StripedBackend`] (hit tables are
/// byte-identical to any other PE's), while [`ComputeBackend::modeled_gcups`]
/// and [`ComputeBackend::prior_gcups`] quote the wrapped [`DeviceModel`] —
/// e.g. [`crate::gpu::GpuDevice`] or [`crate::cpu::CpuSseDevice`] with
/// their calibrated CUDASW++/Farrar curves. This is how a GPU "joins" a
/// hybrid fleet on a machine without one: the scheduler sees GTX-580
/// throughput in its Ω window and sizes Φ batches accordingly.
pub struct ModeledBackend {
    device: Arc<dyn DeviceModel>,
    compute: StripedBackend,
}

impl ModeledBackend {
    /// Model `device`'s speed; compute scores with a default striped
    /// backend.
    pub fn new(device: Arc<dyn DeviceModel>) -> ModeledBackend {
        ModeledBackend {
            device,
            compute: StripedBackend::default(),
        }
    }

    /// Model `device`'s speed; compute scores with a specific backend
    /// configuration.
    pub fn with_compute(device: Arc<dyn DeviceModel>, compute: StripedBackend) -> ModeledBackend {
        ModeledBackend { device, compute }
    }

    /// The wrapped device model.
    pub fn device(&self) -> &Arc<dyn DeviceModel> {
        &self.device
    }
}

impl std::fmt::Debug for ModeledBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModeledBackend")
            .field("device", &self.device.name())
            .field("compute", &self.compute)
            .finish()
    }
}

impl ComputeBackend for ModeledBackend {
    fn compare(
        &self,
        query: &EncodedSequence,
        subjects: &[EncodedSequence],
        scoring: &Scoring,
        top_n: usize,
    ) -> SearchResult {
        self.compute.compare(query, subjects, scoring, top_n)
    }

    fn modeled_gcups(&self, spec: &TaskSpec) -> Option<f64> {
        Some(self.device.task_gcups(spec))
    }

    fn prior_gcups(&self) -> Option<f64> {
        Some(self.device.task_gcups(&TaskSpec::probe()))
    }
}

/// Merge per-task hit lists into a global ranking (the master's "merge
/// results" step of Fig. 4), tagging each hit with its query index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHit {
    /// Index of the query in the query set.
    pub query_index: usize,
    /// The database hit.
    pub hit: Hit,
}

// The workspace's one partial-hit-list merge, re-exported where backend
// drivers look for it.
pub use swhybrid_simd::search::merge_top_n;

/// Merge and rank hits across queries (best score first).
///
/// Per-query ranking is delegated to [`merge_top_n`] — the workspace's one
/// canonical merge (score descending, database order ascending) — and the
/// cross-query interleave is a *stable* sort on (score descending, query
/// index ascending). Stability preserves the per-query db-ascending order
/// inside ties, so the overall order is (score desc, query asc, db asc):
/// byte-identical to merging everything with a single three-key
/// comparator, but with exactly one implementation of the ranking rule.
pub fn merge_hits(per_task: impl IntoIterator<Item = (usize, Vec<Hit>)>) -> Vec<QueryHit> {
    let mut by_query: std::collections::BTreeMap<usize, Vec<Vec<Hit>>> =
        std::collections::BTreeMap::new();
    for (query_index, hits) in per_task {
        by_query.entry(query_index).or_default().push(hits);
    }
    let mut all: Vec<QueryHit> = by_query
        .into_iter()
        .flat_map(|(query_index, lists)| {
            merge_top_n(lists, usize::MAX)
                .into_iter()
                .map(move |hit| QueryHit { query_index, hit })
        })
        .collect();
    all.sort_by(|a, b| {
        b.hit
            .score
            .cmp(&a.hit.score)
            .then(a.query_index.cmp(&b.query_index))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn enc(id: &str, residues: &[u8]) -> EncodedSequence {
        EncodedSequence::from_residues(id, residues, Alphabet::Protein).unwrap()
    }

    #[test]
    fn striped_backend_finds_planted_hit() {
        let query = enc("q", b"MKVLAWCDEFGHIKLMNPQRST");
        let subjects = vec![
            enc("a", b"PPPPPPPPPP"),
            enc("b", b"MKVLAWCDEFGHIKLMNPQRST"),
            enc("c", b"GGGGGGGG"),
        ];
        let result = StripedBackend::default().compare(&query, &subjects, &scoring(), 3);
        assert_eq!(result.hits[0].id, "b");
        assert!(result.hits[0].score > result.hits[1].score);
    }

    #[test]
    fn modeled_backend_scores_match_striped_but_speed_is_the_models() {
        let query = enc("q", b"MKVLAWCDEFGHIKLMNPQRST");
        let subjects = vec![
            enc("a", b"PPPPPPPPPP"),
            enc("b", b"MKVLAWCDEFGHIKLMNPQRST"),
            enc("c", b"GGGGGGGG"),
        ];
        let gpu = ModeledBackend::new(Arc::new(crate::gpu::GpuDevice::gtx580("gpu0")));
        let real = StripedBackend::default();
        let a = gpu.compare(&query, &subjects, &scoring(), 3);
        let b = real.compare(&query, &subjects, &scoring(), 3);
        assert_eq!(a.hits, b.hits, "modeled PE must score bit-identically");
        // Speed attribution comes from the calibrated model, not the host.
        let spec = TaskSpec::probe();
        let modeled = gpu.modeled_gcups(&spec).unwrap();
        assert!(modeled > 1.0, "a GTX 580 model is multi-GCUPS: {modeled}");
        assert_eq!(real.modeled_gcups(&spec), None);
        assert!(gpu.prior_gcups().unwrap() > 1.0);
        assert_eq!(real.prior_gcups(), None);
    }

    #[test]
    fn merge_hits_globally_ranked() {
        let h = |id: &str, score: i32| Hit {
            db_index: 0,
            id: id.into(),
            score,
            subject_len: 10,
        };
        let merged = merge_hits(vec![
            (0, vec![h("a", 10), h("b", 30)]),
            (1, vec![h("c", 20)]),
        ]);
        let scores: Vec<i32> = merged.iter().map(|m| m.hit.score).collect();
        assert_eq!(scores, vec![30, 20, 10]);
        assert_eq!(merged[1].query_index, 1);
    }

    #[test]
    fn merge_breaks_ties_by_query_then_db_index() {
        let mk = |db_index: usize, score: i32| Hit {
            db_index,
            id: format!("s{db_index}"),
            score,
            subject_len: 5,
        };
        let merged = merge_hits(vec![(1, vec![mk(2, 10)]), (0, vec![mk(1, 10), mk(0, 10)])]);
        assert_eq!(merged[0].query_index, 0);
        assert_eq!(merged[0].hit.db_index, 0);
        assert_eq!(merged[1].hit.db_index, 1);
        assert_eq!(merged[2].query_index, 1);
    }

    #[test]
    fn merge_hits_equals_single_three_key_sort() {
        // The delegated form (merge_top_n per query + stable cross-query
        // sort) must reproduce the historical one-shot comparator exactly.
        let mk = |db_index: usize, score: i32| Hit {
            db_index,
            id: format!("s{db_index}"),
            score,
            subject_len: 5,
        };
        let input = vec![
            (2, vec![mk(5, 10), mk(1, 40), mk(9, 10)]),
            (0, vec![mk(3, 10), mk(7, 40)]),
            (1, vec![mk(0, 40), mk(2, 10), mk(4, 25)]),
            (0, vec![mk(8, 25), mk(6, 10)]), // second task for query 0
        ];
        let mut expected: Vec<QueryHit> = input
            .iter()
            .flat_map(|(q, hits)| {
                hits.iter().map(|h| QueryHit {
                    query_index: *q,
                    hit: h.clone(),
                })
            })
            .collect();
        expected.sort_by(|a, b| {
            b.hit
                .score
                .cmp(&a.hit.score)
                .then(a.query_index.cmp(&b.query_index))
                .then(a.hit.db_index.cmp(&b.hit.db_index))
        });
        assert_eq!(merge_hits(input), expected);
    }
}
