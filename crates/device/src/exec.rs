//! Real execution backends.
//!
//! The simulated platform charges *virtual* time, but the scores themselves
//! are real: a task executed by any PE runs the workspace's own kernels and
//! produces exactly the scores a GPU running CUDASW++ or a core running the
//! Farrar kernel would produce. This module provides that compute path, so
//! the execution environment can (a) return genuine hit lists from platform
//! runs on materialised databases and (b) be driven end-to-end by real
//! threads in the examples and integration tests.

use swhybrid_align::scoring::Scoring;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_simd::engine::EnginePreference;
use swhybrid_simd::search::{DatabaseSearch, Hit, KernelChoice, SearchConfig, SearchResult};

/// A backend that can actually compute a query × database comparison.
pub trait ComputeBackend: Send + Sync {
    /// Compare `query` against `subjects`, returning the ranked hits.
    fn compare(
        &self,
        query: &EncodedSequence,
        subjects: &[EncodedSequence],
        scoring: &Scoring,
        top_n: usize,
    ) -> SearchResult;
}

/// The adapted-Farrar striped backend (what every PE kind executes in this
/// reproduction — see the crate docs for why this preserves behaviour).
#[derive(Debug, Clone, Default)]
pub struct StripedBackend {
    /// Kernel family preference.
    pub preference: EnginePreference,
    /// Chunk dispatch: striped, inter-sequence, or adaptive.
    pub kernel: KernelChoice,
}

impl ComputeBackend for StripedBackend {
    fn compare(
        &self,
        query: &EncodedSequence,
        subjects: &[EncodedSequence],
        scoring: &Scoring,
        top_n: usize,
    ) -> SearchResult {
        DatabaseSearch::new(
            &query.codes,
            scoring,
            SearchConfig {
                threads: 1,
                top_n,
                chunk_size: 64,
                preference: self.preference,
                kernel: self.kernel,
                ..Default::default()
            },
        )
        .run(subjects)
    }
}

/// Merge per-task hit lists into a global ranking (the master's "merge
/// results" step of Fig. 4), tagging each hit with its query index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHit {
    /// Index of the query in the query set.
    pub query_index: usize,
    /// The database hit.
    pub hit: Hit,
}

/// Merge and rank hits across queries (best score first).
pub fn merge_hits(per_task: impl IntoIterator<Item = (usize, Vec<Hit>)>) -> Vec<QueryHit> {
    let mut all: Vec<QueryHit> = per_task
        .into_iter()
        .flat_map(|(query_index, hits)| {
            hits.into_iter()
                .map(move |hit| QueryHit { query_index, hit })
        })
        .collect();
    all.sort_by(|a, b| {
        b.hit
            .score
            .cmp(&a.hit.score)
            .then(a.query_index.cmp(&b.query_index))
            .then(a.hit.db_index.cmp(&b.hit.db_index))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn enc(id: &str, residues: &[u8]) -> EncodedSequence {
        EncodedSequence::from_residues(id, residues, Alphabet::Protein).unwrap()
    }

    #[test]
    fn striped_backend_finds_planted_hit() {
        let query = enc("q", b"MKVLAWCDEFGHIKLMNPQRST");
        let subjects = vec![
            enc("a", b"PPPPPPPPPP"),
            enc("b", b"MKVLAWCDEFGHIKLMNPQRST"),
            enc("c", b"GGGGGGGG"),
        ];
        let result = StripedBackend::default().compare(&query, &subjects, &scoring(), 3);
        assert_eq!(result.hits[0].id, "b");
        assert!(result.hits[0].score > result.hits[1].score);
    }

    #[test]
    fn merge_hits_globally_ranked() {
        let h = |id: &str, score: i32| Hit {
            db_index: 0,
            id: id.into(),
            score,
            subject_len: 10,
        };
        let merged = merge_hits(vec![
            (0, vec![h("a", 10), h("b", 30)]),
            (1, vec![h("c", 20)]),
        ]);
        let scores: Vec<i32> = merged.iter().map(|m| m.hit.score).collect();
        assert_eq!(scores, vec![30, 20, 10]);
        assert_eq!(merged[1].query_index, 1);
    }

    #[test]
    fn merge_breaks_ties_by_query_then_db_index() {
        let mk = |db_index: usize, score: i32| Hit {
            db_index,
            id: format!("s{db_index}"),
            score,
            subject_len: 5,
        };
        let merged = merge_hits(vec![(1, vec![mk(2, 10)]), (0, vec![mk(1, 10), mk(0, 10)])]);
        assert_eq!(merged[0].query_index, 0);
        assert_eq!(merged[0].hit.db_index, 0);
        assert_eq!(merged[1].hit.db_index, 1);
        assert_eq!(merged[2].query_index, 1);
    }
}
